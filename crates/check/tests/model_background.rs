//! Model checking of the *actual* `BackgroundWorkerIn` protocol source
//! (the same generic code production runs on `RealSync`), instantiated
//! on `ModelSync`.
//!
//! Tracked `RaceCell`s stand in for the caller-owned buffers the real
//! worker fills: any interleaving in which the worker's write is not
//! ordered before the caller's read by the protocol's own edges
//! (mutex + condvar + join) is reported as a data race.

#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::Arc;

use mmsb_check::model::{explore, Config, ModelSync, RaceCell};
use mmsb_pool::BackgroundWorkerIn;

type Worker = BackgroundWorkerIn<ModelSync>;

/// Acceptance gate (ISSUE 3): >= 1000 distinct interleavings of the
/// publish/join protocol, zero violations.
#[test]
fn publish_join_protocol_is_clean_across_1000_interleavings() {
    let cfg = Config {
        preemption_bound: 5,
        max_executions: 50_000,
        ..Config::default()
    };
    let report = explore(&cfg, || {
        let worker = Worker::new("bg");
        let cell = Arc::new(RaceCell::new("payload", 0u64));
        for round in 1..=2u64 {
            let c2 = Arc::clone(&cell);
            let mut slot = Some(move || c2.set(round));
            // SAFETY: `slot` outlives the `join` below and is untouched
            // in between.
            unsafe { worker.spawn(&mut slot) };
            worker.join();
            drop(slot);
            // The join edge must order the worker's write before this
            // read; a protocol bug shows up as a DataRace here.
            assert_eq!(cell.get(), round);
        }
        assert!(worker.is_idle());
    });
    report.assert_ok();
    assert!(
        report.executions >= 1000,
        "expected >= 1000 distinct interleavings, got {} (complete={})",
        report.executions,
        report.complete
    );
}

/// Dropping the worker while a task is in flight must wait the task
/// out: the drop-side wait plus thread join orders the task's write
/// before anything the caller does afterwards.
#[test]
fn drop_while_in_flight_is_clean() {
    let cfg = Config {
        preemption_bound: 2,
        max_executions: 20_000,
        ..Config::default()
    };
    let report = explore(&cfg, || {
        let cell = Arc::new(RaceCell::new("inflight", 0u64));
        let mut slot = {
            let c2 = Arc::clone(&cell);
            let worker = Worker::new("bg-drop");
            let mut slot = Some(move || c2.set(9));
            // SAFETY: `slot` outlives the drop of `worker` (which waits
            // out the in-flight task) and is untouched in between.
            unsafe { worker.spawn(&mut slot) };
            drop(worker);
            slot
        };
        let _ = slot.take();
        assert_eq!(cell.get(), 9, "drop must have waited the task out");
    });
    report.assert_ok();
    assert!(report.complete, "drop protocol should be fully explorable");
}

/// `wait` on an idle worker and repeated publish/join rounds keep the
/// slot state machine consistent (no stale pending, no stale payload).
#[test]
fn idle_wait_and_reuse_is_clean() {
    let cfg = Config {
        preemption_bound: 2,
        max_executions: 20_000,
        ..Config::default()
    };
    let report = explore(&cfg, || {
        let worker = Worker::new("bg-reuse");
        assert!(worker.wait().is_none());
        let cell = Arc::new(RaceCell::new("reuse", 0u64));
        let c2 = Arc::clone(&cell);
        let mut slot = Some(move || c2.set(1));
        // SAFETY: `slot` outlives the `join` below and is untouched in
        // between.
        unsafe { worker.spawn(&mut slot) };
        worker.join();
        drop(slot);
        assert_eq!(cell.get(), 1);
        assert!(worker.wait().is_none(), "no payload for a clean task");
    });
    report.assert_ok();
}
