//! Fixture: one of each hot-path-alloc class (path, macro, method).

pub fn describe(k: usize) -> (Vec<f64>, String) {
    let buf = Vec::new();
    let zeros = vec![0.0; k];
    let label = format!("k={k}");
    let _ = zeros.iter().copied().collect::<Vec<f64>>();
    (buf, label)
}
