//! Fixture: acquires `state` (rank 0) while holding `current` (rank 2)
//! — an inversion of the declared partial order.

use crate::sync::Mutex;

pub struct Pair {
    state: Mutex<u64>,
    current: Mutex<u64>,
}

impl Pair {
    pub fn swapped(&self) -> u64 {
        let c = self.current.lock();
        let s = self.state.lock();
        *c + *s
    }
}
