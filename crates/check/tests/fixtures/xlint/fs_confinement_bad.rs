//! Fixture: ad-hoc file I/O outside the sanctioned persistence layers.

use std::fs;

pub fn dump(path: &str, data: &[u8]) -> std::io::Result<Vec<u8>> {
    std::fs::write(path, data)?;
    std::fs::read(path)
}
