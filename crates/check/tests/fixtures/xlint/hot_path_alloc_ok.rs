//! Fixture: the conforming twin of `hot_path_alloc_bad.rs` — the caller
//! provides the buffer; the hot path only fills it.

pub fn fill(buf: &mut [f64], x: f64) -> usize {
    for slot in buf.iter_mut() {
        *slot = x;
    }
    buf.len()
}
