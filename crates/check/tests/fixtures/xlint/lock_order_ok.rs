//! Fixture: the conforming twin of `lock_order_bad.rs` — acquisitions
//! follow the declared partial order `state < model_path < current`.

use crate::sync::Mutex;

pub struct Pair {
    state: Mutex<u64>,
    current: Mutex<u64>,
}

impl Pair {
    pub fn ordered(&self) -> u64 {
        let s = self.state.lock();
        let c = self.current.lock();
        *s + *c
    }
}
