//! Fixture: the conforming twin of `hot_path_panic_bad.rs` — fallible
//! access instead of panicking shortcuts.

pub fn lookup(xs: &[f64], i: usize) -> Option<f64> {
    let first = xs.first()?;
    let v = xs.get(i)?;
    if !v.is_finite() {
        return None;
    }
    Some(first + v)
}
