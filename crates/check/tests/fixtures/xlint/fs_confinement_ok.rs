//! Fixture: the conforming twin of `fs_confinement_bad.rs` — the
//! production path takes a writer instead of naming the filesystem,
//! and the tempfile round-trip lives under `#[cfg(test)]`, which the
//! rule exempts.

use std::io::Write;

pub fn dump<W: Write>(mut sink: W, data: &[u8]) -> std::io::Result<()> {
    sink.write_all(data)
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        let path = std::env::temp_dir().join("fs_confinement_fixture");
        std::fs::write(&path, b"payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        let _ = std::fs::remove_file(&path);
    }
}
