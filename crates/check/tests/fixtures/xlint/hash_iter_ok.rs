//! Fixture: the conforming twin of `hash_iter_bad.rs` — ordered
//! containers, so iteration order is deterministic.

use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> (usize, usize) {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
        seen.insert(x);
    }
    (counts.len(), seen.len())
}
