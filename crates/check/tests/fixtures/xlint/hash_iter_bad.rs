//! Fixture: std hash containers in a determinism-scoped crate —
//! iteration order varies run to run.

use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> (usize, usize) {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
        seen.insert(x);
    }
    (counts.len(), seen.len())
}
