//! Fixture: one of each hot-path-panic class (method, macro, indexing).

pub fn lookup(xs: &[f64], i: usize) -> f64 {
    let first = xs.first().unwrap();
    let v = xs[i];
    if !v.is_finite() {
        panic!("non-finite value");
    }
    first + v
}
