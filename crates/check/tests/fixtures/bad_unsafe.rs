// Lint fixture (NOT compiled — lives under a `fixtures/` dir the
// workspace walker skips). Contains an unsafe block with no SAFETY
// comment and a stray std::sync import; `xlint_gate.rs` asserts the
// lint flags both when told this file lives in `crates/pool/src`.

use std::sync::Mutex;

static mut COUNTER: u64 = 0;

pub fn bump() -> u64 {
    unsafe {
        COUNTER += 1;
        COUNTER
    }
}
