//! Fixture gate for the four item-level rules (ISSUE satellite 3): one
//! violating and one conforming fixture per rule, with the violating
//! side pinned to the *exact* `--json` document — file, line, rule, and
//! message text. A wording or line-attribution drift in any rule fails
//! here, not in a downstream consumer.

use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/xlint")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("fixture {}: {e}", p.display()))
}

/// Lint a fixture as if it lived at `rel`, returning the `--json`
/// document its violations render to.
fn lint_as(rel: &str, name: &str) -> String {
    let violations = mmsb_check::lint::lint_file(rel, &fixture(name));
    let doc = mmsb_check::lint::json::render(&violations);
    // Whatever we assert on below is also schema-valid by construction.
    mmsb_check::lint::json::validate_schema(&doc).expect("fixture document validates");
    doc
}

const EMPTY: &str = "{\"version\":1,\"count\":0,\"violations\":[]}";

#[test]
fn hot_path_panic_fixture_pair() {
    assert_eq!(
        lint_as("crates/simd/src/math.rs", "hot_path_panic_bad.rs"),
        "{\"version\":1,\"count\":3,\"violations\":[\
         {\"file\":\"crates/simd/src/math.rs\",\"line\":4,\"rule\":\"hot-path-panic\",\
         \"message\":\"`.unwrap()` in a hot-path module can panic; handle the error or \
         prove it impossible and suppress with justification\"},\
         {\"file\":\"crates/simd/src/math.rs\",\"line\":5,\"rule\":\"hot-path-panic\",\
         \"message\":\"slice indexing after `xs` in a hot-path module panics on \
         out-of-bounds; use `get`, restructure, or suppress with a bounds proof\"},\
         {\"file\":\"crates/simd/src/math.rs\",\"line\":7,\"rule\":\"hot-path-panic\",\
         \"message\":\"`panic!` in a hot-path module aborts the worker; return an error \
         instead\"}]}"
    );
    assert_eq!(lint_as("crates/simd/src/math.rs", "hot_path_panic_ok.rs"), EMPTY);
}

#[test]
fn hot_path_alloc_fixture_pair() {
    assert_eq!(
        lint_as("crates/simd/src/math.rs", "hot_path_alloc_bad.rs"),
        "{\"version\":1,\"count\":4,\"violations\":[\
         {\"file\":\"crates/simd/src/math.rs\",\"line\":4,\"rule\":\"hot-path-alloc\",\
         \"message\":\"`Vec::new` allocates in a hot-path module; reuse a preallocated \
         buffer, or suppress if this is setup-time construction\"},\
         {\"file\":\"crates/simd/src/math.rs\",\"line\":5,\"rule\":\"hot-path-alloc\",\
         \"message\":\"`vec!` allocates in a hot-path module; reuse a preallocated \
         buffer, or suppress if this is setup-time construction\"},\
         {\"file\":\"crates/simd/src/math.rs\",\"line\":6,\"rule\":\"hot-path-alloc\",\
         \"message\":\"`format!` allocates in a hot-path module; reuse a preallocated \
         buffer, or suppress if this is setup-time construction\"},\
         {\"file\":\"crates/simd/src/math.rs\",\"line\":7,\"rule\":\"hot-path-alloc\",\
         \"message\":\"`.collect()` allocates in a hot-path module; write into a caller \
         buffer instead\"}]}"
    );
    assert_eq!(lint_as("crates/simd/src/math.rs", "hot_path_alloc_ok.rs"), EMPTY);
}

#[test]
fn lock_order_fixture_pair() {
    assert_eq!(
        lint_as("crates/pool/src/lib.rs", "lock_order_bad.rs"),
        "{\"version\":1,\"count\":1,\"violations\":[\
         {\"file\":\"crates/pool/src/lib.rs\",\"line\":14,\"rule\":\"lock-order\",\
         \"message\":\"fn `swapped` acquires `state` (rank 0) after `current` (rank 2); \
         the declared order is state < model_path < current\"}]}"
    );
    assert_eq!(lint_as("crates/pool/src/lib.rs", "lock_order_ok.rs"), EMPTY);
}

#[test]
fn hash_iter_fixture_pair() {
    const MSG_MAP: &str = "std `HashMap` in a result-affecting crate: its per-process \
         hasher seed makes iteration order nondeterministic; use BTreeMap/BTreeSet or \
         `mmsb_graph::FxHashMap`/`FxHashSet`";
    const MSG_SET: &str = "std `HashSet` in a result-affecting crate: its per-process \
         hasher seed makes iteration order nondeterministic; use BTreeMap/BTreeSet or \
         `mmsb_graph::FxHashMap`/`FxHashSet`";
    let entry = |line: usize, msg: &str| {
        format!(
            "{{\"file\":\"crates/core/src/graph.rs\",\"line\":{line},\
             \"rule\":\"hash-iter\",\"message\":\"{msg}\"}}"
        )
    };
    // Two tokens on the import line, two on each declaration line
    // (type ascription + constructor path).
    let expected = format!(
        "{{\"version\":1,\"count\":6,\"violations\":[{},{},{},{},{},{}]}}",
        entry(4, MSG_MAP),
        entry(4, MSG_SET),
        entry(7, MSG_MAP),
        entry(7, MSG_MAP),
        entry(8, MSG_SET),
        entry(8, MSG_SET),
    );
    assert_eq!(
        lint_as("crates/core/src/graph.rs", "hash_iter_bad.rs"),
        expected
    );
    assert_eq!(lint_as("crates/core/src/graph.rs", "hash_iter_ok.rs"), EMPTY);
}

#[test]
fn fs_confinement_fixture_pair() {
    const MSG: &str = "`std::fs` named outside the sanctioned persistence layers; \
         route durable bytes through mmsb_ooc / graph::io / Checkpoint / obs export, \
         or extend FS_ALLOWED in crates/check/src/lint/rules.rs";
    let entry = |line: usize| {
        format!(
            "{{\"file\":\"crates/core/src/eval.rs\",\"line\":{line},\
             \"rule\":\"fs-confinement\",\"message\":\"{MSG}\"}}"
        )
    };
    // One token path on the import line, one per fs call.
    let expected = format!(
        "{{\"version\":1,\"count\":3,\"violations\":[{},{},{}]}}",
        entry(3),
        entry(6),
        entry(7),
    );
    assert_eq!(
        lint_as("crates/core/src/eval.rs", "fs_confinement_bad.rs"),
        expected
    );
    // The conforming twin keeps its tempfile round-trip under
    // `#[cfg(test)]`, which the rule exempts.
    assert_eq!(lint_as("crates/core/src/eval.rs", "fs_confinement_ok.rs"), EMPTY);
}

/// An item-level suppression with a justification waives the fixture's
/// violations and counts as used (no unused-suppression backlash).
#[test]
fn suppression_waives_the_fixture_violation() {
    // Replace the fixture's doc comment with a suppression directly
    // above the fn, so the whole item span is covered.
    let src = format!(
        "// xlint: allow(hot-path-panic) — fixture exercise: bounds are a test invariant\n{}",
        fixture("hot_path_panic_bad.rs")
            .lines()
            .skip(2)
            .collect::<Vec<_>>()
            .join("\n")
    );
    let violations = mmsb_check::lint::lint_file("crates/simd/src/math.rs", &src);
    assert!(
        violations.is_empty(),
        "suppressed fixture must be clean: {violations:?}"
    );
}
