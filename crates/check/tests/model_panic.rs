//! Panic-path model tests, isolated in their own test binary (= their
//! own process) because the explored bodies panic intentionally in
//! every execution: a quiet panic hook keeps thousands of expected
//! panics from flooding the output. Violations in these tests would
//! still surface through the returned `Report`, not through the hook.

#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::Arc;

use mmsb_check::model::{explore, Config, ModelSync, RaceCell, ViolationKind};
use mmsb_pool::BackgroundWorkerIn;

type Worker = BackgroundWorkerIn<ModelSync>;

fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_executions: 20_000,
        ..Config::default()
    }
}

/// The satellite regression, model-checked: a task that panics before
/// the caller collects it must leave the worker idle in EVERY
/// interleaving — publish → panic → wait (captures payload) →
/// re-publish on the same worker, and the second task's write must be
/// ordered before the caller's read.
#[test]
fn panic_in_task_then_republish_is_clean_everywhere() {
    quiet_panics();
    let report = explore(&cfg(), || {
        let worker = Worker::new("bg-boom");
        let mut boom = Some(|| panic!("model boom"));
        // SAFETY: `boom` outlives the `wait` below and is untouched in
        // between.
        unsafe { worker.spawn(&mut boom) };
        let payload = worker.wait();
        assert!(payload.is_some(), "panicked task must yield its payload");
        assert!(worker.is_idle(), "panicked task left the slot in-flight");
        let _ = boom; // slot may be touched again only after the wait above
        // Re-publish on the same worker: the panic path must have fully
        // reset the slot state machine.
        let cell = Arc::new(RaceCell::new("after-boom", 0u64));
        let c2 = Arc::clone(&cell);
        let mut slot = Some(move || c2.set(3));
        // SAFETY: `slot` outlives the `join` below and is untouched in
        // between.
        unsafe { worker.spawn(&mut slot) };
        worker.join();
        drop(slot);
        assert_eq!(cell.get(), 3);
        assert!(worker.wait().is_none(), "stale panic payload survived");
    });
    report.assert_ok();
}

/// Dropping the worker while a *panicking* task is in flight: the drop
/// must wait the task out and swallow the payload, with no deadlock in
/// any interleaving.
#[test]
fn drop_with_in_flight_panicking_task_is_clean() {
    quiet_panics();
    let report = explore(&cfg(), || {
        let worker = Worker::new("bg-boom-drop");
        let mut boom = Some(|| panic!("in-flight boom"));
        // SAFETY: `boom` outlives the drop of `worker`, which waits out
        // the in-flight task.
        unsafe { worker.spawn(&mut boom) };
        drop(worker);
        let _ = boom; // slot outlives the waiting drop above
    });
    report.assert_ok();
    assert!(report.complete);
}

/// Pool chunk panic: `run` must re-throw after all workers drain and
/// the pool must stay usable — in every interleaving.
#[test]
fn pool_chunk_panic_drains_and_pool_survives() {
    quiet_panics();
    let report = explore(
        &Config {
            preemption_bound: 2,
            max_executions: 10_000,
            max_steps: 50_000,
            ..Config::default()
        },
        || {
            let pool = mmsb_pool::ThreadPoolIn::<ModelSync>::new(2);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(2, |_worker, chunk| {
                    if chunk == 1 {
                        panic!("chunk boom");
                    }
                });
            }));
            assert!(caught.is_err(), "chunk panic must re-throw from run");
            // The pool must remain usable after a panicked job.
            let cell = Arc::new(RaceCell::new("after-chunk-boom", 0u64));
            pool.run(1, |_worker, _chunk| cell.set(1));
            assert_eq!(cell.get(), 1);
        },
    );
    report.assert_ok();
}

/// A panic that escapes a model thread (nothing catches it) is itself a
/// reported violation, not a hang or a silent pass.
#[test]
fn escaped_thread_panic_is_reported() {
    quiet_panics();
    let report = explore(&cfg(), || {
        let h = mmsb_check::model::spawn("doomed", || panic!("escaped"));
        mmsb_check::model::join(h);
    });
    let v = report.violation.expect("escaped panic must be reported");
    assert_eq!(v.kind, ViolationKind::ThreadPanic);
    assert!(v.message.contains("escaped"), "payload in message: {}", v.message);
}
