//! Model checking of `mmsb-serve`'s admission / drain protocol — the
//! exact generic code production runs (`AdmissionIn`), instantiated on
//! the model backend so every interleaving of admit vs. release vs.
//! drain is explored, not just the ones a live-server test happens to
//! hit.
//!
//! The properties the overload layer stands on:
//!
//! * **slot conservation** — every admitted connection is released
//!   exactly once, under any interleaving of concurrent admits and
//!   releases (`admitted_total == released_total`, quiescent at join);
//! * **no lost connections at drain** — an admit racing `begin_drain`
//!   either refuses or is fully visible to the drainer; the drain's
//!   quiescence condition is reached in every interleaving;
//! * **shed correction is exact** — over-cap admits undo their charge,
//!   so `admitted + shed == attempts` and the gauge never wedges;
//! * **the checker actually catches bugs** — two seeded-bug negative
//!   controls (a leaked permit, a double decrement) must each produce a
//!   violation, so the green runs above mean something.

use std::sync::Arc;

use mmsb_check::model::{self, explore, Config, ModelSync};
use mmsb_serve::{Admit, AdmissionIn, ConnClose, Lifecycle};

type Adm = AdmissionIn<ModelSync>;

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_executions: 20_000,
        max_steps: 50_000,
        ..Config::default()
    }
}

/// Two threads admit, serve a request, and release concurrently: in
/// every interleaving the books balance and the controller is
/// quiescent after both are joined.
#[test]
fn concurrent_admits_conserve_slots() {
    let report = explore(&cfg(), || {
        let adm = Arc::new(Adm::new(2, 2));
        let worker = {
            let adm = Arc::clone(&adm);
            model::spawn("worker", move || {
                if let Admit::Admitted(permit) = adm.try_admit() {
                    let req = adm.begin_request();
                    drop(req);
                    drop(permit);
                }
            })
        };
        if let Admit::Admitted(permit) = adm.try_admit() {
            let req = adm.begin_request();
            drop(req);
            permit.close(ConnClose::Normal);
        }
        model::join(worker);

        assert!(adm.quiescent(), "slots leaked: {adm:?}");
        let (admitted, released, shed_conns, shed_requests) = adm.totals();
        assert_eq!(admitted, released, "admit/release books must balance");
        assert_eq!(admitted, 2, "cap 2 admits both");
        assert_eq!((shed_conns, shed_requests), (0, 0));
    });
    report.assert_ok();
    assert!(report.complete, "protocol should be fully explorable");
    assert!(report.executions > 1, "admit/release must interleave");
}

/// One thread admits while another drains: however they interleave,
/// the admit is either refused (`Draining`) or its slot is visible to
/// the drainer until released — a connection is never admitted but
/// invisible, and the drain's quiescence condition is always reached.
#[test]
fn drain_racing_admit_never_loses_a_connection() {
    let report = explore(&cfg(), || {
        let adm = Arc::new(Adm::new(4, 4));
        let drainer = {
            let adm = Arc::clone(&adm);
            model::spawn("drainer", move || {
                adm.begin_drain();
            })
        };
        let admitted = match adm.try_admit() {
            Admit::Admitted(permit) => {
                // Slot charged: the drainer must see it until closed.
                assert!(!adm.quiescent());
                permit.close(ConnClose::DrainCompleted);
                true
            }
            Admit::Shed => panic!("cap 4 cannot shed a single admit"),
            Admit::Draining => false,
        };
        model::join(drainer);

        // Drain termination: after the racing admit resolved, the
        // controller is quiescent and stays closed to new work.
        assert!(adm.quiescent(), "drain cannot terminate: {adm:?}");
        assert_eq!(adm.lifecycle(), Lifecycle::Draining);
        assert!(matches!(adm.try_admit(), Admit::Draining));
        let (completed, aborted) = adm.drain_counts();
        assert_eq!(aborted, 0);
        assert_eq!(completed, usize::from(admitted));
        let (admitted_total, released_total, ..) = adm.totals();
        assert_eq!(admitted_total, released_total);
    });
    report.assert_ok();
    assert!(report.complete);
    assert!(report.executions > 1, "drain/admit must interleave");
}

/// Two threads fight over a single connection slot: the loser's
/// corrective decrement must be exact, so `admitted + shed == attempts`
/// and the slot count never wedges above the cap.
#[test]
fn over_cap_shed_correction_is_exact() {
    let report = explore(&cfg(), || {
        let adm = Arc::new(Adm::new(1, 4));
        let rival = {
            let adm = Arc::clone(&adm);
            model::spawn("rival", move || {
                if let Admit::Admitted(permit) = adm.try_admit() {
                    drop(permit);
                }
            })
        };
        if let Admit::Admitted(permit) = adm.try_admit() {
            drop(permit);
        }
        model::join(rival);

        assert!(adm.quiescent(), "shed correction leaked a slot: {adm:?}");
        let (admitted, released, shed_conns, _) = adm.totals();
        assert_eq!(admitted, released);
        assert_eq!(
            admitted + shed_conns,
            2,
            "every attempt is admitted or shed, never lost"
        );
        assert!(admitted >= 1, "serial losers aside, someone got in");
        // The slot is free again: the cap was never wedged by the race.
        assert!(matches!(adm.try_admit(), Admit::Admitted(_)));
    });
    report.assert_ok();
    assert!(report.complete);
    assert!(report.executions > 1, "cap fight must interleave");
}

/// Lifecycle is monotone under a drain/force-close race: `begin_drain`
/// can never roll a `Closed` controller back to `Draining`.
#[test]
fn lifecycle_is_monotone_under_races() {
    let report = explore(&cfg(), || {
        let adm = Arc::new(Adm::new(2, 2));
        let closer = {
            let adm = Arc::clone(&adm);
            model::spawn("closer", move || {
                adm.force_close();
            })
        };
        adm.begin_drain();
        model::join(closer);
        assert_eq!(
            adm.lifecycle(),
            Lifecycle::Closed,
            "begin_drain rolled back a force_close"
        );
        assert!(matches!(adm.try_admit(), Admit::Draining));
    });
    report.assert_ok();
    assert!(report.complete);
}

/// Negative control #1: a worker that leaks its permit (the seeded
/// missing-decrement bug) must be caught — the post-join quiescence
/// assertion fires in the model and surfaces as a violation. Without
/// this test, a checker that ignored panics would pass everything.
#[test]
fn seeded_leaked_permit_is_caught() {
    let report = explore(&cfg(), || {
        let adm = Arc::new(Adm::new(2, 2));
        let leaker = {
            let adm = Arc::clone(&adm);
            model::spawn("leaker", move || {
                if let Admit::Admitted(permit) = adm.try_admit() {
                    // Seeded bug: the slot's decrement never happens.
                    std::mem::forget(permit);
                }
            })
        };
        model::join(leaker);
        assert!(adm.quiescent(), "leaked permit left a slot charged");
    });
    assert!(
        report.violation.is_some(),
        "the checker must catch the seeded permit leak"
    );
}

/// Negative control #2: a double decrement (releasing a slot that was
/// already released) underflows the usize slot count and must be
/// caught via the resulting panic/assertion, not silently wrap into
/// "billions of connections open".
#[test]
fn seeded_double_decrement_is_caught() {
    let report = explore(&cfg(), || {
        let adm = Arc::new(Adm::new(2, 2));
        if let Admit::Admitted(permit) = adm.try_admit() {
            drop(permit); // legitimate release
        }
        // Seeded bug: a second release of the same slot.
        adm.raw_release_conn_for_tests();
        assert!(
            adm.conns() == 0,
            "double decrement wrapped the slot count: {}",
            adm.conns()
        );
    });
    assert!(
        report.violation.is_some(),
        "the checker must catch the seeded double decrement"
    );
}
