//! Model checking of the `PrefetchingReader` ping-pong handoff
//! (mmsb-dkv `pipeline.rs`), distilled onto the sync layer: a
//! `BackgroundWorkerIn` fills the *back* buffer while the main thread
//! consumes the *front* one, then the buffers swap roles after `join`.
//!
//! The buffers are tracked `RaceCell`s, so the checker verifies the
//! exact property the real pipeline relies on: the publish/join edges
//! of the worker protocol are the ONLY thing ordering the background
//! fill against the caller's reads — and they are sufficient in every
//! interleaving. The companion negative test shows the checker bites:
//! touching the in-flight buffer from the caller is reported as a race.

#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::Arc;

use mmsb_check::model::{explore, Config, ModelSync, RaceCell, ViolationKind};
use mmsb_pool::BackgroundWorkerIn;

type Worker = BackgroundWorkerIn<ModelSync>;

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_executions: 20_000,
        ..Config::default()
    }
}

/// The double-buffer protocol, as the pipeline runs it: prime the front
/// buffer, then per iteration (1) kick off the back-buffer load,
/// (2) compute on the front buffer, (3) join, (4) swap.
#[test]
fn ping_pong_handoff_is_race_free() {
    let report = explore(&cfg(), || {
        let worker = Worker::new("prefetch");
        let bufs = [
            Arc::new(RaceCell::new("buf0", 0u64)),
            Arc::new(RaceCell::new("buf1", 0u64)),
        ];
        bufs[0].set(100); // prime the first front buffer synchronously
        let mut front = 0usize;
        let mut consumed = Vec::new();
        for it in 0..2u64 {
            let back = 1 - front;
            let fill = Arc::clone(&bufs[back]);
            let mut slot = Some(move || fill.set(101 + it));
            // SAFETY: `slot` outlives the `join` below; the caller only
            // touches the *front* buffer while the task is in flight.
            unsafe { worker.spawn(&mut slot) };
            consumed.push(bufs[front].get()); // overlapped compute
            worker.join();
            drop(slot);
            front = back;
        }
        consumed.push(bufs[front].get());
        assert_eq!(consumed, vec![100, 101, 102]);
    });
    report.assert_ok();
    assert!(report.complete, "ping-pong should be fully explorable");
}

/// Negative control: reading the buffer that is still being filled is
/// exactly the bug the ping-pong discipline exists to prevent, and the
/// checker must catch it in some interleaving.
#[test]
fn reading_the_in_flight_buffer_is_a_race() {
    let report = explore(&cfg(), || {
        let worker = Worker::new("prefetch-bad");
        let buf = Arc::new(RaceCell::new("back", 0u64));
        let fill = Arc::clone(&buf);
        let mut slot = Some(move || fill.set(1));
        // SAFETY: `slot` outlives the `join` below.
        unsafe { worker.spawn(&mut slot) };
        let _ = buf.get(); // BUG: back buffer read while load in flight
        worker.join();
        drop(slot);
    });
    let v = report
        .violation
        .expect("reading the in-flight buffer must race");
    assert_eq!(v.kind, ViolationKind::DataRace);
    assert!(v.message.contains("back"), "names the buffer: {}", v.message);
}

/// The pipeline's `WaitGuard` discipline: if the overlapped compute
/// step unwinds, the guard waits out the in-flight load before the
/// unwind continues, so the slot's borrow contract holds on the panic
/// path too. Modeled with an explicit wait in the unwind handler.
#[test]
fn panicking_compute_still_waits_out_the_load() {
    let report = explore(&cfg(), || {
        let worker = Worker::new("prefetch-guard");
        let buf = Arc::new(RaceCell::new("guarded", 0u64));
        let fill = Arc::clone(&buf);
        let mut slot = Some(move || fill.set(5));
        // SAFETY: `slot` outlives the `wait` in the handler below (the
        // guard discipline this test models), and the caller never
        // touches the in-flight buffer.
        unsafe { worker.spawn(&mut slot) };
        let compute: Result<(), u32> = Err(17); // stand-in for the unwinding compute
        if compute.is_err() {
            // WaitGuard drop path: the load must complete before the
            // caller's frames (owning `slot` and the buffer) unwind.
            let payload = worker.wait();
            assert!(payload.is_none(), "load itself did not panic");
        }
        drop(slot);
        assert_eq!(buf.get(), 5);
    });
    report.assert_ok();
    assert!(report.complete);
}
