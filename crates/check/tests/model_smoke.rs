//! Basic sanity of the explorer itself: interleavings are actually
//! explored, clean protocols report clean, and an obvious unsynchronized
//! pair is caught.

use std::sync::Arc;

use mmsb_check::model::{self, explore, Config, ModelSync, RaceCell, ViolationKind};
use mmsb_pool::sync::SyncBackend;

#[test]
fn counter_under_mutex_is_clean_and_multiply_explored() {
    let report = explore(&Config::default(), || {
        let m = Arc::new(ModelSync::mutex(0u64));
        let m2 = Arc::clone(&m);
        let h = model::spawn("adder", move || {
            *ModelSync::lock(&m2) += 1;
        });
        *ModelSync::lock(&m) += 1;
        model::join(h);
        assert_eq!(*ModelSync::lock(&m), 2);
    });
    report.assert_ok();
    assert!(report.complete, "DFS should exhaust this tiny protocol");
    assert!(
        report.executions > 1,
        "two unordered lock acquisitions must yield multiple interleavings, got {}",
        report.executions
    );
}

#[test]
fn unsynchronized_writes_race() {
    let report = explore(&Config::default(), || {
        let c = Arc::new(RaceCell::new("shared", 0u64));
        let c2 = Arc::clone(&c);
        let h = model::spawn("writer", move || {
            c2.set(1);
        });
        c.set(2);
        model::join(h);
    });
    let v = report.violation.expect("unsynchronized writes must race");
    assert_eq!(v.kind, ViolationKind::DataRace);
    assert!(v.message.contains("shared"), "message names the cell: {}", v.message);
}

#[test]
fn mutex_protected_cell_is_clean() {
    let report = explore(&Config::default(), || {
        let m = Arc::new(ModelSync::mutex(()));
        let c = Arc::new(RaceCell::new("guarded", 0u64));
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        let h = model::spawn("writer", move || {
            let _g = ModelSync::lock(&m2);
            c2.set(1);
        });
        {
            let _g = ModelSync::lock(&m);
            let v = c.get();
            c.set(v + 1);
        }
        model::join(h);
    });
    report.assert_ok();
    assert!(report.complete);
}

#[test]
fn classic_deadlock_is_caught() {
    let report = explore(&Config::default(), || {
        let a = Arc::new(ModelSync::mutex(()));
        let b = Arc::new(ModelSync::mutex(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h = model::spawn("inverted", move || {
            let _gb = ModelSync::lock(&b2);
            let _ga = ModelSync::lock(&a2);
        });
        {
            let _ga = ModelSync::lock(&a);
            let _gb = ModelSync::lock(&b);
        }
        model::join(h);
    });
    let v = report.violation.expect("lock-order inversion must deadlock");
    assert_eq!(v.kind, ViolationKind::Deadlock);
}
