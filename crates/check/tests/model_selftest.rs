//! Checker self-tests: seeded concurrency bugs in intentionally-buggy
//! shims of the pool's protocols, each asserting the checker actually
//! reports the bug — plus the replay-determinism guarantee that makes
//! counterexamples reproducible from a seed.

use std::sync::Arc;

use mmsb_check::model::{
    self, explore, Config, ModelSync, PublishSlot, RaceCell, ViolationKind,
};
use mmsb_pool::sync::SyncBackend;

/// Buggy shim #1 — missing notify (lost wakeup): a consumer waits on a
/// condvar for a flag the producer sets under the same mutex, but the
/// producer never notifies. Some interleaving leaves the consumer
/// blocked forever; the checker must report it as a deadlock.
#[test]
fn missing_notify_is_reported_as_deadlock() {
    let report = explore(&Config::default(), || {
        let m = Arc::new(ModelSync::mutex(false));
        let cv = Arc::new(ModelSync::condvar());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let consumer = model::spawn("consumer", move || {
            let mut flag = ModelSync::lock(&m2);
            while !*flag {
                flag = ModelSync::wait(&cv2, flag);
            }
        });
        *ModelSync::lock(&m) = true;
        // BUG: no ModelSync::notify_one(&cv) — the wakeup is lost.
        model::join(consumer);
    });
    let v = report.violation.expect("lost wakeup must be caught");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(
        v.trace.contains("BlockedCv") || v.message.contains("BlockedCv"),
        "the stuck waiter shows in the report: {}",
        v.message
    );
}

/// Buggy shim #2 — torn publish: the producer hands a payload over via
/// a plain flag instead of a release/acquire edge, so the consumer can
/// observe the flag without the payload write being ordered first.
/// Both cells are tracked; the checker must flag the unsynchronized
/// pair as a data race.
#[test]
fn torn_publish_is_reported_as_data_race() {
    let report = explore(&Config::default(), || {
        let data = Arc::new(RaceCell::new("payload", 0u64));
        let ready = Arc::new(RaceCell::new("ready-flag", 0u64));
        let (d2, r2) = (Arc::clone(&data), Arc::clone(&ready));
        let producer = model::spawn("producer", move || {
            d2.set(42);
            r2.set(1); // BUG: plain write, no release edge
        });
        if ready.get() == 1 {
            assert_eq!(data.get(), 42);
        }
        model::join(producer);
    });
    let v = report.violation.expect("torn publish must be caught");
    assert_eq!(v.kind, ViolationKind::DataRace);
}

/// Buggy shim #3 — double publish: publishing into a slot that was
/// never consumed. This is the model analogue of `BackgroundWorker`
/// publishing a task while one is still in flight.
#[test]
fn double_publish_is_reported() {
    let report = explore(&Config::default(), || {
        let slot = PublishSlot::new("task-slot");
        slot.publish(1u64);
        slot.publish(2u64); // BUG: previous payload never consumed
    });
    let v = report.violation.expect("double publish must be caught");
    assert_eq!(v.kind, ViolationKind::DoublePublish);
    assert!(v.message.contains("task-slot"));
}

/// Buggy shim #4 — consume of an empty slot (the mirror-image protocol
/// violation: collecting a result that was never published).
#[test]
fn empty_consume_is_reported() {
    let report = explore(&Config::default(), || {
        let slot = PublishSlot::<u64>::new("result-slot");
        let _ = slot.consume(); // BUG: nothing was published
    });
    let v = report.violation.expect("empty consume must be caught");
    assert_eq!(v.kind, ViolationKind::EmptyConsume);
}

/// A racy-but-rare interleaving: the race only exists when the spawned
/// thread's write lands between the two main-thread accesses. The
/// bounded DFS must still find it (exhaustiveness within the bound).
#[test]
fn rare_interleaving_race_is_still_found() {
    let report = explore(&Config::default(), || {
        let c = Arc::new(RaceCell::new("rare", 0u64));
        let m = Arc::new(ModelSync::mutex(()));
        let (c2, m2) = (Arc::clone(&c), Arc::clone(&m));
        let h = model::spawn("late-writer", move || {
            let _g = ModelSync::lock(&m2);
            c2.set(1); // races with the main-thread accesses below
        });
        {
            // BUG: main takes the "protecting" mutex only *after* its
            // first access, so exactly one access pair is unordered.
            let _ = c.get();
            let _g = ModelSync::lock(&m);
            let _ = c.get();
        }
        model::join(h);
    });
    let v = report.violation.expect("the rare interleaving must be explored");
    assert_eq!(v.kind, ViolationKind::DataRace);
}

/// Replay determinism: the DFS is a pure function of (seed, bounds), so
/// exploring the same buggy body twice yields bit-identical reports —
/// same execution count, same violation, same trace line for line.
/// This is what makes a counterexample from CI reproducible locally.
#[test]
fn counterexamples_replay_deterministically_from_seed() {
    fn run(seed: u64) -> (usize, String) {
        let cfg = Config {
            seed,
            ..Config::default()
        };
        let report = explore(&cfg, || {
            let c = Arc::new(RaceCell::new("replay", 0u64));
            let c2 = Arc::clone(&c);
            let h = model::spawn("writer", move || c2.set(1));
            let _ = c.get();
            model::join(h);
        });
        let v = report.violation.expect("unsynchronized pair must race");
        (report.executions, format!("{:?}: {}\n{}", v.kind, v.message, v.trace))
    }
    let (n1, t1) = run(7);
    let (n2, t2) = run(7);
    assert_eq!(n1, n2, "same seed => same number of executions to the bug");
    assert_eq!(t1, t2, "same seed => identical counterexample trace");
    // A different seed permutes the search order but must find the same
    // *kind* of bug (the state space does not depend on the seed).
    let (_, t3) = run(1234);
    assert!(t3.starts_with("DataRace"), "seed only permutes order: {t3}");
}
