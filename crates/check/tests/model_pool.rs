//! Model checking of the fork-join `ThreadPoolIn` protocol — the same
//! generic source production runs — including the pattern the theta
//! binary-tree reduction uses: workers write per-chunk partials, the
//! caller combines them after `run` returns, relying solely on the
//! pool's epoch/done-condvar edges for ordering.

use std::sync::Arc;

use mmsb_check::model::{explore, Config, ModelSync, RaceCell};
use mmsb_pool::{tree_combine_f64, ThreadPoolIn};

type Pool = ThreadPoolIn<ModelSync>;

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_executions: 20_000,
        max_steps: 50_000,
        ..Config::default()
    }
}

/// Two threads, disjoint per-chunk outputs, caller reads after `run`:
/// the pool's done protocol must order every chunk write before the
/// caller's reads, in every interleaving.
#[test]
fn run_orders_chunk_writes_before_caller_reads() {
    let report = explore(&cfg(), || {
        let pool = Pool::new(2);
        let outs = [
            Arc::new(RaceCell::new("chunk0", 0u64)),
            Arc::new(RaceCell::new("chunk1", 0u64)),
        ];
        pool.run(2, |_worker, chunk| {
            outs[chunk].set(chunk as u64 + 10);
        });
        assert_eq!(outs[0].get(), 10);
        assert_eq!(outs[1].get(), 11);
    });
    report.assert_ok();
}

/// The theta-reduction shape: per-worker partials produced under the
/// pool, then combined by the caller with the same binary tree
/// production uses (`tree_combine_f64`). The combine step reads what
/// the helpers wrote — valid iff the pool's join edges hold.
#[test]
fn theta_tree_reduction_over_pool_partials_is_clean() {
    let report = explore(&cfg(), || {
        let pool = Pool::new(2);
        let partials = [
            Arc::new(RaceCell::new("partial0", 0.0f64)),
            Arc::new(RaceCell::new("partial1", 0.0f64)),
        ];
        pool.run(2, |_worker, chunk| {
            partials[chunk].set((chunk as f64 + 1.0) * 0.5);
        });
        // Caller-side tree combine over the model-tracked partials.
        let mut buf = [partials[0].get(), partials[1].get()];
        tree_combine_f64(&mut buf, 1, 2);
        assert_eq!(buf[0], 1.5);
    });
    report.assert_ok();
}

/// Back-to-back jobs on one pool: the epoch protocol must not let a
/// helper re-run a stale job or miss a new one (which would show up as
/// a deadlock or a wrong value here).
#[test]
fn consecutive_jobs_reuse_the_pool_cleanly() {
    let report = explore(&cfg(), || {
        let pool = Pool::new(2);
        let cell = Arc::new(RaceCell::new("acc", 0u64));
        for _ in 0..2 {
            let prev = cell.get();
            pool.run(1, |_worker, _chunk| {
                cell.set(prev + 1);
            });
        }
        assert_eq!(cell.get(), 2);
    });
    report.assert_ok();
}
