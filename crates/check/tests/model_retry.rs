//! Model checking of the stop-and-wait retry/timeout handshake
//! (`mmsb-pool` `retry.rs`) — the protocol core behind `mmsb-comm`'s
//! `ReliableEndpoint` and the fault layer's bounded-retry sends.
//!
//! The handshake's races are exactly what the checker explores: the
//! retransmission timer firing *just* as the ack arrives, a retransmit
//! landing after the original was already consumed (duplicate), and the
//! ack notify racing the sender blocking. The negative control seeds the
//! classic ARQ bug — a sender that gives up after one timeout without
//! retransmitting or closing — and the checker must report the stranded
//! receiver as a deadlock.

#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::Arc;

use mmsb_check::model::{self, explore, Config, ModelSync, RaceCell, ViolationKind};
use mmsb_pool::{ReliableLinkIn, SendOutcome};

type Link = ReliableLinkIn<ModelSync>;

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_executions: 20_000,
        max_steps: 50_000,
        ..Config::default()
    }
}

/// Attempt 0 is dropped by the fabric; a retry gets through. In *every*
/// interleaving — timer beating the ack, ack beating the timer, the
/// receiver lagging the whole exchange — the receiver must consume the
/// value exactly once, and the sender must have retransmitted.
#[test]
fn lost_first_attempt_delivers_exactly_once_in_all_schedules() {
    let report = explore(&cfg(), || {
        let link = Link::new();
        let rx_link = link.clone();
        let count = Arc::new(RaceCell::new("recv-count", 0u64));
        let value = Arc::new(RaceCell::new("recv-value", 0u64));
        let (count_rx, value_rx) = (Arc::clone(&count), Arc::clone(&value));
        let rx = model::spawn("receiver", move || {
            while let Some(v) = rx_link.recv_next() {
                count_rx.set(count_rx.get() + 1);
                value_rx.set(v);
            }
        });
        let outcome = link.send_reliable(1, 42, &|_seq: u64, a: u32| a >= 1, 2);
        link.close();
        model::join(rx);
        // The sender may see the ack (Delivered) or exhaust its budget
        // while the receiver lags (the queued copy is still consumed on
        // drain) — but it always needed more than one transmission, and
        // the watermark always deduplicates down to exactly one value.
        match outcome {
            SendOutcome::Delivered { attempts } => assert!(attempts >= 2, "{attempts}"),
            SendOutcome::Exhausted { attempts } => assert_eq!(attempts, 3),
        }
        assert_eq!(count.get(), 1, "exactly-once delivery violated");
        assert_eq!(value.get(), 42);
    });
    report.assert_ok();
}

/// The fabric duplicates a delivery (a retransmit lands after the
/// original already arrived). The receiver's high-water mark must
/// swallow the copy — one consume, then a clean close — with the re-ack
/// notify racing everything else.
#[test]
fn duplicate_delivery_is_suppressed_in_all_schedules() {
    let report = explore(&cfg(), || {
        let link = Link::new();
        let rx_link = link.clone();
        let count = Arc::new(RaceCell::new("recv-count", 0u64));
        let value = Arc::new(RaceCell::new("recv-value", 0u64));
        let (count_rx, value_rx) = (Arc::clone(&count), Arc::clone(&value));
        let rx = model::spawn("receiver", move || {
            while let Some(v) = rx_link.recv_next() {
                count_rx.set(count_rx.get() + 1);
                value_rx.set(v);
            }
        });
        link.offer(1, 99, true);
        link.offer(1, 99, true); // the retransmit that wasn't needed
        link.close();
        model::join(rx);
        assert_eq!(count.get(), 1, "duplicate leaked through the watermark");
        assert_eq!(value.get(), 99);
    });
    report.assert_ok();
    assert!(report.complete, "duplicate suppression should be fully explorable");
}

/// Negative control — the ARQ bug the retry loop exists to prevent: the
/// sender's only transmission is lost, and on the first timeout it gives
/// up *without* retransmitting or closing the link. The receiver then
/// waits for a delivery that can never come, and the checker must
/// report the stranded thread as a deadlock.
#[test]
fn giving_up_after_one_timeout_strands_the_receiver() {
    let report = explore(&cfg(), || {
        let link = Link::new();
        let rx_link = link.clone();
        let rx = model::spawn("receiver", move || {
            let _ = rx_link.recv_next();
        });
        link.offer(1, 7, false); // the fabric ate the only attempt
        let timer = link.arm_timeout();
        let _ = link.await_ack(1, timer);
        // BUG: no retransmit, no close — the receiver is stranded.
        model::join(rx);
    });
    let v = report.violation.expect("stranded receiver must be caught");
    assert_eq!(v.kind, ViolationKind::Deadlock);
    assert!(
        v.trace.contains("receiver") || v.message.contains("receiver"),
        "the stuck receiver shows in the report: {}",
        v.message
    );
}
