//! Model checking of `mmsb-serve`'s snapshot publication cell — the
//! exact generic code production runs (`SnapshotCellIn`), instantiated
//! on the model backend so every interleaving of publish vs. refresh
//! is explored, not just the ones a stress test happens to hit.
//!
//! The properties the serving layer stands on:
//!
//! * a refreshing reader never observes a torn (snapshot, generation)
//!   pair — value `i` is published at generation `i`, so consistency
//!   is `value == generation`;
//! * generations observed by one reader never go backwards;
//! * the steady-state refresh (no concurrent publish) stays on the
//!   lock-free fast path and reports "not updated".

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mmsb_check::model::{self, explore, Config, ModelSync};
use mmsb_pool::sync::SyncBackend;
use mmsb_serve::SnapshotCellIn;

type Cell = SnapshotCellIn<usize, ModelSync>;

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_executions: 20_000,
        max_steps: 50_000,
        ..Config::default()
    }
}

/// One publisher races one refreshing reader: in every interleaving
/// the reader sees either the old or the new snapshot, never a mix,
/// and its generation is monotone.
#[test]
fn publish_vs_refresh_is_never_torn() {
    let report = explore(&cfg(), || {
        let cell = Arc::new(Cell::new(Arc::new(0usize)));
        let mut cache = cell.reader();
        assert_eq!((*cache.get(), cache.generation()), (0, 0));

        let publisher = {
            let cell = Arc::clone(&cell);
            model::spawn("publisher", move || {
                assert_eq!(cell.publish(Arc::new(1)), 1);
                assert_eq!(cell.publish(Arc::new(2)), 2);
            })
        };

        let mut last = 0usize;
        for _ in 0..2 {
            cell.refresh(&mut cache);
            let (v, g) = (*cache.get(), cache.generation());
            assert_eq!(v, g, "torn snapshot: value {v} at generation {g}");
            assert!(g >= last, "generation went backwards: {g} < {last}");
            last = g;
        }
        model::join(publisher);

        // After the publisher is joined, one more refresh must land on
        // the final generation.
        cell.refresh(&mut cache);
        assert_eq!((*cache.get(), cache.generation()), (2, 2));
    });
    report.assert_ok();
    assert!(report.executions > 1, "publish/refresh must interleave");
}

/// Two concurrent readers against one publisher: reader caches are
/// private, so each observes its own monotone, untorn sequence.
#[test]
fn concurrent_readers_each_stay_consistent() {
    let report = explore(&cfg(), || {
        let cell = Arc::new(Cell::new(Arc::new(0usize)));
        let reader = {
            let cell = Arc::clone(&cell);
            model::spawn("reader", move || {
                let mut cache = cell.reader();
                cell.refresh(&mut cache);
                assert_eq!(*cache.get(), cache.generation());
            })
        };
        let mut cache = cell.reader();
        cell.publish(Arc::new(1));
        cell.refresh(&mut cache);
        assert_eq!(*cache.get(), cache.generation());
        model::join(reader);
        assert_eq!(cell.generation(), 1);
    });
    report.assert_ok();
}

/// A stale reader holds the old snapshot across publishes (the Arc it
/// cloned), while a fresh reader handle sees the newest — the
/// no-stale-free, no-blocking guarantee reload depends on.
#[test]
fn stale_reader_keeps_its_snapshot_until_refresh() {
    let report = explore(&cfg(), || {
        let cell = Arc::new(Cell::new(Arc::new(0usize)));
        let stale = cell.reader();
        let publisher = {
            let cell = Arc::clone(&cell);
            model::spawn("publisher", move || {
                cell.publish(Arc::new(1));
            })
        };
        // However the publish interleaves, the un-refreshed cache
        // still dereferences the generation-0 snapshot.
        assert_eq!(*stale.get(), 0);
        assert_eq!(stale.generation(), 0);
        model::join(publisher);
        assert_eq!(*cell.reader().get(), 1);
    });
    report.assert_ok();
    assert!(report.complete, "protocol should be fully explorable");
}

/// With no concurrent publisher, refresh takes the fast path: it
/// reports "not updated" and leaves the cache untouched. (The model's
/// atomic load would flag a cross-thread ordering bug; quiescence here
/// pins the wait-free steady state the query path relies on.)
#[test]
fn quiescent_refresh_is_a_no_op() {
    let report = explore(&cfg(), || {
        let cell = Cell::new(Arc::new(7usize));
        let mut cache = cell.reader();
        assert!(!cell.refresh(&mut cache));
        assert!(!cell.refresh(&mut cache));
        assert_eq!((*cache.get(), cache.generation()), (7, 0));
        // Sanity: the model backend's atomics behave like the real
        // ones for the generation counter.
        assert_eq!(
            ModelSync::load(&ModelSync::atomic_usize(3), Ordering::Acquire),
            3
        );
    });
    report.assert_ok();
    assert!(report.complete);
}
