//! The lint gate's own gate: the workspace must be clean, and the
//! fixture with an uncommented `unsafe` block must fail.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

/// Acceptance gate (ISSUE 3): `xlint` passes on the workspace.
#[test]
fn workspace_is_clean() {
    let violations = mmsb_check::lint::lint_workspace(repo_root());
    assert!(
        violations.is_empty(),
        "workspace lint violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Acceptance gate (ISSUE 3): the fixture with an uncommented unsafe
/// block fails — and for the right reasons.
#[test]
fn fixture_with_uncommented_unsafe_fails() {
    let fixture = repo_root().join("crates/check/tests/fixtures/bad_unsafe.rs");
    let src = std::fs::read_to_string(&fixture).expect("fixture exists");
    // Lint it as if it lived in the pool crate, where unsafe is allowed
    // but must be commented and std::sync is confined.
    let violations = mmsb_check::lint::lint_file("crates/pool/src/bad_unsafe.rs", &src);
    assert!(
        violations.iter().any(|v| v.rule == "safety-comment"),
        "uncommented unsafe must be flagged: {violations:?}"
    );
    assert!(
        violations.iter().any(|v| v.rule == "std-sync-confinement"),
        "stray std::sync import must be flagged: {violations:?}"
    );
    // And outside the allowlist entirely, the unsafe itself is illegal.
    let outside = mmsb_check::lint::lint_file("crates/svi/src/bad_unsafe.rs", &src);
    assert!(
        outside.iter().any(|v| v.rule == "unsafe-allowlist"),
        "unsafe outside the allowlist must be flagged: {outside:?}"
    );
}

/// The walker must never pick fixtures up as workspace sources (they
/// are intentionally violating).
#[test]
fn fixtures_are_not_walked() {
    let violations = mmsb_check::lint::lint_workspace(repo_root());
    assert!(
        violations.iter().all(|v| !v.file.contains("fixtures")),
        "fixtures leaked into the workspace walk: {violations:?}"
    );
}
