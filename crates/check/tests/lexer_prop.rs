//! Seeded property tests for the xlint lexer (ISSUE satellite: lexer
//! hardening).
//!
//! The generator is the oracle: each iteration assembles a random
//! Rust-ish source out of fragments whose token/comment/line effects
//! are known by construction — raw strings of every hash depth, byte
//! strings, plain and escaped char literals, lifetimes, nested block
//! comments, and string literals with embedded and escaped newlines.
//! The lexer must reproduce the predicted `(line, text)` token stream
//! and comment list exactly.
//!
//! Seeds are fixed (`MASTER_SEED` + iteration index through
//! `Xoshiro256PlusPlus`), so a failure reproduces deterministically;
//! the failing source is printed whole.

use mmsb_check::lint::lexer::{lex_full, Comment, Tok};
use mmsb_rand::{Rng, RngCore, Xoshiro256PlusPlus};

const MASTER_SEED: u64 = 0x1e47_00c4_b01d_face;

/// Accumulates the generated source together with its predicted lexer
/// output.
struct Gen {
    src: String,
    line: usize,
    toks: Vec<Tok>,
    comments: Vec<Comment>,
    uniq: usize,
}

impl Gen {
    fn new() -> Self {
        Gen {
            src: String::new(),
            line: 1,
            toks: Vec::new(),
            comments: Vec::new(),
            uniq: 0,
        }
    }

    fn ident(&mut self, r: &mut impl RngCore) {
        self.uniq += 1;
        let name = format!("w{}_{}", self.uniq, r.below(100));
        self.src.push_str(&name);
        self.src.push(' ');
        self.toks.push(Tok {
            line: self.line,
            text: name,
        });
    }

    fn punct(&mut self, r: &mut impl RngCore) {
        let c = [';', ',', '{', '}', '(', ')', '=', '+'][r.below_usize(8)];
        self.src.push(c);
        self.toks.push(Tok {
            line: self.line,
            text: c.to_string(),
        });
    }

    fn newline(&mut self) {
        self.src.push('\n');
        self.line += 1;
    }

    fn line_comment(&mut self, r: &mut impl RngCore) {
        self.uniq += 1;
        let text = format!(" junk unsafe {} {}", self.uniq, r.below(100));
        self.src.push_str("//");
        self.src.push_str(&text);
        self.comments.push(Comment {
            line: self.line,
            text,
            is_line: true,
        });
        self.newline();
    }

    fn block_comment(&mut self, r: &mut impl RngCore) {
        let nested = r.below(2) == 1;
        let newlines = r.below_usize(3);
        let mut text = String::from(" outer unsafe ");
        if nested {
            text.push_str("/* inner */ tail ");
        }
        for _ in 0..newlines {
            text.push_str("\nmore ");
        }
        self.src.push_str("/*");
        self.src.push_str(&text);
        self.src.push_str("*/");
        self.comments.push(Comment {
            line: self.line,
            text,
            is_line: false,
        });
        self.line += newlines;
    }

    fn string(&mut self, r: &mut impl RngCore) {
        // Three shapes: plain with escapes, embedded newline, escaped
        // (continuation) newline. The last two both advance the line.
        match r.below(3) {
            0 => self.src.push_str("\"fn x \\\" y \\\\ z\""),
            1 => {
                self.src.push_str("\"fn a\nb\"");
                self.line += 1;
            }
            _ => {
                self.src.push_str("\"fn a \\\n b\"");
                self.line += 1;
            }
        }
        self.src.push(' ');
    }

    fn raw_string(&mut self, r: &mut impl RngCore) {
        let hashes = r.below_usize(3);
        let byte = r.below(2) == 1;
        let newline = r.below(2) == 1;
        self.src.push_str(if byte { "br" } else { "r" });
        for _ in 0..hashes {
            self.src.push('#');
        }
        self.src.push('"');
        self.src.push_str("fn raw \\ no-escapes ");
        if hashes >= 1 {
            // A quote followed by too few hashes must not terminate.
            self.src.push('"');
            for _ in 0..hashes - 1 {
                self.src.push('#');
            }
            self.src.push(' ');
        }
        if newline {
            self.src.push('\n');
            self.line += 1;
        }
        self.src.push('"');
        for _ in 0..hashes {
            self.src.push('#');
        }
        self.src.push(' ');
    }

    fn byte_string(&mut self, r: &mut impl RngCore) {
        if r.below(2) == 1 {
            self.src.push_str("b\"fn x \\\" y\" ");
        } else {
            self.src.push_str("b\"fn a \\\n b\" ");
            self.line += 1;
        }
    }

    fn char_lit(&mut self, r: &mut impl RngCore) {
        let lit = ["'x'", "'\\n'", "'\\''", "'\\\\'"][r.below_usize(4)];
        self.src.push_str(lit);
        self.src.push(' ');
    }

    fn lifetime(&mut self) {
        self.src.push_str("&'alive ");
        self.toks.push(Tok {
            line: self.line,
            text: "&".to_string(),
        });
        self.toks.push(Tok {
            line: self.line,
            text: "alive".to_string(),
        });
    }
}

fn generate(seed: u64, segments: usize) -> Gen {
    let mut r = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut g = Gen::new();
    for _ in 0..segments {
        match r.below(10) {
            0 => g.ident(&mut r),
            1 => g.punct(&mut r),
            2 => g.newline(),
            3 => g.line_comment(&mut r),
            4 => g.block_comment(&mut r),
            5 => g.string(&mut r),
            6 => g.raw_string(&mut r),
            7 => g.byte_string(&mut r),
            8 => g.char_lit(&mut r),
            _ => g.lifetime(),
        }
    }
    g
}

#[test]
fn lexer_matches_generated_oracle() {
    for iter in 0..300u64 {
        let g = generate(MASTER_SEED.wrapping_add(iter), 40);
        let (toks, comments) = lex_full(&g.src);
        assert_eq!(
            toks, g.toks,
            "token stream diverged at seed offset {iter}; source:\n{}",
            g.src
        );
        assert_eq!(
            comments, g.comments,
            "comment list diverged at seed offset {iter}; source:\n{}",
            g.src
        );
    }
}

/// Directed regression: the escaped-newline string continuation used to
/// swallow a line, shifting every later diagnostic (see lexer.rs docs).
#[test]
fn escaped_newline_regression_stays_fixed() {
    let (toks, _) = lex_full("let s = \"a \\\n b\";\nfn f() {}\n");
    let f = toks.iter().find(|t| t.text == "fn").expect("fn token");
    assert_eq!(f.line, 3);
}

/// Directed case: maximum nesting the suite generates, spelled out.
#[test]
fn deeply_nested_block_comment_is_one_comment() {
    let src = "a /* 1 /* 2 /* 3 */ 2 */ 1 */ b\n";
    let (toks, comments) = lex_full(src);
    let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(texts, ["a", "b"]);
    assert_eq!(comments.len(), 1);
    assert!(comments[0].text.contains('3'));
}

/// Directed case: every raw-string hash depth 0..=4 terminates exactly
/// at the matching fence, not at an embedded shorter fence.
#[test]
fn raw_string_fences_terminate_exactly() {
    for h in 0..=4usize {
        let fence = "#".repeat(h);
        let inner = if h > 0 {
            // One-short fence inside must not terminate.
            format!("\"{} ", &fence[..h - 1])
        } else {
            String::from("plain ")
        };
        let src = format!("r{fence}\"{inner}\"{fence} end\n");
        let (toks, _) = lex_full(&src);
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["end"], "hash depth {h}: {src:?}");
    }
}
