//! Double-buffered (pipelined) chunked reads.
//!
//! Loading `pi` from the DKV store dominates `update_phi` (Table III: 205
//! of 285 ms). The paper hides that latency by splitting the load into
//! chunks and fetching chunk `i+1` while computing on chunk `i` (§III-D).
//! This module provides both the *model* and the *mechanism*:
//!
//! * [`schedule`] — the pure timing algebra of a two-stage pipeline, used
//!   by the simulator and verified against hand-computed cases,
//! * [`ChunkedReader`] — the synchronous executor: real chunked reads and
//!   compute calls, loads priced with the store's cost model, computes
//!   measured, makespan reported under the configured [`PipelineMode`],
//! * [`PrefetchingReader`] — the real pipeline: two pre-sized row buffers
//!   ping-pong, and while the compute callback runs on buffer A's chunk a
//!   [`BackgroundWorker`] fills buffer B from the store. It returns the
//!   *measured* overlapped wall-clock alongside the modeled makespan, so
//!   netsim figures stay comparable.
//!
//! Numerics are identical across every reader and mode: chunk boundaries
//! and delivery order never change, only *when* the bytes are copied.
//! Both readers borrow their buffers from a caller-owned [`ReaderScratch`]
//! so steady-state operation performs no heap allocation (pinned by
//! `crates/core/tests/zero_alloc.rs`).

use crate::{DkvError, DkvStore, ShardedStore};
use mmsb_netsim::NetworkModel;
use mmsb_pool::BackgroundWorker;
use mmsb_obs::clock::Stopwatch;

/// Buffering mode for the `pi` loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Load a chunk, compute on it, repeat — no overlap.
    Single,
    /// Double buffering: load of chunk `i+1` overlaps compute on chunk `i`.
    Double,
}

/// Makespan of a two-stage pipeline with per-chunk `loads` and `computes`.
///
/// * `Single`: `Σ (load_i + compute_i)`.
/// * `Double`: `load_0 + Σ_{i=1..n-1} max(load_i, compute_{i-1}) +
///   compute_{n-1}` — each subsequent load hides behind the previous
///   compute (or vice versa).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn schedule(loads: &[f64], computes: &[f64], mode: PipelineMode) -> f64 {
    assert_eq!(
        loads.len(),
        computes.len(),
        "every chunk needs a load and a compute time"
    );
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    match mode {
        PipelineMode::Single => loads.iter().sum::<f64>() + computes.iter().sum::<f64>(),
        PipelineMode::Double => {
            let mut t = loads[0];
            for i in 1..n {
                t += loads[i].max(computes[i - 1]);
            }
            t + computes[n - 1]
        }
    }
}

/// Result of one chunked, cost-accounted read-compute pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineRun {
    /// Modeled makespan in seconds under the chosen mode.
    pub total: f64,
    /// Sum of modeled load (DKV read) times.
    pub load: f64,
    /// Sum of measured compute times.
    pub compute: f64,
    /// Number of chunks executed.
    pub chunks: usize,
}

const EMPTY_RUN: PipelineRun = PipelineRun {
    total: 0.0,
    load: 0.0,
    compute: 0.0,
    chunks: 0,
};

/// Result of one *real* prefetched pass ([`PrefetchingReader`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchRun {
    /// The modeled double-buffered makespan (same algebra as
    /// [`ChunkedReader`] under [`PipelineMode::Double`]), kept so netsim
    /// figures remain comparable across modes.
    pub modeled: PipelineRun,
    /// Measured overlapped wall-clock of the whole pass, in seconds —
    /// loads genuinely hidden behind computes.
    pub wall: f64,
}

/// Reusable buffers for [`ChunkedReader`] and [`PrefetchingReader`].
///
/// Owns the ping-pong row buffers, the per-chunk timing vectors, the
/// dedup scratch, and the chunk-boundary table. All storage grows to the
/// high-water mark on first use and is reused afterwards, so a warmed
/// reader performs zero heap allocations per pass.
#[derive(Debug, Default)]
pub struct ReaderScratch {
    /// Ping-pong row buffers; the synchronous reader uses only `bufs[0]`.
    bufs: [Vec<f32>; 2],
    /// Modeled per-chunk load times (seconds).
    loads: Vec<f64>,
    /// Measured per-chunk compute times (seconds).
    computes: Vec<f64>,
    /// Sorted-deduplicated chunk keys, for `dedup_reads` cost pricing.
    unique: Vec<u32>,
    /// Exclusive end offset (into the key slice) of each chunk.
    ends: Vec<usize>,
}

impl ReaderScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chunk boundaries for fixed-size chunking of `n_keys` keys.
    fn fill_ends_fixed(&mut self, n_keys: usize, chunk_size: usize) {
        self.ends.clear();
        let mut pos = 0;
        while pos < n_keys {
            pos = (pos + chunk_size).min(n_keys);
            self.ends.push(pos);
        }
    }

    /// Chunk boundaries from caller-provided per-chunk key counts.
    fn fill_ends_segments(&mut self, seg_lens: &[usize], n_keys: usize) {
        self.ends.clear();
        let mut pos = 0;
        for &len in seg_lens {
            assert!(len > 0, "empty segment");
            pos += len;
            self.ends.push(pos);
        }
        assert_eq!(pos, n_keys, "segments must cover the key slice exactly");
    }

    /// Largest chunk, in keys, of the current boundary table.
    fn max_chunk_keys(&self) -> usize {
        let mut max = 0;
        let mut start = 0;
        for &end in &self.ends {
            max = max.max(end - start);
            start = end;
        }
        max
    }
}

/// Modeled RDMA cost of reading `chunk` as `rank`, optionally priced per
/// *distinct* key (the `dedup_reads` optimization: a chunk that needs the
/// same row twice issues one read and reuses the bytes).
fn chunk_cost(
    store: &ShardedStore,
    rank: usize,
    chunk: &[u32],
    net: &NetworkModel,
    dedup: bool,
    unique: &mut Vec<u32>,
) -> f64 {
    if dedup {
        unique.clear();
        unique.extend_from_slice(chunk);
        unique.sort_unstable();
        unique.dedup();
        store.read_cost(rank, unique, net)
    } else {
        store.read_cost(rank, chunk, net)
    }
}

/// Synchronous chunked reader over a [`ShardedStore`].
///
/// Executes loads and computes back-to-back; the pipelined makespan under
/// [`PipelineMode::Double`] is *modeled* after the fact with [`schedule`].
/// For a real overlapped execution use [`PrefetchingReader`].
#[derive(Debug, Clone, Copy)]
pub struct ChunkedReader {
    chunk_size: usize,
    mode: PipelineMode,
    dedup: bool,
    compute_scale: f64,
}

impl ChunkedReader {
    /// Create a reader with the given chunk size and mode.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize, mode: PipelineMode) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            chunk_size,
            mode,
            dedup: false,
            compute_scale: 1.0,
        }
    }

    /// Price each chunk per distinct key (`dedup_reads`) when `true`.
    pub fn with_dedup_reads(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Multiply measured per-chunk compute times by `scale` before they
    /// enter the makespan model — the hook for per-node thread-parallelism
    /// models that shrink the serial measurement.
    pub fn with_compute_scale(mut self, scale: f64) -> Self {
        self.compute_scale = scale;
        self
    }

    /// The configured mode.
    pub fn mode(&self) -> PipelineMode {
        self.mode
    }

    /// The configured chunk size (keys per chunk).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Read `keys` chunk-by-chunk from `store` as rank `rank`, invoking
    /// `compute(chunk_start, chunk_keys, rows)` on each chunk's rows.
    ///
    /// Loads are priced with [`ShardedStore::read_cost`]; computes are
    /// measured with a monotonic clock. The returned [`PipelineRun`]
    /// contains the makespan under the configured mode.
    pub fn run<F>(
        &self,
        store: &ShardedStore,
        rank: usize,
        keys: &[u32],
        net: &NetworkModel,
        scratch: &mut ReaderScratch,
        compute: F,
    ) -> Result<PipelineRun, DkvError>
    where
        F: FnMut(usize, &[u32], &[f32]),
    {
        scratch.fill_ends_fixed(keys.len(), self.chunk_size);
        self.run_inner(store, rank, keys, net, scratch, compute)
    }

    /// Like [`ChunkedReader::run`], but with caller-defined chunk
    /// boundaries: `seg_lens[i]` keys in chunk `i` (summing to
    /// `keys.len()`). Used by the samplers, which chunk by *vertices* and
    /// therefore produce a variable number of keys per chunk.
    #[allow(clippy::too_many_arguments)] // mirrors `run` plus the boundary table
    pub fn run_segments<F>(
        &self,
        store: &ShardedStore,
        rank: usize,
        keys: &[u32],
        seg_lens: &[usize],
        net: &NetworkModel,
        scratch: &mut ReaderScratch,
        compute: F,
    ) -> Result<PipelineRun, DkvError>
    where
        F: FnMut(usize, &[u32], &[f32]),
    {
        scratch.fill_ends_segments(seg_lens, keys.len());
        self.run_inner(store, rank, keys, net, scratch, compute)
    }

    fn run_inner<F>(
        &self,
        store: &ShardedStore,
        rank: usize,
        keys: &[u32],
        net: &NetworkModel,
        scratch: &mut ReaderScratch,
        mut compute: F,
    ) -> Result<PipelineRun, DkvError>
    where
        F: FnMut(usize, &[u32], &[f32]),
    {
        let row_len = store.row_len();
        let max_chunk = scratch.max_chunk_keys();
        let ReaderScratch {
            bufs,
            loads,
            computes,
            unique,
            ends,
            ..
        } = scratch;
        let buf = &mut bufs[0];
        if buf.len() < max_chunk * row_len {
            buf.resize(max_chunk * row_len, 0.0);
        }
        loads.clear();
        computes.clear();
        let mut start = 0;
        for &end in ends.iter() {
            let chunk = &keys[start..end];
            let rows = &mut buf[..chunk.len() * row_len];
            store.read_batch(chunk, rows)?;
            loads.push(chunk_cost(store, rank, chunk, net, self.dedup, unique));
            let t0 = Stopwatch::start();
            compute(start, chunk, rows);
            computes.push(t0.elapsed_secs() * self.compute_scale);
            start = end;
        }
        Ok(PipelineRun {
            total: schedule(loads, computes, self.mode),
            load: loads.iter().sum(),
            compute: computes.iter().sum(),
            chunks: loads.len(),
        })
    }
}

/// Waits out an in-flight background load if the compute callback panics,
/// so the task's borrows (the back buffer, the key slice) are never
/// outlived. Disarmed with `mem::forget` on the normal path, where
/// [`BackgroundWorker::join`] is called explicitly to re-throw worker
/// panics.
struct WaitGuard<'a>(&'a BackgroundWorker);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        // `wait`, not `join`: re-throwing here would double-panic.
        let _ = self.0.wait();
    }
}

/// The real two-stage prefetch pipeline over a [`ShardedStore`].
///
/// Two pre-sized row buffers ping-pong: while the compute callback runs
/// on the front buffer's chunk, a persistent [`BackgroundWorker`] fills
/// the back buffer with chunk `i + 1`'s rows. The handoff protocol is
/// strict `spawn`/`join` alternation — exactly one load in flight, the
/// buffers swap only after the join — so delivery order, chunk contents,
/// and therefore all downstream numerics are identical to
/// [`ChunkedReader`]'s.
#[derive(Debug)]
pub struct PrefetchingReader {
    chunk_size: usize,
    dedup: bool,
    compute_scale: f64,
    worker: BackgroundWorker,
}

impl PrefetchingReader {
    /// Create a reader with the given chunk size, spawning its worker.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self {
            chunk_size,
            dedup: false,
            compute_scale: 1.0,
            worker: BackgroundWorker::new("dkv-prefetch"),
        }
    }

    /// Price each chunk per distinct key (`dedup_reads`) when `true`.
    pub fn with_dedup_reads(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Multiply measured per-chunk compute times by `scale` before they
    /// enter the *modeled* makespan (the measured wall-clock is reported
    /// unscaled).
    pub fn with_compute_scale(mut self, scale: f64) -> Self {
        self.compute_scale = scale;
        self
    }

    /// The configured chunk size (keys per chunk).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Read `keys` chunk-by-chunk with real load/compute overlap,
    /// invoking `compute(chunk_start, chunk_keys, rows)` on each chunk.
    ///
    /// Chunk `0` is loaded synchronously; from then on chunk `i + 1`
    /// loads on the background worker while `compute` runs on chunk `i`.
    pub fn run<F>(
        &mut self,
        store: &ShardedStore,
        rank: usize,
        keys: &[u32],
        net: &NetworkModel,
        scratch: &mut ReaderScratch,
        compute: F,
    ) -> Result<PrefetchRun, DkvError>
    where
        F: FnMut(usize, &[u32], &[f32]),
    {
        scratch.fill_ends_fixed(keys.len(), self.chunk_size);
        self.run_inner(store, rank, keys, net, scratch, compute)
    }

    /// Like [`PrefetchingReader::run`], but with caller-defined chunk
    /// boundaries (see [`ChunkedReader::run_segments`]).
    #[allow(clippy::too_many_arguments)] // mirrors `run` plus the boundary table
    pub fn run_segments<F>(
        &mut self,
        store: &ShardedStore,
        rank: usize,
        keys: &[u32],
        seg_lens: &[usize],
        net: &NetworkModel,
        scratch: &mut ReaderScratch,
        compute: F,
    ) -> Result<PrefetchRun, DkvError>
    where
        F: FnMut(usize, &[u32], &[f32]),
    {
        scratch.fill_ends_segments(seg_lens, keys.len());
        self.run_inner(store, rank, keys, net, scratch, compute)
    }

    fn run_inner<F>(
        &mut self,
        store: &ShardedStore,
        rank: usize,
        keys: &[u32],
        net: &NetworkModel,
        scratch: &mut ReaderScratch,
        mut compute: F,
    ) -> Result<PrefetchRun, DkvError>
    where
        F: FnMut(usize, &[u32], &[f32]),
    {
        let row_len = store.row_len();
        let max_chunk = scratch.max_chunk_keys();
        let ReaderScratch {
            bufs,
            loads,
            computes,
            unique,
            ends,
            ..
        } = scratch;
        loads.clear();
        computes.clear();
        let n = ends.len();
        if n == 0 {
            return Ok(PrefetchRun {
                modeled: EMPTY_RUN,
                wall: 0.0,
            });
        }
        let (front_buf, back_buf) = bufs.split_at_mut(1);
        let mut front: &mut Vec<f32> = &mut front_buf[0];
        let mut back: &mut Vec<f32> = &mut back_buf[0];
        if front.len() < max_chunk * row_len {
            front.resize(max_chunk * row_len, 0.0);
        }
        if back.len() < max_chunk * row_len {
            back.resize(max_chunk * row_len, 0.0);
        }

        let wall0 = Stopwatch::start();
        // Chunk 0 has nothing to hide behind: load it synchronously.
        let first = &keys[..ends[0]];
        store.read_batch(first, &mut front[..first.len() * row_len])?;
        loads.push(chunk_cost(store, rank, first, net, self.dedup, unique));

        let mut start = 0;
        for ci in 0..n {
            let end = ends[ci];
            let chunk = &keys[start..end];
            let mut prefetch_result: Result<(), DkvError> = Ok(());
            {
                // Publish the next chunk's load before computing on the
                // current one. The closure borrows `back`, `keys`, and
                // `prefetch_result`; all outlive the join below (and the
                // WaitGuard covers a panicking compute callback).
                let mut slot = if ci + 1 < n {
                    let next_chunk = &keys[end..ends[ci + 1]];
                    loads.push(chunk_cost(store, rank, next_chunk, net, self.dedup, unique));
                    let dst = &mut back[..next_chunk.len() * row_len];
                    let result = &mut prefetch_result;
                    Some(move || {
                        *result = store.read_batch(next_chunk, dst);
                    })
                } else {
                    None
                };
                if slot.is_some() {
                    // SAFETY: `slot` and everything the closure borrows
                    // live until `join()` below returns; the WaitGuard
                    // waits out the task if `compute` unwinds first.
                    unsafe { self.worker.spawn(&mut slot) };
                }
                let guard = WaitGuard(&self.worker);
                let t0 = Stopwatch::start();
                compute(start, chunk, &front[..chunk.len() * row_len]);
                computes.push(t0.elapsed_secs() * self.compute_scale);
                std::mem::forget(guard);
                self.worker.join();
            }
            prefetch_result?;
            std::mem::swap(&mut front, &mut back);
            start = end;
        }
        let wall = wall0.elapsed_secs();
        Ok(PrefetchRun {
            modeled: PipelineRun {
                total: schedule(loads, computes, PipelineMode::Double),
                load: loads.iter().sum(),
                compute: computes.iter().sum(),
                chunks: n,
            },
            wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    #[test]
    fn schedule_empty_is_zero() {
        assert_eq!(schedule(&[], &[], PipelineMode::Single), 0.0);
        assert_eq!(schedule(&[], &[], PipelineMode::Double), 0.0);
    }

    #[test]
    fn schedule_single_chunk() {
        // One chunk cannot overlap anything.
        let s = schedule(&[2.0], &[3.0], PipelineMode::Single);
        let d = schedule(&[2.0], &[3.0], PipelineMode::Double);
        assert_eq!(s, 5.0);
        assert_eq!(d, 5.0);
    }

    #[test]
    fn schedule_hand_computed_case() {
        // loads   = [1, 4, 2]
        // compute = [3, 3, 3]
        // single: 1+3 + 4+3 + 2+3 = 16
        // double: 1 + max(4,3) + max(2,3) + 3 = 1+4+3+3 = 11
        let loads = [1.0, 4.0, 2.0];
        let computes = [3.0, 3.0, 3.0];
        assert_eq!(schedule(&loads, &computes, PipelineMode::Single), 16.0);
        assert_eq!(schedule(&loads, &computes, PipelineMode::Double), 11.0);
    }

    #[test]
    fn perfectly_hidden_loads() {
        // When every load fits under the previous compute, double buffering
        // costs load_0 + sum(computes).
        let loads = [1.0, 0.5, 0.5, 0.5];
        let computes = [2.0, 2.0, 2.0, 2.0];
        let d = schedule(&loads, &computes, PipelineMode::Double);
        assert_eq!(d, 1.0 + 8.0);
    }

    #[test]
    #[should_panic(expected = "every chunk")]
    fn mismatched_lengths_panic() {
        schedule(&[1.0], &[], PipelineMode::Single);
    }

    /// Double buffering never loses to sequential execution and never
    /// beats the critical-path lower bounds. Checked over 128 random
    /// chunk profiles.
    #[test]
    fn schedule_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xD2);
        for case in 0..128 {
            let n = 1 + rng.below(19) as usize;
            let loads: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
            let computes: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
            let single = schedule(&loads, &computes, PipelineMode::Single);
            let double = schedule(&loads, &computes, PipelineMode::Double);
            assert!(double <= single + 1e-9, "case {case}");
            let sum_loads: f64 = loads.iter().sum();
            let sum_computes: f64 = computes.iter().sum();
            // Critical path: all loads must happen; all computes must happen.
            assert!(double + 1e-9 >= sum_loads.max(sum_computes), "case {case}");
            // And the first load plus last compute are always exposed.
            assert!(
                double + 1e-9 >= loads[0] + computes[computes.len() - 1],
                "case {case}"
            );
        }
    }

    fn test_store(ranks: usize) -> ShardedStore {
        let mut s = ShardedStore::new(Partition::new(64, ranks), 2);
        let keys: Vec<u32> = (0..64).collect();
        let vals: Vec<f32> = keys.iter().flat_map(|&k| [k as f32, -(k as f32)]).collect();
        s.write_batch(&keys, &vals).unwrap();
        s
    }

    #[test]
    fn reader_visits_all_chunks_in_order() {
        let store = test_store(4);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..10).collect();
        let reader = ChunkedReader::new(4, PipelineMode::Double);
        let mut scratch = ReaderScratch::new();
        let mut seen: Vec<(usize, Vec<u32>, Vec<f32>)> = Vec::new();
        let run = reader
            .run(&store, 0, &keys, &net, &mut scratch, |start, ks, rows| {
                seen.push((start, ks.to_vec(), rows.to_vec()));
            })
            .unwrap();
        assert_eq!(run.chunks, 3); // 4 + 4 + 2
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1].0, 4);
        assert_eq!(seen[2].0, 8);
        assert_eq!(seen[2].1, vec![8, 9]);
        // Row contents delivered intact.
        assert_eq!(seen[0].2[0..2], [0.0, -0.0]);
        assert_eq!(seen[1].2[0..2], [4.0, -4.0]);
    }

    #[test]
    fn reader_modes_have_identical_data_different_time() {
        let store = test_store(8);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..64).collect();
        let mut scratch = ReaderScratch::new();
        let mut sums = Vec::new();
        for mode in [PipelineMode::Single, PipelineMode::Double] {
            let reader = ChunkedReader::new(8, mode);
            let mut sum = 0.0f64;
            let run = reader
                .run(&store, 0, &keys, &net, &mut scratch, |_, _, rows| {
                    sum += rows.iter().map(|&x| x as f64).sum::<f64>();
                    // Busy work so compute time is non-trivial relative to
                    // the modeled load times.
                    for _ in 0..2000 {
                        std::hint::black_box(sum);
                    }
                })
                .unwrap();
            sums.push(sum);
            assert!(run.total > 0.0);
            assert!(run.load > 0.0);
            assert!(run.compute > 0.0);
        }
        assert_eq!(sums[0], sums[1], "pipelining changed the numerics");
    }

    #[test]
    fn reader_propagates_store_errors() {
        let store = test_store(2);
        let net = NetworkModel::fdr_infiniband();
        let reader = ChunkedReader::new(4, PipelineMode::Single);
        let mut scratch = ReaderScratch::new();
        let err = reader
            .run(&store, 0, &[1000], &net, &mut scratch, |_, _, _| {})
            .unwrap_err();
        assert!(matches!(err, DkvError::KeyOutOfRange { .. }));
    }

    #[test]
    fn reader_segments_follow_caller_boundaries() {
        let store = test_store(4);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..10).collect();
        let reader = ChunkedReader::new(4, PipelineMode::Single);
        let mut scratch = ReaderScratch::new();
        let mut seen: Vec<(usize, Vec<u32>)> = Vec::new();
        let run = reader
            .run_segments(
                &store,
                0,
                &keys,
                &[3, 1, 6],
                &net,
                &mut scratch,
                |start, ks, _| {
                    seen.push((start, ks.to_vec()));
                },
            )
            .unwrap();
        assert_eq!(run.chunks, 3);
        assert_eq!(seen[0], (0, vec![0, 1, 2]));
        assert_eq!(seen[1], (3, vec![3]));
        assert_eq!(seen[2], (4, vec![4, 5, 6, 7, 8, 9]));
    }

    #[test]
    #[should_panic(expected = "cover the key slice")]
    fn reader_segments_must_cover_keys() {
        let store = test_store(4);
        let net = NetworkModel::fdr_infiniband();
        let reader = ChunkedReader::new(4, PipelineMode::Single);
        let mut scratch = ReaderScratch::new();
        let _ = reader.run_segments(
            &store,
            0,
            &[0, 1, 2],
            &[2],
            &net,
            &mut scratch,
            |_, _, _| {},
        );
    }

    /// `dedup_reads` cost pinning: duplicate keys in a chunk are priced
    /// as one RDMA read per *distinct* key when enabled, per occurrence
    /// when disabled — and the delivered rows are identical either way.
    #[test]
    fn dedup_reads_prices_distinct_keys_and_delivers_identical_rows() {
        let store = test_store(4);
        let net = NetworkModel::fdr_infiniband();
        // 8 occurrences, 4 distinct keys, one chunk.
        let keys: Vec<u32> = vec![5, 7, 5, 9, 7, 11, 9, 5];
        let distinct: Vec<u32> = vec![5, 7, 9, 11];
        let mut scratch = ReaderScratch::new();
        let mut rows_by_mode: Vec<Vec<f32>> = Vec::new();
        let mut load_by_mode: Vec<f64> = Vec::new();
        for dedup in [false, true] {
            let reader =
                ChunkedReader::new(keys.len(), PipelineMode::Single).with_dedup_reads(dedup);
            let mut rows_seen = Vec::new();
            let run = reader
                .run(&store, 0, &keys, &net, &mut scratch, |_, _, rows| {
                    rows_seen.extend_from_slice(rows);
                })
                .unwrap();
            rows_by_mode.push(rows_seen);
            load_by_mode.push(run.load);
        }
        assert_eq!(
            rows_by_mode[0], rows_by_mode[1],
            "dedup pricing must not change delivered rows"
        );
        // Every occurrence is still delivered (8 rows of 2 floats).
        assert_eq!(rows_by_mode[0].len(), keys.len() * 2);
        // Cost pinning: disabled prices per occurrence, enabled per
        // distinct key — exactly the cost model evaluated on those sets.
        assert_eq!(load_by_mode[0], store.read_cost(0, &keys, &net));
        assert_eq!(load_by_mode[1], store.read_cost(0, &distinct, &net));
        assert!(load_by_mode[1] < load_by_mode[0]);
    }

    #[test]
    fn prefetching_reader_matches_synchronous_reader() {
        let store = test_store(8);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..64).rev().collect();
        let mut scratch = ReaderScratch::new();

        let mut sync_seen: Vec<(usize, Vec<u32>, Vec<f32>)> = Vec::new();
        let sync_run = ChunkedReader::new(8, PipelineMode::Double)
            .run(&store, 0, &keys, &net, &mut scratch, |start, ks, rows| {
                sync_seen.push((start, ks.to_vec(), rows.to_vec()));
            })
            .unwrap();

        let mut reader = PrefetchingReader::new(8);
        let mut pre_seen: Vec<(usize, Vec<u32>, Vec<f32>)> = Vec::new();
        let pre_run = reader
            .run(&store, 0, &keys, &net, &mut scratch, |start, ks, rows| {
                pre_seen.push((start, ks.to_vec(), rows.to_vec()));
            })
            .unwrap();

        assert_eq!(sync_seen, pre_seen, "prefetching changed delivered data");
        assert_eq!(pre_run.modeled.chunks, sync_run.chunks);
        assert_eq!(pre_run.modeled.load, sync_run.load);
        assert!(pre_run.wall > 0.0);
    }

    #[test]
    fn prefetching_reader_is_reusable_across_passes() {
        let store = test_store(4);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..32).collect();
        let mut reader = PrefetchingReader::new(4);
        let mut scratch = ReaderScratch::new();
        let mut sums = Vec::new();
        for _ in 0..5 {
            let mut sum = 0.0f64;
            reader
                .run(&store, 0, &keys, &net, &mut scratch, |_, _, rows| {
                    sum += rows.iter().map(|&x| x as f64).sum::<f64>();
                })
                .unwrap();
            sums.push(sum);
        }
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn prefetching_reader_segments_match_synchronous() {
        let store = test_store(4);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..20).collect();
        let segs = [7usize, 2, 5, 6];
        let mut scratch = ReaderScratch::new();
        let mut sync_seen = Vec::new();
        ChunkedReader::new(8, PipelineMode::Double)
            .run_segments(
                &store,
                0,
                &keys,
                &segs,
                &net,
                &mut scratch,
                |start, ks, rows| {
                    sync_seen.push((start, ks.to_vec(), rows.to_vec()));
                },
            )
            .unwrap();
        let mut reader = PrefetchingReader::new(8);
        let mut pre_seen = Vec::new();
        reader
            .run_segments(
                &store,
                0,
                &keys,
                &segs,
                &net,
                &mut scratch,
                |start, ks, rows| {
                    pre_seen.push((start, ks.to_vec(), rows.to_vec()));
                },
            )
            .unwrap();
        assert_eq!(sync_seen, pre_seen);
    }

    #[test]
    fn prefetching_reader_propagates_background_load_errors() {
        let store = test_store(2);
        let net = NetworkModel::fdr_infiniband();
        // Chunk 0 is valid; chunk 1 (prefetched in the background)
        // contains an out-of-range key.
        let keys: Vec<u32> = vec![0, 1, 1000, 1001];
        let mut reader = PrefetchingReader::new(2);
        let mut scratch = ReaderScratch::new();
        let err = reader
            .run(&store, 0, &keys, &net, &mut scratch, |_, _, _| {})
            .unwrap_err();
        assert!(matches!(err, DkvError::KeyOutOfRange { .. }));
        // The reader survives the error and works on the next pass.
        let ok_keys: Vec<u32> = (0..8).collect();
        reader
            .run(&store, 0, &ok_keys, &net, &mut scratch, |_, _, _| {})
            .unwrap();
    }

    #[test]
    fn prefetching_reader_survives_compute_panic() {
        let store = test_store(2);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..16).collect();
        let mut reader = PrefetchingReader::new(4);
        let mut scratch = ReaderScratch::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = reader.run(&store, 0, &keys, &net, &mut scratch, |start, _, _| {
                if start >= 4 {
                    panic!("compute boom");
                }
            });
        }))
        .expect_err("compute panic must propagate");
        assert_eq!(err.downcast_ref::<&str>(), Some(&"compute boom"));
        // The worker was waited out by the guard; the reader still works.
        let mut count = 0;
        reader
            .run(&store, 0, &keys, &net, &mut scratch, |_, _, _| count += 1)
            .unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_panics() {
        ChunkedReader::new(0, PipelineMode::Single);
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_prefetch_panics() {
        PrefetchingReader::new(0);
    }
}
