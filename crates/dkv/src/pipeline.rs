//! Double-buffered (pipelined) chunked reads.
//!
//! Loading `pi` from the DKV store dominates `update_phi` (Table III: 205
//! of 285 ms). The paper hides part of that latency by splitting the load
//! into chunks and fetching chunk `i+1` while computing on chunk `i`
//! (§III-D). This module provides:
//!
//! * [`schedule`] — the pure timing algebra of a two-stage pipeline, used
//!   by the simulator and verified against hand-computed cases,
//! * [`ChunkedReader`] — an executor that performs the real chunked reads
//!   and compute calls, measures the compute, prices the loads with the
//!   store's cost model, and reports both the pipelined and sequential
//!   makespans. Numerics are identical in both modes; only time differs.

use crate::{DkvError, DkvStore, ShardedStore};
use mmsb_netsim::NetworkModel;
use std::time::Instant;

/// Buffering mode for the `pi` loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Load a chunk, compute on it, repeat — no overlap.
    Single,
    /// Double buffering: load of chunk `i+1` overlaps compute on chunk `i`.
    Double,
}

/// Makespan of a two-stage pipeline with per-chunk `loads` and `computes`.
///
/// * `Single`: `Σ (load_i + compute_i)`.
/// * `Double`: `load_0 + Σ_{i=1..n-1} max(load_i, compute_{i-1}) +
///   compute_{n-1}` — each subsequent load hides behind the previous
///   compute (or vice versa).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn schedule(loads: &[f64], computes: &[f64], mode: PipelineMode) -> f64 {
    assert_eq!(
        loads.len(),
        computes.len(),
        "every chunk needs a load and a compute time"
    );
    let n = loads.len();
    if n == 0 {
        return 0.0;
    }
    match mode {
        PipelineMode::Single => loads.iter().sum::<f64>() + computes.iter().sum::<f64>(),
        PipelineMode::Double => {
            let mut t = loads[0];
            for i in 1..n {
                t += loads[i].max(computes[i - 1]);
            }
            t + computes[n - 1]
        }
    }
}

/// Result of one chunked, cost-accounted read-compute pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineRun {
    /// Modeled makespan in seconds under the chosen mode.
    pub total: f64,
    /// Sum of modeled load (DKV read) times.
    pub load: f64,
    /// Sum of measured compute times.
    pub compute: f64,
    /// Number of chunks executed.
    pub chunks: usize,
}

/// Chunked reader over a [`ShardedStore`].
#[derive(Debug, Clone, Copy)]
pub struct ChunkedReader {
    chunk_size: usize,
    mode: PipelineMode,
}

impl ChunkedReader {
    /// Create a reader with the given chunk size and mode.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize, mode: PipelineMode) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Self { chunk_size, mode }
    }

    /// The configured mode.
    pub fn mode(&self) -> PipelineMode {
        self.mode
    }

    /// The configured chunk size (keys per chunk).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Read `keys` chunk-by-chunk from `store` as rank `rank`, invoking
    /// `compute(chunk_start, chunk_keys, rows)` on each chunk's rows.
    ///
    /// Loads are priced with [`ShardedStore::read_cost`]; computes are
    /// measured with a monotonic clock. The returned [`PipelineRun`]
    /// contains the makespan under the configured mode.
    pub fn run<F>(
        &self,
        store: &ShardedStore,
        rank: usize,
        keys: &[u32],
        net: &NetworkModel,
        mut compute: F,
    ) -> Result<PipelineRun, DkvError>
    where
        F: FnMut(usize, &[u32], &[f32]),
    {
        let row_len = store.row_len();
        let mut buf = vec![0.0f32; self.chunk_size * row_len];
        let mut loads = Vec::new();
        let mut computes = Vec::new();
        for (ci, chunk) in keys.chunks(self.chunk_size).enumerate() {
            let rows = &mut buf[..chunk.len() * row_len];
            store.read_batch(chunk, rows)?;
            loads.push(store.read_cost(rank, chunk, net));
            let t0 = Instant::now();
            compute(ci * self.chunk_size, chunk, rows);
            computes.push(t0.elapsed().as_secs_f64());
        }
        Ok(PipelineRun {
            total: schedule(&loads, &computes, self.mode),
            load: loads.iter().sum(),
            compute: computes.iter().sum(),
            chunks: loads.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    #[test]
    fn schedule_empty_is_zero() {
        assert_eq!(schedule(&[], &[], PipelineMode::Single), 0.0);
        assert_eq!(schedule(&[], &[], PipelineMode::Double), 0.0);
    }

    #[test]
    fn schedule_single_chunk() {
        // One chunk cannot overlap anything.
        let s = schedule(&[2.0], &[3.0], PipelineMode::Single);
        let d = schedule(&[2.0], &[3.0], PipelineMode::Double);
        assert_eq!(s, 5.0);
        assert_eq!(d, 5.0);
    }

    #[test]
    fn schedule_hand_computed_case() {
        // loads   = [1, 4, 2]
        // compute = [3, 3, 3]
        // single: 1+3 + 4+3 + 2+3 = 16
        // double: 1 + max(4,3) + max(2,3) + 3 = 1+4+3+3 = 11
        let loads = [1.0, 4.0, 2.0];
        let computes = [3.0, 3.0, 3.0];
        assert_eq!(schedule(&loads, &computes, PipelineMode::Single), 16.0);
        assert_eq!(schedule(&loads, &computes, PipelineMode::Double), 11.0);
    }

    #[test]
    fn perfectly_hidden_loads() {
        // When every load fits under the previous compute, double buffering
        // costs load_0 + sum(computes).
        let loads = [1.0, 0.5, 0.5, 0.5];
        let computes = [2.0, 2.0, 2.0, 2.0];
        let d = schedule(&loads, &computes, PipelineMode::Double);
        assert_eq!(d, 1.0 + 8.0);
    }

    #[test]
    #[should_panic(expected = "every chunk")]
    fn mismatched_lengths_panic() {
        schedule(&[1.0], &[], PipelineMode::Single);
    }

    /// Double buffering never loses to sequential execution and never
    /// beats the critical-path lower bounds. Checked over 128 random
    /// chunk profiles.
    #[test]
    fn schedule_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xD2);
        for case in 0..128 {
            let n = 1 + rng.below(19) as usize;
            let loads: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
            let computes: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0).collect();
            let single = schedule(&loads, &computes, PipelineMode::Single);
            let double = schedule(&loads, &computes, PipelineMode::Double);
            assert!(double <= single + 1e-9, "case {case}");
            let sum_loads: f64 = loads.iter().sum();
            let sum_computes: f64 = computes.iter().sum();
            // Critical path: all loads must happen; all computes must happen.
            assert!(double + 1e-9 >= sum_loads.max(sum_computes), "case {case}");
            // And the first load plus last compute are always exposed.
            assert!(
                double + 1e-9 >= loads[0] + computes[computes.len() - 1],
                "case {case}"
            );
        }
    }

    fn test_store(ranks: usize) -> ShardedStore {
        let mut s = ShardedStore::new(Partition::new(64, ranks), 2);
        let keys: Vec<u32> = (0..64).collect();
        let vals: Vec<f32> = keys.iter().flat_map(|&k| [k as f32, -(k as f32)]).collect();
        s.write_batch(&keys, &vals).unwrap();
        s
    }

    #[test]
    fn reader_visits_all_chunks_in_order() {
        let store = test_store(4);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..10).collect();
        let reader = ChunkedReader::new(4, PipelineMode::Double);
        let mut seen: Vec<(usize, Vec<u32>, Vec<f32>)> = Vec::new();
        let run = reader
            .run(&store, 0, &keys, &net, |start, ks, rows| {
                seen.push((start, ks.to_vec(), rows.to_vec()));
            })
            .unwrap();
        assert_eq!(run.chunks, 3); // 4 + 4 + 2
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1].0, 4);
        assert_eq!(seen[2].0, 8);
        assert_eq!(seen[2].1, vec![8, 9]);
        // Row contents delivered intact.
        assert_eq!(seen[0].2[0..2], [0.0, -0.0]);
        assert_eq!(seen[1].2[0..2], [4.0, -4.0]);
    }

    #[test]
    fn reader_modes_have_identical_data_different_time() {
        let store = test_store(8);
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..64).collect();
        let mut sums = Vec::new();
        for mode in [PipelineMode::Single, PipelineMode::Double] {
            let reader = ChunkedReader::new(8, mode);
            let mut sum = 0.0f64;
            let run = reader
                .run(&store, 0, &keys, &net, |_, _, rows| {
                    sum += rows.iter().map(|&x| x as f64).sum::<f64>();
                    // Busy work so compute time is non-trivial relative to
                    // the modeled load times.
                    for _ in 0..2000 {
                        std::hint::black_box(sum);
                    }
                })
                .unwrap();
            sums.push(sum);
            assert!(run.total > 0.0);
            assert!(run.load > 0.0);
            assert!(run.compute > 0.0);
        }
        assert_eq!(sums[0], sums[1], "pipelining changed the numerics");
    }

    #[test]
    fn reader_propagates_store_errors() {
        let store = test_store(2);
        let net = NetworkModel::fdr_infiniband();
        let reader = ChunkedReader::new(4, PipelineMode::Single);
        let err = reader
            .run(&store, 0, &[1000], &net, |_, _, _| {})
            .unwrap_err();
        assert!(matches!(err, DkvError::KeyOutOfRange { .. }));
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_panics() {
        ChunkedReader::new(0, PipelineMode::Single);
    }
}
