//! Distributed key-value store for the sampler's `pi` state.
//!
//! The paper builds a bespoke DKV store directly on InfiniBand ib-verbs
//! (§III-B) because its use case is unusually simple: a *static* key set
//! (one key per vertex, no inserts/deletes), *fixed-size* values (`K + 1`
//! floats: the `pi` row plus `sum(phi)`), and *barrier-separated* access
//! stages in which writes always target unique keys — so every operation
//! is exactly one RDMA read or one RDMA write, with no concurrency
//! control.
//!
//! This crate reproduces that store for the simulated cluster:
//!
//! * [`Partition`] — the static key-to-owner mapping,
//! * [`DkvStore`] — the read/write-batch interface,
//! * [`LocalStore`] — single-node backing (the vertical-scaling baseline),
//! * [`ShardedStore`] — per-rank shards with modeled RDMA cost accounting
//!   ([`ShardedStore::read_cost`]), the distributed configuration,
//! * [`pipeline`] — chunked readers that overlap loading `pi` with
//!   compute (paper §III-D, Figure 3, Table III): the synchronous
//!   [`pipeline::ChunkedReader`] (overlap *modeled* by
//!   [`pipeline::schedule`]) and the real [`pipeline::PrefetchingReader`]
//!   (overlap *measured*, double-buffered on a background worker).
//!
//! Data movement is performed for real (rows are copied through the store
//! on every access); only the *wire time* is modeled, by `mmsb-netsim`.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod pipeline;

mod faults;
mod partition;
mod store;

pub use faults::{FaultingStore, OpOutcome};
pub use partition::Partition;
pub use store::{DkvStore, LocalStore, ShardedStore};

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DkvError {
    /// A key outside `[0, num_keys)`.
    KeyOutOfRange {
        /// The offending key.
        key: u32,
        /// Total number of keys.
        num_keys: u32,
    },
    /// An output or input buffer whose length is not
    /// `keys.len() * row_len`.
    BufferSizeMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// A write batch containing the same key twice — forbidden by the
    /// store's no-write-hazard contract.
    DuplicateKeyInWrite {
        /// The duplicated key.
        key: u32,
    },
    /// A fault-injected operation failed on every attempt the recovery
    /// policy allowed.
    RetriesExhausted {
        /// Attempts performed before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for DkvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DkvError::KeyOutOfRange { key, num_keys } => {
                write!(f, "key {key} out of range (store holds {num_keys})")
            }
            DkvError::BufferSizeMismatch { expected, got } => {
                write!(f, "buffer holds {got} elements, expected {expected}")
            }
            DkvError::DuplicateKeyInWrite { key } => {
                write!(f, "key {key} appears twice in one write batch")
            }
            DkvError::RetriesExhausted { attempts } => {
                write!(f, "operation failed on all {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DkvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DkvError::KeyOutOfRange {
            key: 10,
            num_keys: 5,
        };
        assert!(e.to_string().contains("10"));
        let e = DkvError::BufferSizeMismatch {
            expected: 8,
            got: 4,
        };
        assert!(e.to_string().contains('8'));
        let e = DkvError::DuplicateKeyInWrite { key: 3 };
        assert!(e.to_string().contains('3'));
    }
}
