//! Store implementations: single-node and sharded.

use crate::{DkvError, Partition};
use mmsb_netsim::NetworkModel;
use mmsb_obs::id as obs_id;

/// Per-batch instrumentation shared by the store implementations: bumps
/// the batch/key counters at open and records the latency histogram (and
/// a span at spans level) when dropped, covering every return path.
/// Pure atomics — keeps the instrumented `read_batch`/`write_batch`
/// allocation-free, as `crates/core/tests/zero_alloc.rs` verifies.
pub(crate) struct OpObs {
    sw: Option<mmsb_obs::clock::Stopwatch>,
    hist: usize,
    _span: mmsb_obs::Span,
}

impl OpObs {
    pub(crate) fn read(keys: &[u32]) -> Self {
        mmsb_obs::counter_add(obs_id::C_DKV_READ_BATCHES, 1);
        mmsb_obs::counter_add(obs_id::C_DKV_READ_KEYS, keys.len() as u64);
        Self::open(obs_id::S_DKV_READ, obs_id::H_DKV_READ_NS)
    }

    pub(crate) fn write(keys: &[u32]) -> Self {
        mmsb_obs::counter_add(obs_id::C_DKV_WRITE_BATCHES, 1);
        mmsb_obs::counter_add(obs_id::C_DKV_WRITE_KEYS, keys.len() as u64);
        Self::open(obs_id::S_DKV_WRITE, obs_id::H_DKV_WRITE_NS)
    }

    fn open(span: usize, hist: usize) -> Self {
        Self {
            sw: mmsb_obs::metrics_on().then(mmsb_obs::clock::Stopwatch::start),
            hist,
            _span: mmsb_obs::span(span),
        }
    }
}

impl Drop for OpObs {
    fn drop(&mut self) {
        if let Some(sw) = self.sw {
            mmsb_obs::hist_record_ns(self.hist, sw.elapsed_ns());
        }
    }
}

/// The store interface: batched reads and writes of fixed-size `f32` rows.
///
/// Contract (mirrors the paper's §III-B):
/// * the key set is static — `num_keys` rows exist from construction,
/// * all rows have the same length `row_len`,
/// * a write batch never contains the same key twice (stages are
///   barrier-separated and updates target unique vertices), which the
///   implementations *verify* rather than trust.
pub trait DkvStore {
    /// Number of keys (rows) in the store.
    fn num_keys(&self) -> u32;

    /// Elements per row (`K + 1` in the sampler: `pi` plus `sum(phi)`).
    fn row_len(&self) -> usize;

    /// Read the rows for `keys` into `out` (concatenated, in key order).
    fn read_batch(&self, keys: &[u32], out: &mut [f32]) -> Result<(), DkvError>;

    /// Write the rows for `keys` from `vals` (concatenated, in key order).
    fn write_batch(&mut self, keys: &[u32], vals: &[f32]) -> Result<(), DkvError>;

    /// Convenience: read one row into a fresh vector.
    fn read_row(&self, key: u32) -> Result<Vec<f32>, DkvError> {
        let mut out = vec![0.0; self.row_len()];
        self.read_batch(&[key], &mut out)?;
        Ok(out)
    }
}

fn validate_batch(
    num_keys: u32,
    row_len: usize,
    keys: &[u32],
    buf_len: usize,
) -> Result<(), DkvError> {
    for &k in keys {
        if k >= num_keys {
            return Err(DkvError::KeyOutOfRange { key: k, num_keys });
        }
    }
    let expected = keys.len() * row_len;
    if buf_len != expected {
        return Err(DkvError::BufferSizeMismatch {
            expected,
            got: buf_len,
        });
    }
    Ok(())
}

/// Duplicate detection via a caller-provided scratch buffer: the keys are
/// copied into `scratch` and sorted there, so steady-state write batches
/// perform no allocation once the scratch has grown to the largest batch
/// seen (pinned by `crates/core/tests/zero_alloc.rs`).
fn check_no_duplicates(keys: &[u32], scratch: &mut Vec<u32>) -> Result<(), DkvError> {
    scratch.clear();
    scratch.extend_from_slice(keys);
    scratch.sort_unstable();
    for w in scratch.windows(2) {
        if w[0] == w[1] {
            return Err(DkvError::DuplicateKeyInWrite { key: w[0] });
        }
    }
    Ok(())
}

/// Single-node store: one contiguous array. The backing for the
/// sequential and multithreaded (vertical-scaling) samplers.
#[derive(Debug, Clone)]
pub struct LocalStore {
    rows: Vec<f32>,
    num_keys: u32,
    row_len: usize,
    dup_scratch: Vec<u32>,
}

impl LocalStore {
    /// Create a zero-initialized store.
    pub fn new(num_keys: u32, row_len: usize) -> Self {
        assert!(row_len > 0, "rows must have at least one element");
        Self {
            rows: vec![0.0; num_keys as usize * row_len],
            num_keys,
            row_len,
            dup_scratch: Vec::new(),
        }
    }

    /// Borrow one row immutably (zero-copy fast path for local access).
    pub fn row(&self, key: u32) -> &[f32] {
        let i = key as usize * self.row_len;
        &self.rows[i..i + self.row_len]
    }

    /// Borrow one row mutably.
    pub fn row_mut(&mut self, key: u32) -> &mut [f32] {
        let i = key as usize * self.row_len;
        &mut self.rows[i..i + self.row_len]
    }
}

impl DkvStore for LocalStore {
    fn num_keys(&self) -> u32 {
        self.num_keys
    }

    fn row_len(&self) -> usize {
        self.row_len
    }

    fn read_batch(&self, keys: &[u32], out: &mut [f32]) -> Result<(), DkvError> {
        let _obs = OpObs::read(keys);
        validate_batch(self.num_keys, self.row_len, keys, out.len())?;
        for (i, &k) in keys.iter().enumerate() {
            let src = k as usize * self.row_len;
            out[i * self.row_len..(i + 1) * self.row_len]
                .copy_from_slice(&self.rows[src..src + self.row_len]);
        }
        Ok(())
    }

    fn write_batch(&mut self, keys: &[u32], vals: &[f32]) -> Result<(), DkvError> {
        let _obs = OpObs::write(keys);
        validate_batch(self.num_keys, self.row_len, keys, vals.len())?;
        check_no_duplicates(keys, &mut self.dup_scratch)?;
        for (i, &k) in keys.iter().enumerate() {
            let dst = k as usize * self.row_len;
            self.rows[dst..dst + self.row_len]
                .copy_from_slice(&vals[i * self.row_len..(i + 1) * self.row_len]);
        }
        Ok(())
    }
}

/// Sharded store: rows live in per-rank shards according to a static
/// [`Partition`]. Reads and writes move real bytes; the RDMA wire time a
/// physical cluster would spend is *modeled* by [`ShardedStore::read_cost`]
/// / [`ShardedStore::write_cost`] and charged to the caller's virtual
/// clock by the distributed sampler.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    shards: Vec<Vec<f32>>,
    partition: Partition,
    row_len: usize,
    /// Local (same-rank) memory bandwidth in bytes/s, used to price the
    /// `1/C` of accesses that do not cross the wire.
    local_bandwidth: f64,
    /// Optional *real* (wall-clock) per-key read latency in seconds.
    /// Zero by default: `read_batch` returns at memcpy speed and wire
    /// time is modeled only. When set, `read_batch` blocks for
    /// `keys.len() * read_latency_per_key` before delivering the rows —
    /// emulating a remote store whose batched reads are bound by
    /// per-request network time rather than memory bandwidth. Blocking
    /// (not spinning) is deliberate: it occupies no CPU, exactly like a
    /// NIC DMA, so a prefetch thread genuinely overlaps with compute.
    read_latency_per_key: f64,
    dup_scratch: Vec<u32>,
}

impl ShardedStore {
    /// Default per-core streaming memory bandwidth (bytes/s) used to price
    /// same-rank accesses: ~12 GB/s, a Xeon E5-2630v3-era figure.
    pub const DEFAULT_LOCAL_BANDWIDTH: f64 = 12e9;

    /// Create a zero-initialized sharded store.
    pub fn new(partition: Partition, row_len: usize) -> Self {
        assert!(row_len > 0, "rows must have at least one element");
        let shards = (0..partition.ranks())
            .map(|r| vec![0.0; partition.shard_size(r) * row_len])
            .collect();
        Self {
            shards,
            partition,
            row_len,
            local_bandwidth: Self::DEFAULT_LOCAL_BANDWIDTH,
            read_latency_per_key: 0.0,
            dup_scratch: Vec::new(),
        }
    }

    /// Override the local-access bandwidth model.
    pub fn with_local_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        self.local_bandwidth = bytes_per_sec;
        self
    }

    /// Make `read_batch` *really* block for `secs` of wall-clock per key
    /// before delivering the rows, emulating a latency-bound remote
    /// store. Delivered bytes are unchanged, so training chains are
    /// unaffected; only wall-clock timing moves. Used by the pipeline
    /// benchmark to measure genuine load/compute overlap.
    pub fn with_read_latency_per_key(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "latency must be non-negative");
        self.read_latency_per_key = secs;
        self
    }

    /// The store's partition.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Simulate the permanent loss of `rank`'s shard: its rows are
    /// zeroed, exactly as if the hosting node's memory vanished. The
    /// recovery path re-populates the shard from the last checkpoint.
    pub fn wipe_shard(&mut self, rank: usize) {
        assert!(rank < self.shards.len(), "rank {rank} has no shard");
        self.shards[rank].fill(0.0);
    }

    /// Bytes per row on the wire.
    pub fn row_bytes(&self) -> usize {
        self.row_len * std::mem::size_of::<f32>()
    }

    /// Modeled time for `reader_rank` to read the given keys in one
    /// batched stage: one round-trip of latency amortized over the batch
    /// (requests are posted back-to-back on the NIC), plus per-request
    /// setup and payload time for remote rows, plus memory-copy time for
    /// local rows.
    pub fn read_cost(&self, reader_rank: usize, keys: &[u32], net: &NetworkModel) -> f64 {
        self.batch_cost(reader_rank, keys, net, /*is_read=*/ true)
    }

    /// Modeled time for `writer_rank` to write the given keys in one
    /// batched stage (posted writes: no response round trip).
    pub fn write_cost(&self, writer_rank: usize, keys: &[u32], net: &NetworkModel) -> f64 {
        self.batch_cost(writer_rank, keys, net, /*is_read=*/ false)
    }

    fn batch_cost(&self, rank: usize, keys: &[u32], net: &NetworkModel, is_read: bool) -> f64 {
        let bytes = self.row_bytes();
        let mut remote = 0usize;
        let mut local = 0usize;
        for &k in keys {
            if self.partition.owner(k) == rank {
                local += 1;
            } else {
                remote += 1;
            }
        }
        let mut t = local as f64 * bytes as f64 / self.local_bandwidth;
        if remote > 0 {
            // One latency (round trip for reads) for the batch; the
            // requests are posted back-to-back, and work-request posting
            // overlaps the NIC's DMA transfers, so the steady-state batch
            // cost is the larger of the posting time and the wire time.
            let lat = if is_read { 2.0 * net.latency } else { net.latency };
            let posting = remote as f64 * net.rdma_setup;
            let wire = remote as f64 * bytes as f64 / net.bandwidth;
            t += lat + posting.max(wire);
        }
        t
    }
}

impl DkvStore for ShardedStore {
    fn num_keys(&self) -> u32 {
        self.partition.num_keys()
    }

    fn row_len(&self) -> usize {
        self.row_len
    }

    fn read_batch(&self, keys: &[u32], out: &mut [f32]) -> Result<(), DkvError> {
        let _obs = OpObs::read(keys);
        validate_batch(self.num_keys(), self.row_len, keys, out.len())?;
        if self.read_latency_per_key > 0.0 && !keys.is_empty() {
            std::thread::sleep(std::time::Duration::from_secs_f64(
                keys.len() as f64 * self.read_latency_per_key,
            ));
        }
        for (i, &k) in keys.iter().enumerate() {
            let shard = &self.shards[self.partition.owner(k)];
            let src = self.partition.local_index(k) * self.row_len;
            out[i * self.row_len..(i + 1) * self.row_len]
                .copy_from_slice(&shard[src..src + self.row_len]);
        }
        Ok(())
    }

    fn write_batch(&mut self, keys: &[u32], vals: &[f32]) -> Result<(), DkvError> {
        let _obs = OpObs::write(keys);
        validate_batch(self.num_keys(), self.row_len, keys, vals.len())?;
        check_no_duplicates(keys, &mut self.dup_scratch)?;
        for (i, &k) in keys.iter().enumerate() {
            let owner = self.partition.owner(k);
            let dst = self.partition.local_index(k) * self.row_len;
            self.shards[owner][dst..dst + self.row_len]
                .copy_from_slice(&vals[i * self.row_len..(i + 1) * self.row_len]);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    fn write_rows<S: DkvStore>(store: &mut S, keys: &[u32]) {
        let row_len = store.row_len();
        let vals: Vec<f32> = keys
            .iter()
            .flat_map(|&k| (0..row_len).map(move |j| (k * 100 + j as u32) as f32))
            .collect();
        store.write_batch(keys, &vals).unwrap();
    }

    #[test]
    fn local_store_roundtrip() {
        let mut s = LocalStore::new(10, 3);
        write_rows(&mut s, &[2, 5, 9]);
        assert_eq!(s.read_row(5).unwrap(), vec![500.0, 501.0, 502.0]);
        assert_eq!(s.row(2), &[200.0, 201.0, 202.0]);
        s.row_mut(2)[0] = -1.0;
        assert_eq!(s.read_row(2).unwrap()[0], -1.0);
    }

    #[test]
    fn sharded_store_roundtrip_many_ranks() {
        for ranks in [1usize, 2, 7, 64] {
            let mut s = ShardedStore::new(Partition::new(100, ranks), 4);
            let keys: Vec<u32> = (0..100).collect();
            write_rows(&mut s, &keys);
            let mut out = vec![0.0; 100 * 4];
            s.read_batch(&keys, &mut out).unwrap();
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(out[i * 4], (k * 100) as f32, "ranks={ranks} key={k}");
            }
        }
    }

    #[test]
    fn key_out_of_range_rejected() {
        let s = LocalStore::new(5, 2);
        let mut out = vec![0.0; 2];
        assert!(matches!(
            s.read_batch(&[5], &mut out),
            Err(DkvError::KeyOutOfRange { key: 5, num_keys: 5 })
        ));
    }

    #[test]
    fn buffer_mismatch_rejected() {
        let s = LocalStore::new(5, 2);
        let mut out = vec![0.0; 3];
        assert!(matches!(
            s.read_batch(&[0], &mut out),
            Err(DkvError::BufferSizeMismatch { expected: 2, got: 3 })
        ));
    }

    #[test]
    fn duplicate_write_rejected() {
        let mut s = LocalStore::new(5, 1);
        assert!(matches!(
            s.write_batch(&[1, 1], &[0.0, 0.0]),
            Err(DkvError::DuplicateKeyInWrite { key: 1 })
        ));
        // Duplicate *reads* are fine (two neighbors of the same vertex).
        let mut out = vec![0.0; 2];
        s.read_batch(&[1, 1], &mut out).unwrap();
    }

    /// The simulated-latency knob blocks for real wall-clock but must
    /// deliver byte-identical rows, so training chains cannot move.
    #[test]
    fn read_latency_blocks_but_delivers_identical_rows() {
        let mut fast = ShardedStore::new(Partition::new(20, 4), 3);
        let keys: Vec<u32> = (0..20).collect();
        write_rows(&mut fast, &keys);
        let slow = fast.clone().with_read_latency_per_key(100e-6);

        let mut a = vec![0.0; 20 * 3];
        let mut b = vec![0.0; 20 * 3];
        fast.read_batch(&keys, &mut a).unwrap();
        let t0 = mmsb_obs::clock::Stopwatch::start();
        slow.read_batch(&keys, &mut b).unwrap();
        let elapsed = t0.elapsed_secs();
        assert_eq!(a, b, "latency changed delivered bytes");
        // 20 keys * 100us = 2ms floor (sleep may overshoot, never under).
        assert!(elapsed >= 1.9e-3, "read returned too fast: {elapsed}s");
    }

    #[test]
    fn wipe_shard_zeroes_only_that_shard() {
        let mut s = ShardedStore::new(Partition::new(20, 4), 2);
        let keys: Vec<u32> = (0..20).collect();
        write_rows(&mut s, &keys);
        let victim = 1usize;
        s.wipe_shard(victim);
        for k in 0..20u32 {
            let row = s.read_row(k).unwrap();
            if s.partition().owner(k) == victim {
                assert_eq!(row, vec![0.0, 0.0], "key {k} not wiped");
            } else {
                assert_eq!(row[0], (k * 100) as f32, "key {k} damaged");
            }
        }
    }

    #[test]
    fn read_cost_scales_with_remote_fraction() {
        let net = NetworkModel::fdr_infiniband();
        let keys: Vec<u32> = (0..64).collect();
        let single = ShardedStore::new(Partition::new(64, 1), 16);
        let spread = ShardedStore::new(Partition::new(64, 64), 16);
        // With one rank everything is local; with 64 ranks, 63/64 remote.
        let c1 = single.read_cost(0, &keys, &net);
        let c64 = spread.read_cost(0, &keys, &net);
        assert!(c64 > 5.0 * c1, "local {c1} vs spread {c64}");
    }

    #[test]
    fn write_cost_cheaper_than_read_cost() {
        // Posted writes skip the response round trip.
        let net = NetworkModel::fdr_infiniband();
        let s = ShardedStore::new(Partition::new(64, 8), 16);
        let keys: Vec<u32> = (0..8).collect();
        assert!(s.write_cost(0, &keys, &net) < s.read_cost(0, &keys, &net));
    }

    #[test]
    fn cost_zero_on_ideal_network_except_local_copies() {
        let net = NetworkModel::ideal();
        let s = ShardedStore::new(Partition::new(16, 4), 8).with_local_bandwidth(1e12);
        let keys: Vec<u32> = (0..16).collect();
        let c = s.read_cost(0, &keys, &net);
        assert!(c < 1e-6, "cost {c}");
    }

    /// Sharded and local stores are observationally identical. Checked
    /// over 64 random write sequences and rank counts.
    #[test]
    fn sharded_matches_local() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xD3);
        for case in 0..64 {
            let ranks = 1 + rng.below(8) as usize;
            let n_writes = 1 + rng.below(59) as usize;
            let mut local = LocalStore::new(30, 2);
            let mut sharded = ShardedStore::new(Partition::new(30, ranks), 2);
            // Apply writes one key at a time (duplicates across batches ok).
            for _ in 0..n_writes {
                let k = rng.below(30) as u32;
                let v = (rng.next_f64() * 200.0 - 100.0) as f32;
                let row = [v, v + 1.0];
                local.write_batch(&[k], &row).unwrap();
                sharded.write_batch(&[k], &row).unwrap();
            }
            let keys: Vec<u32> = (0..30).collect();
            let mut a = vec![0.0; 60];
            let mut b = vec![0.0; 60];
            local.read_batch(&keys, &mut a).unwrap();
            sharded.read_batch(&keys, &mut b).unwrap();
            assert_eq!(a, b, "case {case} (ranks={ranks})");
        }
    }
}
