//! Fault-injected store access with bounded-retry recovery.
//!
//! [`FaultingStore`] wraps a [`ShardedStore`] and consults a
//! [`FaultPlan`] before every batched operation. Injected failures are
//! *executed*, not just priced: a failed read attempt garbles the output
//! buffer before the retry re-reads it, and a failed write applies a
//! partial prefix before the retry rewrites the full batch (writes are
//! idempotent row overwrites, so the retried batch restores exactly the
//! intended state). The recovery cost — wasted attempts plus exponential
//! backoff from the [`RecoveryPolicy`] — is returned to the caller as
//! modeled seconds, which the distributed sampler charges to the owning
//! rank's virtual clock under `Phase::Recovery`.
//!
//! Because the plan's decisions are pure functions of the site
//! coordinates and recovered operations always converge to the same
//! delivered bytes, a faulty run's *data* path is bitwise-identical to
//! the fault-free run; only its clocks differ.
//!
//! This module performs no thread synchronization of its own. If it ever
//! needs any, it must route it through `mmsb_pool::sync` (the `xlint`
//! std-sync-confinement rule enforces this for all of `crates/dkv/src`),
//! so `mmsb-check` can model it.

use crate::{DkvError, DkvStore, ShardedStore};
use mmsb_netsim::{DkvFault, FaultPlan, RecoveryPolicy};

/// What one recovered operation cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpOutcome {
    /// Total attempts performed (1 = no fault).
    pub attempts: u32,
    /// Modeled extra seconds spent on recovery: wasted attempts, backoff
    /// and slow-path surcharges. Zero when the first attempt succeeds at
    /// full speed.
    pub recovery_seconds: f64,
}

impl OpOutcome {
    /// A fault-free outcome.
    pub fn clean() -> Self {
        Self {
            attempts: 1,
            recovery_seconds: 0.0,
        }
    }
}

/// A [`ShardedStore`] whose batched operations suffer the faults of a
/// [`FaultPlan`] and recover per a [`RecoveryPolicy`].
#[derive(Debug, Clone)]
pub struct FaultingStore {
    inner: ShardedStore,
    plan: FaultPlan,
    policy: RecoveryPolicy,
    iteration: u64,
}

impl FaultingStore {
    /// Wrap `inner` with the given fault schedule and recovery policy.
    pub fn new(inner: ShardedStore, plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        Self {
            inner,
            plan,
            policy,
            iteration: 0,
        }
    }

    /// Set the iteration coordinate used for fault decisions. The
    /// distributed sampler calls this once per iteration so a resumed run
    /// sees the same fault schedule as an uninterrupted one.
    pub fn set_iteration(&mut self, iteration: u64) {
        self.iteration = iteration;
    }

    /// The wrapped store.
    pub fn inner(&self) -> &ShardedStore {
        &self.inner
    }

    /// The wrapped store, mutably (checkpoint restore repopulates rows
    /// through this).
    pub fn inner_mut(&mut self) -> &mut ShardedStore {
        &mut self.inner
    }

    /// The fault plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The recovery policy in force.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Permanently lose `rank`'s shard (the node died). The rows are
    /// really zeroed; only a checkpoint can bring them back.
    pub fn lose_shard(&mut self, rank: usize) {
        self.inner.wipe_shard(rank);
    }

    /// Read `keys` into `out` as chunk `chunk` of `rank`'s load stage,
    /// retrying per the policy. `healthy_cost` is the modeled seconds one
    /// clean attempt takes; wasted attempts and the slow path are charged
    /// as multiples of it.
    pub fn read_batch_recovered(
        &mut self,
        rank: usize,
        chunk: usize,
        keys: &[u32],
        out: &mut [f32],
        healthy_cost: f64,
    ) -> Result<OpOutcome, DkvError> {
        let site = site_hash(rank as u64, chunk as u64, self.iteration);
        let mut recovery = 0.0;
        for attempt in 0..=self.policy.max_retries {
            match self.plan.read_fault(rank, self.iteration, chunk, attempt) {
                Some(DkvFault::Fail) => {
                    // The attempt really ran and delivered garbage; the
                    // retry below overwrites every element, so the chain
                    // never observes these bytes.
                    out.fill(f32::NAN);
                    mmsb_obs::counter_add(mmsb_obs::id::C_DKV_READ_RETRIES, 1);
                    recovery += healthy_cost + self.policy.backoff(&self.plan, site, attempt);
                }
                Some(DkvFault::Slow(factor)) => {
                    self.inner.read_batch(keys, out)?;
                    recovery += healthy_cost * (factor - 1.0);
                    return Ok(OpOutcome {
                        attempts: attempt + 1,
                        recovery_seconds: recovery,
                    });
                }
                None => {
                    self.inner.read_batch(keys, out)?;
                    return Ok(OpOutcome {
                        attempts: attempt + 1,
                        recovery_seconds: recovery,
                    });
                }
            }
        }
        Err(DkvError::RetriesExhausted {
            attempts: self.policy.max_retries + 1,
        })
    }

    /// Write `keys`/`vals` as `rank`'s write-back stage, retrying per the
    /// policy. A failed attempt applies a *partial prefix* of the batch
    /// (the node crashed mid-write); the retry rewrites the full batch,
    /// which is idempotent because writes are whole-row overwrites.
    pub fn write_batch_recovered(
        &mut self,
        rank: usize,
        keys: &[u32],
        vals: &[f32],
        healthy_cost: f64,
    ) -> Result<OpOutcome, DkvError> {
        let site = site_hash(rank as u64, u64::MAX, self.iteration);
        let row_len = self.inner.row_len();
        let mut recovery = 0.0;
        for attempt in 0..=self.policy.max_retries {
            match self.plan.write_fault(rank, self.iteration, attempt) {
                Some(DkvFault::Fail) => {
                    // Really apply the half-finished write before failing.
                    let cut = keys.len() / 2;
                    self.inner
                        .write_batch(&keys[..cut], &vals[..cut * row_len])?;
                    mmsb_obs::counter_add(mmsb_obs::id::C_DKV_WRITE_RETRIES, 1);
                    recovery += healthy_cost + self.policy.backoff(&self.plan, site, attempt);
                }
                Some(DkvFault::Slow(factor)) => {
                    self.inner.write_batch(keys, vals)?;
                    recovery += healthy_cost * (factor - 1.0);
                    return Ok(OpOutcome {
                        attempts: attempt + 1,
                        recovery_seconds: recovery,
                    });
                }
                None => {
                    self.inner.write_batch(keys, vals)?;
                    return Ok(OpOutcome {
                        attempts: attempt + 1,
                        recovery_seconds: recovery,
                    });
                }
            }
        }
        Err(DkvError::RetriesExhausted {
            attempts: self.policy.max_retries + 1,
        })
    }
}

/// Mix three coordinates into one jitter-site hash.
fn site_hash(a: u64, b: u64, c: u64) -> u64 {
    a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.rotate_left(21)
        ^ c.rotate_left(42)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Partition;
    use mmsb_netsim::FaultConfig;

    fn store(n: u32, ranks: usize, row_len: usize) -> ShardedStore {
        let mut s = ShardedStore::new(Partition::new(n, ranks), row_len);
        let keys: Vec<u32> = (0..n).collect();
        let vals: Vec<f32> = keys
            .iter()
            .flat_map(|&k| (0..row_len).map(move |j| (k * 10 + j as u32) as f32))
            .collect();
        s.write_batch(&keys, &vals).unwrap();
        s
    }

    #[test]
    fn clean_plan_charges_nothing_and_delivers_rows() {
        let plan = FaultPlan::new(FaultConfig::none(1));
        let mut fs = FaultingStore::new(store(16, 2, 3), plan, RecoveryPolicy::default());
        let keys: Vec<u32> = (0..16).collect();
        let mut out = vec![0.0; 16 * 3];
        let oc = fs
            .read_batch_recovered(0, 0, &keys, &mut out, 1e-3)
            .unwrap();
        assert_eq!(oc, OpOutcome::clean());
        assert_eq!(out[3], 10.0);
    }

    #[test]
    fn faulty_reads_recover_to_identical_bytes() {
        let plan = FaultPlan::new(FaultConfig::transient(42));
        let clean = store(64, 4, 3);
        let mut fs = FaultingStore::new(clean.clone(), plan, RecoveryPolicy::default());
        let keys: Vec<u32> = (0..64).collect();
        let mut want = vec![0.0; 64 * 3];
        clean.read_batch(&keys, &mut want).unwrap();
        let mut total_recovery = 0.0;
        let mut saw_fault = false;
        for it in 0..50u64 {
            fs.set_iteration(it);
            for chunk in 0..4usize {
                let mut got = vec![0.0; 64 * 3];
                let oc = fs
                    .read_batch_recovered(1, chunk, &keys, &mut got, 1e-3)
                    .unwrap();
                assert_eq!(got, want, "it={it} chunk={chunk}");
                saw_fault |= oc.attempts > 1 || oc.recovery_seconds > 0.0;
                total_recovery += oc.recovery_seconds;
            }
        }
        assert!(saw_fault, "transient plan injected nothing in 200 reads");
        assert!(total_recovery > 0.0);
    }

    #[test]
    fn faulty_writes_converge_despite_partial_prefixes() {
        let plan = FaultPlan::new(FaultConfig::transient(7));
        let mut fs = FaultingStore::new(store(32, 2, 2), plan, RecoveryPolicy::default());
        let keys: Vec<u32> = (0..32).collect();
        let vals: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let mut saw_retry = false;
        for it in 0..80u64 {
            fs.set_iteration(it);
            let oc = fs.write_batch_recovered(0, &keys, &vals, 1e-3).unwrap();
            saw_retry |= oc.attempts > 1;
            let mut got = vec![0.0; 64];
            fs.inner().read_batch(&keys, &mut got).unwrap();
            assert_eq!(got, vals, "it={it}");
        }
        assert!(saw_retry, "transient plan never failed a write in 80 tries");
    }

    #[test]
    fn certain_failure_exhausts_retries() {
        let mut cfg = FaultConfig::none(3);
        cfg.read_fail = 1.0;
        let mut fs = FaultingStore::new(
            store(8, 2, 1),
            FaultPlan::new(cfg),
            RecoveryPolicy::default(),
        );
        let mut out = vec![0.0; 8];
        let err = fs
            .read_batch_recovered(0, 0, &(0..8).collect::<Vec<u32>>(), &mut out, 1e-3)
            .unwrap_err();
        assert_eq!(err, DkvError::RetriesExhausted { attempts: 5 });
    }

    #[test]
    fn lose_shard_really_zeroes_rows() {
        let plan = FaultPlan::new(FaultConfig::none(1));
        let mut fs = FaultingStore::new(store(12, 3, 2), plan, RecoveryPolicy::default());
        fs.lose_shard(2);
        let victim_keys: Vec<u32> = (0..12)
            .filter(|&k| fs.inner().partition().owner(k) == 2)
            .collect();
        assert!(!victim_keys.is_empty());
        for k in victim_keys {
            assert_eq!(fs.inner().read_row(k).unwrap(), vec![0.0, 0.0]);
        }
    }
}
