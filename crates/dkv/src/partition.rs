//! Static partitioning of keys over ranks.
//!
//! The key layout never changes after initial population, so ownership can
//! be a pure function. Keys are assigned round-robin (`key % ranks`): the
//! mini-batch and neighbor sets are uniform over vertices, so round-robin
//! gives each rank an equal share of the random read traffic regardless of
//! vertex-id locality in the input graph.

/// Static key-to-rank mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    num_keys: u32,
    ranks: usize,
}

impl Partition {
    /// Create a partition of `num_keys` keys over `ranks` ranks.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn new(num_keys: u32, ranks: usize) -> Self {
        assert!(ranks > 0, "partition needs at least one rank");
        Self { num_keys, ranks }
    }

    /// Total number of keys.
    pub fn num_keys(&self) -> u32 {
        self.num_keys
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Owner rank of `key`.
    #[inline]
    pub fn owner(&self, key: u32) -> usize {
        (key as usize) % self.ranks
    }

    /// Index of `key` within its owner's local shard.
    #[inline]
    pub fn local_index(&self, key: u32) -> usize {
        (key as usize) / self.ranks
    }

    /// Number of keys owned by `rank`.
    pub fn shard_size(&self, rank: usize) -> usize {
        assert!(rank < self.ranks, "rank {rank} out of {}", self.ranks);
        let n = self.num_keys as usize;
        n / self.ranks + usize::from(rank < n % self.ranks)
    }

    /// Fraction of uniform-random reads that are remote for a reader on
    /// `rank` — the `(C-1)/C` of paper §IV-C.
    pub fn remote_fraction(&self) -> f64 {
        (self.ranks as f64 - 1.0) / self.ranks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    #[test]
    fn owner_and_local_index_consistent() {
        let p = Partition::new(10, 3);
        // key -> (owner, local): 0->(0,0) 1->(1,0) 2->(2,0) 3->(0,1) ...
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(4), 1);
        assert_eq!(p.local_index(0), 0);
        assert_eq!(p.local_index(3), 1);
        assert_eq!(p.local_index(7), 2);
    }

    #[test]
    fn shard_sizes_sum_to_total() {
        for (keys, ranks) in [(10u32, 3usize), (64, 64), (7, 8), (1000, 13), (0, 4)] {
            let p = Partition::new(keys, ranks);
            let total: usize = (0..ranks).map(|r| p.shard_size(r)).sum();
            assert_eq!(total, keys as usize, "keys={keys} ranks={ranks}");
        }
    }

    #[test]
    fn shard_sizes_are_balanced() {
        let p = Partition::new(1001, 8);
        let sizes: Vec<usize> = (0..8).map(|r| p.shard_size(r)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn remote_fraction_matches_paper() {
        assert_eq!(Partition::new(100, 1).remote_fraction(), 0.0);
        assert!((Partition::new(100, 64).remote_fraction() - 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Partition::new(10, 0);
    }

    /// Every key is owned by exactly one rank and the (owner,
    /// local_index) pair is a bijection into the shards. Checked over 64
    /// random (keys, ranks) configurations.
    #[test]
    fn ownership_is_a_bijection() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xD1);
        for _ in 0..64 {
            let keys = 1 + rng.below(499) as u32;
            let ranks = 1 + rng.below(19) as usize;
            let p = Partition::new(keys, ranks);
            let mut seen = std::collections::HashSet::new();
            for key in 0..keys {
                let owner = p.owner(key);
                assert!(owner < ranks, "keys={keys} ranks={ranks}");
                let local = p.local_index(key);
                assert!(local < p.shard_size(owner), "keys={keys} ranks={ranks}");
                assert!(
                    seen.insert((owner, local)),
                    "slot collision (keys={keys} ranks={ranks})"
                );
            }
        }
    }
}
