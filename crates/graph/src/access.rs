//! The neighbor-access trait the samplers consume.
//!
//! Everything mini-batch training needs from the data side is four
//! queries: vertex count, degree, a sorted neighbor list, and an edge
//! membership test. [`GraphAccess`] abstracts exactly those, so the same
//! sampler code runs against the resident CSR ([`Graph`]) or an
//! out-of-core block-cached reader (`mmsb-ooc`'s `OocReader`).
//!
//! The list- and membership-returning methods take `&mut self`: an
//! out-of-core reader mutates its block cache on every read. The resident
//! implementation (on `&Graph`) ignores the mutability. Crucially, the
//! *values* returned never depend on reader state — neighbor lists are
//! the same sorted, deduplicated ids whichever backend serves them —
//! which is what keeps sampling chains bitwise identical across backends
//! (DESIGN.md §15).

use crate::{Graph, VertexId};

/// Read access to an undirected graph's adjacency structure.
pub trait GraphAccess {
    /// Number of vertices `N`.
    fn num_vertices(&self) -> u32;

    /// Number of undirected edges `|E|`.
    fn num_edges(&self) -> u64;

    /// Degree of `v` (resident metadata on every backend — no I/O).
    fn degree(&self, v: VertexId) -> u32;

    /// Maximum degree over all vertices.
    fn max_degree(&self) -> u32;

    /// The sorted neighbor list of `v` as raw ids. May touch the backing
    /// store; the slice borrows from `self` (the reader's decode scratch
    /// or the CSR itself).
    fn neighbors(&mut self, v: VertexId) -> &[u32];

    /// Whether the edge `{a, b}` exists. `a != b` is assumed.
    fn has_edge(&mut self, a: VertexId, b: VertexId) -> bool;

    /// Number of unordered vertex pairs `|E*| = N (N - 1) / 2`.
    fn num_pairs(&self) -> u64 {
        let n = self.num_vertices() as u64;
        n * (n - 1) / 2
    }
}

impl<G: GraphAccess> GraphAccess for &mut G {
    fn num_vertices(&self) -> u32 {
        (**self).num_vertices()
    }

    fn num_edges(&self) -> u64 {
        (**self).num_edges()
    }

    fn degree(&self, v: VertexId) -> u32 {
        (**self).degree(v)
    }

    fn max_degree(&self) -> u32 {
        (**self).max_degree()
    }

    fn neighbors(&mut self, v: VertexId) -> &[u32] {
        (**self).neighbors(v)
    }

    fn has_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        (**self).has_edge(a, b)
    }
}

impl GraphAccess for &Graph {
    fn num_vertices(&self) -> u32 {
        Graph::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        Graph::num_edges(self)
    }

    fn degree(&self, v: VertexId) -> u32 {
        Graph::degree(self, v)
    }

    fn max_degree(&self) -> u32 {
        Graph::max_degree(self)
    }

    fn neighbors(&mut self, v: VertexId) -> &[u32] {
        Graph::neighbors(self, v)
    }

    fn has_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        Graph::has_edge(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample_all<G: GraphAccess>(mut g: G) -> (u32, u64, Vec<u32>, bool, bool) {
        let ns = g.neighbors(VertexId(1)).to_vec();
        (
            g.num_vertices(),
            g.num_pairs(),
            ns,
            g.has_edge(VertexId(0), VertexId(1)),
            g.has_edge(VertexId(0), VertexId(3)),
        )
    }

    #[test]
    fn resident_impl_matches_inherent_methods() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1)).unwrap();
        b.add_edge(VertexId(1), VertexId(2)).unwrap();
        let g = b.build();
        let (n, pairs, ns, e01, e03) = sample_all(&g);
        assert_eq!(n, 4);
        assert_eq!(pairs, 6);
        assert_eq!(ns, vec![0, 2]);
        assert!(e01);
        assert!(!e03);
    }
}
