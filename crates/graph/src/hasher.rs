//! FxHash: the fast, non-cryptographic hash used throughout the workspace.
//!
//! Edge-set membership queries sit on the sampler's hot path (`update_phi`
//! probes `y_ab` for every sampled neighbor), so SipHash's HashDoS
//! resistance is pure overhead here — inputs are our own dense integer ids.
//! This is a from-scratch implementation of the multiply-rotate scheme used
//! by `rustc` (the `rustc-hash` crate).

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply-rotate hasher.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Finalizer: hash tables index buckets with the LOW bits of the
        // hash, but a single multiply only propagates entropy upward —
        // packed edge keys `(a << 32) | b` with equal `b` would otherwise
        // share low bits and chain in the same buckets. Fold the high half
        // down and multiply once more.
        let h = self.hash;
        (h ^ (h >> 32)).wrapping_mul(SEED)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn byte_tail_handled() {
        // Lengths around the 8-byte chunk boundary.
        for len in 0..20usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let first = h.finish();
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(first, h2.finish(), "len={len}");
        }
    }

    #[test]
    fn collision_rate_on_dense_keys_is_low() {
        // Packed edge keys are the dominant workload; make sure low bits vary.
        let mut set = std::collections::HashSet::new();
        for a in 0u64..200 {
            for b in 0u64..200 {
                set.insert(hash_of(&((a << 32) | b)) & 0xFFFF);
            }
        }
        // 40k keys into 65536 buckets: expect most buckets distinct-ish.
        assert!(set.len() > 25_000, "only {} distinct low-16 hashes", set.len());
    }

    #[test]
    fn fx_map_and_set_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(7, 42);
        assert_eq!(m.get(&7), Some(&42));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
