//! Neighbor-set sampling (`V_n`) for the local `phi` update.
//!
//! For each mini-batch vertex `a`, Algorithm 1 line 5 draws a random set of
//! `n` vertices from `V`. The estimator in Eq. 5 then scales their summed
//! gradient by `N / |V_n|`. Held-out pairs must be excluded so that the
//! evaluation set never influences training.

use crate::{heldout::HeldOut, Edge, VertexId};
use mmsb_rand::{Rng, RngCore};

/// Sampler for per-vertex neighbor sets.
#[derive(Debug, Clone, Copy)]
pub struct NeighborSampler {
    /// Number of vertices `N` in the graph.
    num_vertices: u32,
    /// Target sample size `n = |V_n|`.
    sample_size: usize,
}

impl NeighborSampler {
    /// Create a sampler over a graph of `num_vertices` vertices drawing
    /// `sample_size` neighbors per call.
    ///
    /// # Panics
    /// Panics if `sample_size >= num_vertices` (the sample excludes the
    /// center vertex, so at most `N - 1` candidates exist).
    pub fn new(num_vertices: u32, sample_size: usize) -> Self {
        assert!(
            sample_size < num_vertices as usize,
            "neighbor sample size {sample_size} must be < N = {num_vertices}"
        );
        Self {
            num_vertices,
            sample_size,
        }
    }

    /// The configured `|V_n|`.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Sample a neighbor set for `center`: distinct vertices, excluding
    /// `center` itself and any pair present in `heldout`.
    ///
    /// When the exclusions leave fewer than `sample_size` candidates
    /// (possible for near-exhaustive samples on small graphs), the full
    /// remaining candidate set is returned instead — callers scale the
    /// gradient by the *actual* `|V_n|`, so a short set stays unbiased.
    pub fn sample<R: RngCore>(
        &self,
        center: VertexId,
        heldout: Option<&HeldOut>,
        rng: &mut R,
    ) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.sample_size);
        let mut seen = crate::FxHashSet::default();
        self.sample_into(center, heldout, rng, &mut out, &mut seen);
        out
    }

    /// Like [`NeighborSampler::sample`], but reusing a caller-owned output
    /// vector and dedup set — allocation-free once their capacities have
    /// warmed up. The RNG draw sequence is identical to `sample`.
    pub fn sample_into<R: RngCore>(
        &self,
        center: VertexId,
        heldout: Option<&HeldOut>,
        rng: &mut R,
        out: &mut Vec<VertexId>,
        seen: &mut crate::FxHashSet<u32>,
    ) {
        out.clear();
        seen.clear();
        seen.reserve(self.sample_size * 2);
        // Rejection sampling: for the sparse regimes we care about
        // (n << N), collisions are rare and this is O(n) expected. The
        // attempt budget guards the dense regime, where exclusions can
        // make the target unreachable.
        let max_attempts = (self.sample_size as u64 + 8) * 16;
        let mut attempts = 0u64;
        while out.len() < self.sample_size && attempts < max_attempts {
            attempts += 1;
            let b = VertexId(rng.below(self.num_vertices as u64) as u32);
            if b == center || !seen.insert(b.0) {
                continue;
            }
            if let Some(h) = heldout {
                if h.contains(Edge::new(center, b)) {
                    continue;
                }
            }
            out.push(b);
        }
        if out.len() < self.sample_size {
            // Dense fallback: enumerate what is actually available.
            for v in 0..self.num_vertices {
                if out.len() == self.sample_size {
                    break;
                }
                let b = VertexId(v);
                if b == center || seen.contains(&v) {
                    continue;
                }
                if heldout.is_some_and(|h| h.contains(Edge::new(center, b))) {
                    continue;
                }
                out.push(b);
            }
        }
    }

    /// Sample neighbor sets for a whole mini-batch of vertices.
    pub fn sample_many<R: RngCore>(
        &self,
        centers: &[VertexId],
        heldout: Option<&HeldOut>,
        rng: &mut R,
    ) -> Vec<Vec<VertexId>> {
        centers
            .iter()
            .map(|&c| self.sample(c, heldout, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::planted::{generate_planted, PlantedConfig};
    use crate::heldout::HeldOut;
    use mmsb_rand::Xoshiro256PlusPlus;

    #[test]
    fn sample_has_right_size_and_no_center() {
        let s = NeighborSampler::new(100, 10);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for v in 0..20 {
            let ns = s.sample(VertexId(v), None, &mut rng);
            assert_eq!(ns.len(), 10);
            assert!(!ns.contains(&VertexId(v)));
            let set: std::collections::HashSet<_> = ns.iter().collect();
            assert_eq!(set.len(), 10, "duplicates in neighbor set");
        }
    }

    #[test]
    fn excludes_heldout_pairs() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let g = generate_planted(
            &PlantedConfig {
                num_vertices: 60,
                num_communities: 3,
                mean_community_size: 25.0,
                memberships_per_vertex: 1.2,
                internal_degree: 10.0,
                background_degree: 2.0,
            },
            &mut rng,
        )
        .graph;
        let (_, heldout) = HeldOut::split(&g, 40, &mut rng);
        let s = NeighborSampler::new(60, 30);
        for v in 0..60 {
            let ns = s.sample(VertexId(v), Some(&heldout), &mut rng);
            for b in ns {
                assert!(
                    !heldout.contains(Edge::new(VertexId(v), b)),
                    "sampled held-out pair ({v}, {})",
                    b.0
                );
            }
        }
    }

    #[test]
    fn nearly_exhaustive_sample_still_terminates() {
        let s = NeighborSampler::new(10, 9);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let ns = s.sample(VertexId(0), None, &mut rng);
        let mut ids: Vec<u32> = ns.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "must be < N")]
    fn oversize_sample_panics() {
        NeighborSampler::new(10, 10);
    }

    #[test]
    fn sample_many_matches_centers() {
        let s = NeighborSampler::new(50, 5);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let centers = vec![VertexId(1), VertexId(2), VertexId(3)];
        let all = s.sample_many(&centers, None, &mut rng);
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|ns| ns.len() == 5));
    }

    #[test]
    fn deterministic_given_seed() {
        let s = NeighborSampler::new(1000, 32);
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(9);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(9);
        assert_eq!(
            s.sample(VertexId(5), None, &mut r1),
            s.sample(VertexId(5), None, &mut r2)
        );
    }
}
