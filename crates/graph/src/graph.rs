//! Immutable CSR graph representation.

use crate::{Edge, FxHashSet, VertexId};

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Neighbor lists are sorted, so `has_edge` is a binary search
/// (`O(log deg)`) on the *smaller*-degree endpoint and iteration is a
/// contiguous slice scan. This is the layout the paper keeps at the master
/// (13.5 GB for com-Friendster's 1.8G directed edges); scaled-down graphs
/// here use the same structure.
#[derive(Debug, Clone)]
pub struct Graph {
    /// CSR row offsets, length `N + 1`.
    offsets: Vec<u64>,
    /// Concatenated sorted neighbor lists, length `2 |E|`.
    neighbors: Vec<u32>,
    num_edges: u64,
}

impl Graph {
    /// Build from a set of packed canonical edges (see [`Edge::pack`]).
    ///
    /// Intended to be called through
    /// [`GraphBuilder::build`](crate::GraphBuilder::build), which guarantees
    /// canonical packing, no self-loops and in-range endpoints.
    pub(crate) fn from_packed_edges(num_vertices: u32, edges: FxHashSet<u64>) -> Self {
        let n = num_vertices as usize;
        let mut degree = vec![0u64; n];
        for &key in &edges {
            let e = Edge::unpack(key);
            degree[e.lo().index()] += 1;
            degree[e.hi().index()] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut neighbors = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for &key in &edges {
            let e = Edge::unpack(key);
            let (a, b) = (e.lo(), e.hi());
            neighbors[cursor[a.index()] as usize] = b.0;
            cursor[a.index()] += 1;
            neighbors[cursor[b.index()] as usize] = a.0;
            cursor[b.index()] += 1;
        }
        for i in 0..n {
            neighbors[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        Self {
            offsets,
            neighbors,
            num_edges: edges.len() as u64,
        }
    }

    /// Number of vertices `N`.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Number of vertex pairs `|V| * (|V| - 1) / 2` — the size of the full
    /// edge universe `E*` (linked and non-linked).
    #[inline]
    pub fn num_pairs(&self) -> u64 {
        let n = self.num_vertices() as u64;
        n * (n - 1) / 2
    }

    /// Degree of a vertex.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as u32
    }

    /// Sorted neighbor slice of a vertex.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[u32] {
        &self.neighbors[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Whether the undirected edge `(a, b)` exists. Self-queries return
    /// `false`.
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        if a == b {
            return false;
        }
        // Search in the shorter adjacency list.
        let (probe, target) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(probe).binary_search(&target.0).is_ok()
    }

    /// Iterate over every undirected edge exactly once (in `lo < hi` order).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.neighbors(VertexId(v))
                .iter()
                .filter(move |&&u| u > v)
                .map(move |&u| Edge::new(VertexId(v), VertexId(u)))
        })
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|v| self.degree(VertexId(v)))
            .max()
            .unwrap_or(0)
    }

    /// Mean degree `2|E| / N`.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.num_vertices() as f64
        }
    }

    /// Approximate heap footprint in bytes (CSR arrays only).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.neighbors.len() * std::mem::size_of::<u32>()
    }

    /// Extract the adjacency rows for a subset of vertices — the slice of
    /// `E` the master scatters to workers alongside a mini-batch
    /// (paper §III-A: workers never hold all of `E`).
    pub fn adjacency_subset(&self, vertices: &[VertexId]) -> Vec<(VertexId, Vec<u32>)> {
        vertices
            .iter()
            .map(|&v| (v, self.neighbors(v).to_vec()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    fn triangle_plus_isolated() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edges([
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(2)),
            (VertexId(0), VertexId(2)),
        ])
        .unwrap();
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle_plus_isolated();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_pairs(), 6);
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle_plus_isolated();
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(3)), 0);
        assert_eq!(g.neighbors(VertexId(1)), &[0, 2]);
        assert_eq!(g.neighbors(VertexId(3)), &[] as &[u32]);
    }

    #[test]
    fn has_edge_and_self_query() {
        let g = triangle_plus_isolated();
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert!(g.has_edge(VertexId(2), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle_plus_isolated();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        let set: std::collections::HashSet<u64> = edges.iter().map(|e| e.pack()).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn adjacency_subset_matches_neighbors() {
        let g = triangle_plus_isolated();
        let sub = g.adjacency_subset(&[VertexId(1), VertexId(3)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0], (VertexId(1), vec![0, 2]));
        assert_eq!(sub[1], (VertexId(3), vec![]));
    }

    #[test]
    fn memory_accounting_is_plausible() {
        let g = triangle_plus_isolated();
        // 5 offsets * 8 + 6 directed neighbors * 4.
        assert_eq!(g.memory_bytes(), 5 * 8 + 6 * 4);
    }

    /// CSR invariants: degree sum = 2|E|, neighbor lists sorted & dedup'd,
    /// has_edge agrees with the edge iterator. Checked over 64 random
    /// edge multisets.
    #[test]
    fn csr_invariants() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xC5);
        for case in 0..64 {
            let n_pairs = rng.below(200) as usize;
            let mut b = GraphBuilder::new(40);
            for _ in 0..n_pairs {
                let x = rng.below(40) as u32;
                let y = rng.below(40) as u32;
                if x != y {
                    b.add_edge(VertexId(x), VertexId(y)).unwrap();
                }
            }
            let g = b.build();
            let degree_sum: u64 = (0..40).map(|v| g.degree(VertexId(v)) as u64).sum();
            assert_eq!(degree_sum, 2 * g.num_edges(), "case {case}");
            for v in 0..40 {
                let ns = g.neighbors(VertexId(v));
                assert!(
                    ns.windows(2).all(|w| w[0] < w[1]),
                    "unsorted/dup neighbors (case {case})"
                );
                for &u in ns {
                    assert!(g.has_edge(VertexId(v), VertexId(u)), "case {case}");
                }
            }
            assert_eq!(g.edges().count() as u64, g.num_edges(), "case {case}");
        }
    }
}
