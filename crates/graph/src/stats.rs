//! Graph summary statistics (backs the Table II reproduction).

use crate::{Graph, VertexId};

/// Summary statistics of one graph, printable as a Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Dataset name.
    pub name: String,
    /// Number of vertices.
    pub vertices: u64,
    /// Number of undirected edges.
    pub edges: u64,
    /// Mean degree.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: u32,
    /// Number of isolated (degree-0) vertices.
    pub isolated: u64,
    /// CSR memory footprint in bytes.
    pub memory_bytes: usize,
}

/// Compute summary statistics for a graph.
pub fn summarize(name: &str, graph: &Graph) -> GraphSummary {
    let isolated = (0..graph.num_vertices())
        .filter(|&v| graph.degree(VertexId(v)) == 0)
        .count() as u64;
    GraphSummary {
        name: name.to_string(),
        vertices: graph.num_vertices() as u64,
        edges: graph.num_edges(),
        mean_degree: graph.mean_degree(),
        max_degree: graph.max_degree(),
        isolated,
        memory_bytes: graph.memory_bytes(),
    }
}

/// Degree histogram in power-of-two buckets: `buckets[i]` counts vertices
/// with degree in `[2^i, 2^{i+1})`; `buckets[0]` counts degree 0 and 1.
pub fn degree_histogram(graph: &Graph) -> Vec<u64> {
    let mut buckets = vec![0u64; 1];
    for v in 0..graph.num_vertices() {
        let d = graph.degree(VertexId(v));
        let bucket = if d <= 1 {
            0
        } else {
            (u32::BITS - d.leading_zeros()) as usize - 1
        };
        if bucket >= buckets.len() {
            buckets.resize(bucket + 1, 0);
        }
        buckets[bucket] += 1;
    }
    buckets
}

/// Exact local clustering coefficient of one vertex: the fraction of its
/// neighbor pairs that are themselves linked. 0 for degree < 2.
pub fn local_clustering(graph: &Graph, v: VertexId) -> f64 {
    let neighbors = graph.neighbors(v);
    let d = neighbors.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if graph.has_edge(VertexId(neighbors[i]), VertexId(neighbors[j])) {
                closed += 1;
            }
        }
    }
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// Estimate the mean local clustering coefficient by sampling `samples`
/// vertices (exact when `samples >= N`). Community-rich graphs score far
/// above Erdős–Rényi noise at equal density — a quick structural check on
/// generated stand-ins.
pub fn mean_clustering<R: mmsb_rand::RngCore>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> f64 {
    use mmsb_rand::Rng;
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let picks: Vec<u32> = if samples >= n as usize {
        (0..n).collect()
    } else {
        rng.sample_distinct(n as usize, samples)
            .into_iter()
            .map(|i| i as u32)
            .collect()
    };
    let total: f64 = picks
        .iter()
        .map(|&v| local_clustering(graph, VertexId(v)))
        .sum();
    total / picks.len() as f64
}

/// Connected components via breadth-first search. Returns the component
/// id of every vertex (ids are dense, in order of discovery) and the
/// number of components.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices() as usize;
    let mut component = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if component[start] != u32::MAX {
            continue;
        }
        component[start] = count;
        queue.push_back(start as u32);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(VertexId(v)) {
                if component[u as usize] == u32::MAX {
                    component[u as usize] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (component, count as usize)
}

impl std::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<18} {:>12} {:>14} {:>10.2} {:>10} {:>10}",
            self.name, self.vertices, self.edges, self.mean_degree, self.max_degree, self.isolated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star() -> Graph {
        let mut b = GraphBuilder::new(6);
        for i in 1..5 {
            b.add_edge(VertexId(0), VertexId(i)).unwrap();
        }
        b.build() // vertex 5 isolated
    }

    #[test]
    fn summary_counts() {
        let s = summarize("star", &star());
        assert_eq!(s.vertices, 6);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.isolated, 1);
        assert!((s.mean_degree - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&star());
        // Degrees: 4, 1, 1, 1, 1, 0 → bucket0 (0..=1): 5, bucket2 ([4,8)): 1.
        assert_eq!(h[0], 5);
        assert_eq!(h[2], 1);
        assert_eq!(h.iter().sum::<u64>(), 6);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let mut b = GraphBuilder::new(3);
        b.add_edges([
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(2)),
            (VertexId(0), VertexId(2)),
        ])
        .unwrap();
        let g = b.build();
        for v in 0..3 {
            assert_eq!(local_clustering(&g, VertexId(v)), 1.0);
        }
        let mut rng = mmsb_rand::Xoshiro256PlusPlus::seed_from_u64(1);
        assert_eq!(mean_clustering(&g, 10, &mut rng), 1.0);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = star();
        assert_eq!(local_clustering(&g, VertexId(0)), 0.0);
        assert_eq!(local_clustering(&g, VertexId(1)), 0.0); // degree 1
    }

    #[test]
    fn planted_graph_clusters_more_than_random() {
        use crate::generate::chunglu::{generate_chung_lu, ChungLuConfig};
        use crate::generate::planted::{generate_planted, PlantedConfig};
        let mut rng = mmsb_rand::Xoshiro256PlusPlus::seed_from_u64(2);
        let planted = generate_planted(
            &PlantedConfig {
                num_vertices: 600,
                num_communities: 12,
                mean_community_size: 50.0,
                memberships_per_vertex: 1.0,
                internal_degree: 12.0,
                background_degree: 0.5,
            },
            &mut rng,
        )
        .graph;
        // Near-uniform weights (large gamma) make Chung-Lu an
        // Erdos-Renyi-like null model; strong skew would itself create
        // clustered hub cores.
        let random = generate_chung_lu(
            &ChungLuConfig {
                num_vertices: 600,
                num_edges: planted.num_edges(),
                gamma: 50.0,
            },
            &mut rng,
        );
        let cp = mean_clustering(&planted, 200, &mut rng);
        let cr = mean_clustering(&random, 200, &mut rng);
        assert!(cp > 3.0 * cr, "planted {cp} vs random {cr}");
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = GraphBuilder::new(6);
        b.add_edges([
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(2)),
            (VertexId(3), VertexId(4)),
        ])
        .unwrap();
        let g = b.build(); // {0,1,2}, {3,4}, {5}
        let (component, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(component[0], component[1]);
        assert_eq!(component[1], component[2]);
        assert_eq!(component[3], component[4]);
        assert_ne!(component[0], component[3]);
        assert_ne!(component[3], component[5]);
    }

    #[test]
    fn components_of_empty_graph() {
        let g = GraphBuilder::new(4).build();
        let (component, count) = connected_components(&g);
        assert_eq!(count, 4);
        let set: std::collections::HashSet<_> = component.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn display_contains_fields() {
        let s = summarize("star", &star());
        let row = s.to_string();
        assert!(row.contains("star"));
        assert!(row.contains('6'));
        assert!(row.contains('4'));
    }
}
