//! Synthetic graph generators with planted overlapping community structure.
//!
//! The paper evaluates on SNAP social graphs that are multi-gigabyte
//! downloads with ground-truth community files. This module provides the
//! substitutes (DESIGN.md §3): generators that produce graphs *from the
//! model family the sampler assumes* (so convergence behaviour is
//! comparable) together with the ground truth needed to score recovery.

pub mod ammsb;
pub mod chunglu;
pub mod datasets;
pub mod lfr;
pub mod planted;
pub mod stream;

use crate::VertexId;

/// Ground-truth overlapping communities for a generated graph.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// `communities[k]` lists the member vertices of community `k`
    /// (sorted, deduplicated).
    pub communities: Vec<Vec<VertexId>>,
}

impl GroundTruth {
    /// Number of communities.
    pub fn num_communities(&self) -> usize {
        self.communities.len()
    }

    /// Membership list per vertex: `memberships(n)[v]` lists the community
    /// indices of vertex `v` in a graph of `n` vertices.
    pub fn memberships(&self, num_vertices: u32) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); num_vertices as usize];
        for (k, members) in self.communities.iter().enumerate() {
            for &v in members {
                out[v.index()].push(k);
            }
        }
        out
    }

    /// Mean number of communities per vertex (overlap factor).
    pub fn mean_memberships(&self, num_vertices: u32) -> f64 {
        if num_vertices == 0 {
            return 0.0;
        }
        let total: usize = self.communities.iter().map(Vec::len).sum();
        total as f64 / num_vertices as f64
    }
}

/// A generated graph together with its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedGraph {
    /// The generated graph.
    pub graph: crate::Graph,
    /// The planted community structure.
    pub ground_truth: GroundTruth,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memberships_invert_communities() {
        let gt = GroundTruth {
            communities: vec![
                vec![VertexId(0), VertexId(1)],
                vec![VertexId(1), VertexId(2)],
            ],
        };
        let m = gt.memberships(4);
        assert_eq!(m[0], vec![0]);
        assert_eq!(m[1], vec![0, 1]);
        assert_eq!(m[2], vec![1]);
        assert!(m[3].is_empty());
        assert_eq!(gt.num_communities(), 2);
        assert!((gt.mean_memberships(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ground_truth() {
        let gt = GroundTruth::default();
        assert_eq!(gt.num_communities(), 0);
        assert_eq!(gt.mean_memberships(0), 0.0);
    }
}
