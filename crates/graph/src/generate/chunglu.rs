//! Chung–Lu power-law background generator.
//!
//! Social graphs have heavy-tailed degree distributions; the planted
//! generator's Erdős–Rényi noise does not. This generator draws edges with
//! endpoint probabilities proportional to prescribed weights `w_i ~ i^{-1/(gamma-1)}`
//! (a Zipf ranking), producing an expected power-law degree sequence with
//! exponent `gamma`. Used by the dataset stand-ins to add realistic skew.

use crate::{Graph, GraphBuilder, VertexId};
use mmsb_rand::{Rng, RngCore};

/// Parameters for [`generate_chung_lu`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChungLuConfig {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Target number of edges.
    pub num_edges: u64,
    /// Power-law exponent `gamma > 1` (typical social graphs: 2–3).
    pub gamma: f64,
}

/// Alias sampler over vertex weights (Walker's alias method) so each
/// endpoint draw is O(1).
#[derive(Debug)]
struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive mass");
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are numerically 1.0.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    fn sample<R: RngCore>(&self, rng: &mut R) -> u32 {
        let i = rng.below_usize(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

/// Generate a Chung–Lu style power-law graph.
///
/// # Panics
/// Panics if `gamma <= 1` or the graph is too dense to realize the
/// requested edge count.
pub fn generate_chung_lu<R: RngCore>(config: &ChungLuConfig, rng: &mut R) -> Graph {
    assert!(config.gamma > 1.0, "gamma must exceed 1");
    let n = config.num_vertices;
    assert!(n >= 2, "need at least 2 vertices");
    let max_edges = (n as u64) * (n as u64 - 1) / 2;
    assert!(
        config.num_edges <= max_edges / 2,
        "requested {} edges but only {} pairs exist; too dense for rejection sampling",
        config.num_edges,
        max_edges
    );

    let exponent = -1.0 / (config.gamma - 1.0);
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let table = AliasTable::new(&weights);

    let mut builder = GraphBuilder::with_edge_capacity(n, config.num_edges as usize);
    let mut added = 0u64;
    let max_attempts = config.num_edges.saturating_mul(50) + 1000;
    let mut attempts = 0u64;
    while added < config.num_edges && attempts < max_attempts {
        attempts += 1;
        let a = table.sample(rng);
        let b = table.sample(rng);
        if a == b {
            continue;
        }
        if builder
            .add_edge(VertexId(a), VertexId(b))
            .unwrap_or(false)
        {
            added += 1;
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::Xoshiro256PlusPlus;

    #[test]
    fn alias_table_matches_weights() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let weights = [1.0, 2.0, 7.0];
        let t = AliasTable::new(&weights);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / total;
            let got = c as f64 / n as f64;
            assert!((got - expected).abs() < 0.01, "i={i} got={got}");
        }
    }

    #[test]
    fn reaches_target_edge_count() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let g = generate_chung_lu(
            &ChungLuConfig {
                num_vertices: 2000,
                num_edges: 10_000,
                gamma: 2.5,
            },
            &mut rng,
        );
        assert_eq!(g.num_edges(), 10_000);
        assert_eq!(g.num_vertices(), 2000);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let g = generate_chung_lu(
            &ChungLuConfig {
                num_vertices: 5000,
                num_edges: 25_000,
                gamma: 2.2,
            },
            &mut rng,
        );
        // Max degree should dwarf the mean for a heavy-tailed distribution.
        let mean = g.mean_degree();
        let max = g.max_degree() as f64;
        assert!(max > 10.0 * mean, "max {max} vs mean {mean}: not skewed");
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        generate_chung_lu(
            &ChungLuConfig {
                num_vertices: 10,
                num_edges: 5,
                gamma: 1.0,
            },
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn rejects_overdense_request() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        generate_chung_lu(
            &ChungLuConfig {
                num_vertices: 10,
                num_edges: 40,
                gamma: 2.5,
            },
            &mut rng,
        );
    }
}
