//! LFR-style benchmark generator (Lancichinetti–Fortunato–Radicchi).
//!
//! The standard benchmark for overlapping community detection: power-law
//! degree distribution, power-law community sizes, and a mixing parameter
//! `mu` giving the fraction of each vertex's edges that leave its own
//! communities. This implementation follows the construction of the 2009
//! benchmark with the usual simplifications (stub matching with rejection
//! instead of full edge rewiring):
//!
//! 1. degrees `~ PowerLaw(tau1)` truncated to `[min_degree, max_degree]`,
//! 2. community sizes `~ PowerLaw(tau2)` truncated to
//!    `[min_community, max_community]`, drawn until they can host all
//!    memberships,
//! 3. each vertex receives `memberships` community slots (overlap),
//!    assigned round-robin over a shuffled slot pool,
//! 4. each vertex splits `(1 - mu) * degree` internal stubs evenly over
//!    its communities; internal stubs are matched within each community,
//! 5. the remaining `mu * degree` external stubs are matched globally,
//!    rejecting intra-community pairs when possible.

use super::{GeneratedGraph, GroundTruth};
use crate::{GraphBuilder, VertexId};
use mmsb_rand::{Rng, RngCore};

/// Parameters of the LFR-style benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct LfrConfig {
    /// Number of vertices.
    pub num_vertices: u32,
    /// Degree-distribution exponent `tau1` (> 1; typical 2–3).
    pub tau1: f64,
    /// Community-size exponent `tau2` (> 1; typical 1–2).
    pub tau2: f64,
    /// Mixing parameter `mu` in `[0, 1)`: fraction of external edges.
    pub mu: f64,
    /// Minimum degree.
    pub min_degree: u32,
    /// Maximum degree.
    pub max_degree: u32,
    /// Minimum community size.
    pub min_community: u32,
    /// Maximum community size.
    pub max_community: u32,
    /// Memberships per vertex (1 = disjoint communities; 2+ = overlap).
    pub memberships: u32,
}

impl Default for LfrConfig {
    fn default() -> Self {
        Self {
            num_vertices: 1000,
            tau1: 2.5,
            tau2: 1.5,
            mu: 0.2,
            min_degree: 6,
            max_degree: 50,
            min_community: 20,
            max_community: 100,
            memberships: 1,
        }
    }
}

impl LfrConfig {
    fn validate(&self) {
        assert!(self.num_vertices >= 10, "need at least 10 vertices");
        assert!(self.tau1 > 1.0 && self.tau2 > 1.0, "exponents must exceed 1");
        assert!((0.0..1.0).contains(&self.mu), "mu must lie in [0, 1)");
        assert!(
            self.min_degree >= 1 && self.min_degree <= self.max_degree,
            "bad degree bounds"
        );
        assert!(
            self.min_community >= 2 && self.min_community <= self.max_community,
            "bad community-size bounds"
        );
        assert!(self.memberships >= 1, "memberships must be at least 1");
        assert!(
            self.max_community <= self.num_vertices,
            "communities cannot exceed the graph"
        );
    }
}

/// Draw from a truncated power law with exponent `tau` over
/// `[lo, hi]` via inverse-CDF sampling of the continuous approximation.
fn power_law<R: RngCore>(lo: u32, hi: u32, tau: f64, rng: &mut R) -> u32 {
    if lo == hi {
        return lo;
    }
    let (lo_f, hi_f) = (lo as f64, hi as f64 + 1.0);
    let a = 1.0 - tau;
    let u = rng.next_f64_open();
    let x = (lo_f.powf(a) + u * (hi_f.powf(a) - lo_f.powf(a))).powf(1.0 / a);
    (x.floor() as u32).clamp(lo, hi)
}

/// Generate an LFR-style benchmark graph.
///
/// # Panics
/// Panics on invalid parameters (see [`LfrConfig`]).
pub fn generate_lfr<R: RngCore>(config: &LfrConfig, rng: &mut R) -> GeneratedGraph {
    config.validate();
    let n = config.num_vertices as usize;

    // 1. Degrees.
    let degrees: Vec<u32> = (0..n)
        .map(|_| power_law(config.min_degree, config.max_degree, config.tau1, rng))
        .collect();

    // 2. Community sizes covering all membership slots.
    let total_slots = n as u64 * config.memberships as u64;
    let mut sizes: Vec<u32> = Vec::new();
    let mut covered = 0u64;
    while covered < total_slots {
        let s = power_law(config.min_community, config.max_community, config.tau2, rng);
        sizes.push(s);
        covered += s as u64;
    }
    // Trim the overshoot from the last community (keeping it >= min).
    let overshoot = (covered - total_slots) as u32;
    if let Some(last) = sizes.last_mut() {
        *last = (*last).saturating_sub(overshoot).max(config.min_community);
    }

    // 3. Assign membership slots: shuffle all (vertex, slot) entries and
    //    deal them into communities; a vertex never joins one community
    //    twice (slots that would collide are re-dealt greedily).
    let mut slots: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, config.memberships as usize))
        .collect();
    rng.shuffle(&mut slots);
    let mut communities: Vec<Vec<VertexId>> = sizes.iter().map(|_| Vec::new()).collect();
    let mut member_of: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut cursor = 0usize;
    let mut leftovers: Vec<u32> = Vec::new();
    for (c, &size) in sizes.iter().enumerate() {
        while communities[c].len() < size as usize && cursor < slots.len() {
            let v = slots[cursor];
            cursor += 1;
            if member_of[v as usize].contains(&(c as u32)) {
                leftovers.push(v);
            } else {
                communities[c].push(VertexId(v));
                member_of[v as usize].push(c as u32);
            }
        }
    }
    // Deal leftovers into the first communities that can take them.
    'outer: for v in leftovers {
        for (c, members) in communities.iter_mut().enumerate() {
            if !member_of[v as usize].contains(&(c as u32)) {
                members.push(VertexId(v));
                member_of[v as usize].push(c as u32);
                continue 'outer;
            }
        }
    }
    // Guarantee every vertex has at least one community (possible misses
    // when memberships slots collided repeatedly).
    for v in 0..n as u32 {
        if member_of[v as usize].is_empty() {
            let c = rng.below_usize(communities.len());
            communities[c].push(VertexId(v));
            member_of[v as usize].push(c as u32);
        }
    }

    // 4. Internal stubs per (vertex, community).
    let mut builder = GraphBuilder::new(config.num_vertices);
    for (c, members) in communities.iter().enumerate() {
        if members.len() < 2 {
            continue;
        }
        // Each member contributes its internal degree share for this
        // community as stubs.
        let mut stubs: Vec<u32> = Vec::new();
        for &v in members {
            let internal = ((1.0 - config.mu) * degrees[v.index()] as f64).round() as u32;
            let share = (internal / member_of[v.index()].len() as u32).max(1);
            // Cap by community size - 1 (simple graph).
            let share = share.min(members.len() as u32 - 1);
            stubs.extend(std::iter::repeat_n(v.0, share as usize));
        }
        rng.shuffle(&mut stubs);
        // Pair stubs; rejections (self-pairs, duplicates) are dropped —
        // the benchmark tolerates small degree deviations.
        let _ = c;
        for pair in stubs.chunks_exact(2) {
            if pair[0] != pair[1] {
                let _ = builder.add_edge(VertexId(pair[0]), VertexId(pair[1]));
            }
        }
    }

    // 5. External stubs matched globally with intra-community rejection.
    let mut ext_stubs: Vec<u32> = Vec::new();
    for (v, &d) in degrees.iter().enumerate() {
        let external = (config.mu * d as f64).round() as u32;
        ext_stubs.extend(std::iter::repeat_n(v as u32, external as usize));
    }
    rng.shuffle(&mut ext_stubs);
    let same_community = |a: u32, b: u32, member_of: &Vec<Vec<u32>>| {
        member_of[a as usize]
            .iter()
            .any(|c| member_of[b as usize].contains(c))
    };
    let mut i = 0;
    while i + 1 < ext_stubs.len() {
        let (a, b) = (ext_stubs[i], ext_stubs[i + 1]);
        if a != b && !same_community(a, b, &member_of) {
            let _ = builder.add_edge(VertexId(a), VertexId(b));
            i += 2;
        } else {
            // Re-shuffle the tail once in a while to break bad runs.
            let j = i + 2 + rng.below_usize((ext_stubs.len() - i - 1).max(1));
            if j < ext_stubs.len() {
                ext_stubs.swap(i + 1, j);
            } else {
                i += 2; // give up on this pair
            }
        }
    }

    GeneratedGraph {
        graph: builder.build(),
        ground_truth: GroundTruth { communities },
    }
}

/// Measure the empirical mixing parameter of a graph against a ground
/// truth: the fraction of edges whose endpoints share no community.
pub fn empirical_mixing(g: &GeneratedGraph) -> f64 {
    let member_of = g.ground_truth.memberships(g.graph.num_vertices());
    let mut external = 0u64;
    let mut total = 0u64;
    for e in g.graph.edges() {
        total += 1;
        let a = &member_of[e.lo().index()];
        let b = &member_of[e.hi().index()];
        if !a.iter().any(|c| b.contains(c)) {
            external += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        external as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::Xoshiro256PlusPlus;

    #[test]
    fn power_law_respects_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..5000 {
            let x = power_law(5, 50, 2.5, &mut rng);
            assert!((5..=50).contains(&x));
        }
        assert_eq!(power_law(7, 7, 2.0, &mut rng), 7);
    }

    #[test]
    fn power_law_is_skewed_toward_small_values() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let draws: Vec<u32> = (0..20_000).map(|_| power_law(5, 500, 2.5, &mut rng)).collect();
        let below20 = draws.iter().filter(|&&x| x < 20).count();
        assert!(below20 > 14_000, "only {below20} draws below 20");
    }

    #[test]
    fn generates_plausible_graph() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let cfg = LfrConfig::default();
        let g = generate_lfr(&cfg, &mut rng);
        assert_eq!(g.graph.num_vertices(), 1000);
        assert!(g.graph.num_edges() > 1500, "edges {}", g.graph.num_edges());
        // Degrees respect the cap approximately (stub rejection can only
        // lower them).
        assert!(g.graph.max_degree() <= cfg.max_degree + cfg.memberships);
        // Community sizes within bounds (last one may be trimmed).
        for members in &g.ground_truth.communities {
            assert!(members.len() as u32 <= cfg.max_community + cfg.memberships);
        }
    }

    #[test]
    fn every_vertex_has_a_community() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let g = generate_lfr(&LfrConfig::default(), &mut rng);
        let memberships = g.ground_truth.memberships(1000);
        assert!(memberships.iter().all(|m| !m.is_empty()));
    }

    #[test]
    fn mixing_tracks_mu() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        for mu in [0.1, 0.3] {
            let cfg = LfrConfig {
                mu,
                ..LfrConfig::default()
            };
            let g = generate_lfr(&cfg, &mut rng);
            let measured = empirical_mixing(&g);
            assert!(
                (measured - mu).abs() < 0.12,
                "mu = {mu}, measured {measured}"
            );
        }
    }

    #[test]
    fn overlap_produces_multi_memberships() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let cfg = LfrConfig {
            memberships: 2,
            ..LfrConfig::default()
        };
        let g = generate_lfr(&cfg, &mut rng);
        let memberships = g.ground_truth.memberships(1000);
        let multi = memberships.iter().filter(|m| m.len() >= 2).count();
        assert!(multi > 700, "only {multi} overlapping vertices");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = LfrConfig::default();
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(7);
        let a = generate_lfr(&cfg, &mut r1);
        let b = generate_lfr(&cfg, &mut r2);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    #[should_panic(expected = "mu must lie")]
    fn rejects_bad_mu() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let cfg = LfrConfig {
            mu: 1.0,
            ..LfrConfig::default()
        };
        generate_lfr(&cfg, &mut rng);
    }
}
