//! Synthetic stand-ins for the six SNAP datasets of Table II.
//!
//! Each stand-in preserves, at a documented scale factor, the aspects of
//! the original that matter to the sampler: vertex/edge ratio (mean
//! degree), the presence of many overlapping ground-truth communities, and
//! heavy-tailed density variation. The absolute sizes are reduced so that
//! every experiment in the evaluation runs on one machine (DESIGN.md §3).

use super::planted::{generate_planted, PlantedConfig};
use super::GeneratedGraph;
use mmsb_rand::Xoshiro256PlusPlus;

/// Description of one dataset stand-in, including the numbers of the SNAP
/// original it substitutes for (Table II of the paper).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Stand-in name (`syn-*`).
    pub name: &'static str,
    /// SNAP original's name.
    pub original_name: &'static str,
    /// Vertices in the SNAP original.
    pub original_vertices: u64,
    /// Edges in the SNAP original.
    pub original_edges: u64,
    /// Ground-truth communities in the SNAP original.
    pub original_communities: u64,
    /// Linear scale factor applied to the vertex count.
    pub scale_divisor: u64,
    /// Generator parameters for the stand-in.
    pub config: PlantedConfig,
    /// Seed used by [`DatasetSpec::generate`].
    pub seed: u64,
    /// One-line description (mirrors Table II's description column).
    pub description: &'static str,
}

impl DatasetSpec {
    /// Generate the stand-in graph deterministically from its seed.
    pub fn generate(&self) -> GeneratedGraph {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed);
        generate_planted(&self.config, &mut rng)
    }
}

fn planted(n: u32, mean_size: f64, mean_degree: f64, overlap: f64) -> PlantedConfig {
    // 80% of degree from community structure, 20% background noise, the
    // regime where overlapping structure dominates but is not trivial.
    // Community sizes follow real SNAP ground truth (tens of members), so
    // the intra-community density — the signal the sampler learns from —
    // stays strong.
    let communities = ((n as f64 * overlap / mean_size).round() as usize).max(1);
    let internal = 0.8 * mean_degree / overlap;
    PlantedConfig {
        num_vertices: n,
        num_communities: communities,
        mean_community_size: mean_size,
        memberships_per_vertex: overlap,
        internal_degree: internal,
        background_degree: 0.2 * mean_degree,
    }
}

/// The six stand-ins corresponding to Table II, ordered as in the paper.
pub fn standins() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "syn-livejournal",
            original_name: "com-LiveJournal",
            original_vertices: 3_997_962,
            original_edges: 34_681_189,
            original_communities: 287_512,
            scale_divisor: 100,
            config: planted(39_980, 50.0, 17.3, 1.3),
            seed: 0x11A1,
            description: "Online blogging social network",
        },
        DatasetSpec {
            name: "syn-friendster",
            original_name: "com-Friendster",
            original_vertices: 65_608_366,
            original_edges: 1_806_067_135,
            original_communities: 957_154,
            scale_divisor: 1000,
            config: planted(65_608, 60.0, 55.0, 1.3),
            seed: 0x11A2,
            description: "Online gaming social network",
        },
        DatasetSpec {
            name: "syn-orkut",
            original_name: "com-Orkut",
            original_vertices: 3_072_441,
            original_edges: 117_185_083,
            original_communities: 6_288_363,
            scale_divisor: 100,
            config: planted(30_724, 60.0, 76.3, 1.5),
            seed: 0x11A3,
            description: "Online social network",
        },
        DatasetSpec {
            name: "syn-youtube",
            original_name: "com-Youtube",
            original_vertices: 1_134_890,
            original_edges: 2_987_624,
            original_communities: 8_385,
            scale_divisor: 100,
            config: planted(11_348, 40.0, 5.3, 1.2),
            seed: 0x11A4,
            description: "Video-sharing social network",
        },
        DatasetSpec {
            name: "syn-dblp",
            original_name: "com-DBLP",
            original_vertices: 317_080,
            original_edges: 1_049_866,
            original_communities: 13_477,
            scale_divisor: 10,
            config: planted(31_708, 30.0, 6.6, 1.4),
            seed: 0x11A5,
            description: "Computer science bibliography collaboration network",
        },
        DatasetSpec {
            name: "syn-amazon",
            original_name: "com-Amazon",
            original_vertices: 334_863,
            original_edges: 925_872,
            original_communities: 75_149,
            scale_divisor: 10,
            config: planted(33_486, 35.0, 5.5, 1.2),
            seed: 0x11A6,
            description: "Product co-purchasing network",
        },
    ]
}

/// Look up a stand-in by its `syn-*` name (or the SNAP original's name).
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    standins()
        .into_iter()
        .find(|s| s.name == name || s.original_name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_standins_matching_table_ii() {
        let all = standins();
        assert_eq!(all.len(), 6);
        let friendster = &all[1];
        assert_eq!(friendster.original_vertices, 65_608_366);
        assert_eq!(friendster.original_edges, 1_806_067_135);
        // Scale sanity: stand-in N ≈ original / divisor.
        for s in &all {
            let expected = s.original_vertices / s.scale_divisor;
            let got = s.config.num_vertices as u64;
            let rel = (got as f64 - expected as f64).abs() / expected as f64;
            assert!(rel < 0.02, "{}: N {got} vs scaled {expected}", s.name);
        }
    }

    #[test]
    fn by_name_finds_both_names() {
        assert!(by_name("syn-dblp").is_some());
        assert!(by_name("com-DBLP").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn smallest_standin_generates_with_plausible_degree() {
        let spec = by_name("syn-youtube").unwrap();
        let g = spec.generate();
        assert_eq!(g.graph.num_vertices(), spec.config.num_vertices);
        let target = 5.3;
        let got = g.graph.mean_degree();
        assert!(
            (got - target).abs() / target < 0.35,
            "mean degree {got} vs target {target}"
        );
        assert_eq!(g.ground_truth.num_communities(), spec.config.num_communities);
        assert!(g.ground_truth.num_communities() > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = by_name("syn-youtube").unwrap();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }
}
