//! Streaming community-structured edge generator for out-of-core scale.
//!
//! The resident generators in this module's siblings materialize a
//! [`crate::Graph`], which caps them at RAM scale. This generator emits
//! edges through a callback with **O(1)** state — no adjacency, no
//! membership tables — so it can feed the out-of-core streaming builder
//! with 100M+ edges in bounded memory (DESIGN.md §15).
//!
//! The model is deliberately simple: vertices are partitioned into
//! `num_communities` *contiguous* equal-size blocks, and each emitted
//! edge is intra-community with probability `intra_fraction` (uniform
//! pair inside a uniformly chosen block) or a uniform background pair
//! otherwise. Contiguous community ids are the point: a vertex's intra
//! neighbors are numerically nearby, so the sorted neighbor lists the
//! builder writes have small gaps and the delta-varint encoding lands
//! well under the 4.8 bytes/edge acceptance bound.
//!
//! Emitted pairs may repeat — the streaming builder deduplicates at
//! merge — so the realized edge count falls slightly below
//! `target_edges` (a ~`E/P` birthday-collision shortfall for `P`
//! possible pairs; negligible at bench scale).

use mmsb_rand::Rng;

/// Parameters for [`for_each_edge`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Number of vertices `N` (ids `0..N`, community-contiguous).
    pub num_vertices: u32,
    /// Number of contiguous community blocks (`1..=N`).
    pub num_communities: u32,
    /// Undirected pairs to emit (before builder-side deduplication).
    pub target_edges: u64,
    /// Probability an emitted pair is drawn inside one community block.
    pub intra_fraction: f64,
    /// RNG seed; the emitted sequence is a pure function of the config.
    pub seed: u64,
}

impl StreamConfig {
    fn validate(&self) {
        assert!(self.num_vertices >= 2, "need at least 2 vertices");
        assert!(
            self.num_communities >= 1 && self.num_communities <= self.num_vertices,
            "num_communities must be in 1..=num_vertices"
        );
        assert!(
            (0.0..=1.0).contains(&self.intra_fraction),
            "intra_fraction must be a probability"
        );
    }

    /// Base block size; the first `num_vertices % num_communities`
    /// communities hold one extra vertex.
    fn base_size(&self) -> u32 {
        self.num_vertices / self.num_communities
    }

    fn remainder(&self) -> u32 {
        self.num_vertices % self.num_communities
    }

    /// Half-open vertex range `[start, end)` of community `k`.
    ///
    /// # Panics
    /// Panics if `k >= num_communities` or the config is invalid.
    pub fn community_range(&self, k: u32) -> (u32, u32) {
        self.validate();
        assert!(k < self.num_communities, "community {k} out of range");
        let base = self.base_size();
        let rem = self.remainder();
        let start = k * base + k.min(rem);
        let size = base + u32::from(k < rem);
        (start, start + size)
    }

    /// Community block owning vertex `v` (inverse of
    /// [`StreamConfig::community_range`]).
    ///
    /// # Panics
    /// Panics if `v >= num_vertices` or the config is invalid.
    pub fn community_of(&self, v: u32) -> u32 {
        self.validate();
        assert!(v < self.num_vertices, "vertex {v} out of range");
        let base = self.base_size();
        let rem = self.remainder();
        let boundary = rem * (base + 1);
        if v < boundary {
            v / (base + 1)
        } else {
            rem + (v - boundary) / base.max(1)
        }
    }
}

/// Emit exactly `config.target_edges` undirected pairs `(a, b)` with
/// `a != b`, deterministically for a given config.
///
/// Pairs are unordered and may repeat; feed them to
/// `mmsb_ooc::StreamingBuilder`, which sorts and deduplicates. A
/// community block too small for a distinct intra pair (size < 2, only
/// possible when `num_communities` approaches `num_vertices`) falls back
/// to a background pair so the edge count is always met.
///
/// # Panics
/// Panics on an invalid config (see [`StreamConfig`] field docs).
pub fn for_each_edge<F: FnMut(u32, u32)>(config: &StreamConfig, mut f: F) {
    config.validate();
    let mut rng = mmsb_rand::Xoshiro256PlusPlus::seed_from_u64(config.seed);
    let n = config.num_vertices as u64;
    for _ in 0..config.target_edges {
        if rng.next_f64() < config.intra_fraction {
            let k = rng.below(config.num_communities as u64) as u32;
            let (start, end) = community_range_unchecked(config, k);
            let size = (end - start) as u64;
            if size >= 2 {
                let a = start + rng.below(size) as u32;
                let b = loop {
                    let b = start + rng.below(size) as u32;
                    if b != a {
                        break b;
                    }
                };
                f(a, b);
                continue;
            }
            // Degenerate singleton block: fall through to a background pair.
        }
        let a = rng.below(n) as u32;
        let b = loop {
            let b = rng.below(n) as u32;
            if b != a {
                break b;
            }
        };
        f(a, b);
    }
}

/// [`StreamConfig::community_range`] without the per-call validation
/// (the hot emit loop has already validated once).
#[inline]
fn community_range_unchecked(config: &StreamConfig, k: u32) -> (u32, u32) {
    let base = config.base_size();
    let rem = config.remainder();
    let start = k * base + k.min(rem);
    let size = base + u32::from(k < rem);
    (start, start + size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StreamConfig {
        StreamConfig {
            num_vertices: 1000,
            num_communities: 10,
            target_edges: 20_000,
            intra_fraction: 0.9,
            seed: 7,
        }
    }

    #[test]
    fn emits_exact_count_of_valid_pairs() {
        let cfg = small();
        let mut count = 0u64;
        for_each_edge(&cfg, |a, b| {
            assert!(a < cfg.num_vertices && b < cfg.num_vertices);
            assert_ne!(a, b, "self-loop emitted");
            count += 1;
        });
        assert_eq!(count, cfg.target_edges);
    }

    #[test]
    fn intra_fraction_is_respected() {
        let cfg = small();
        let mut intra = 0u64;
        for_each_edge(&cfg, |a, b| {
            if cfg.community_of(a) == cfg.community_of(b) {
                intra += 1;
            }
        });
        let frac = intra as f64 / cfg.target_edges as f64;
        // Background pairs land in one block ~1/K of the time, so the
        // expected fraction is slightly above intra_fraction.
        let expected = cfg.intra_fraction
            + (1.0 - cfg.intra_fraction) / cfg.num_communities as f64;
        assert!(
            (frac - expected).abs() < 0.02,
            "intra fraction {frac} far from {expected}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small();
        let collect = |cfg: &StreamConfig| {
            let mut v = Vec::new();
            for_each_edge(cfg, |a, b| v.push((a, b)));
            v
        };
        assert_eq!(collect(&cfg), collect(&cfg));
        let other = StreamConfig { seed: 8, ..cfg };
        assert_ne!(collect(&cfg), collect(&other));
    }

    #[test]
    fn community_ranges_partition_the_vertices() {
        // Non-divisible N/K: the first `rem` blocks get the extra vertex.
        let cfg = StreamConfig {
            num_vertices: 103,
            num_communities: 10,
            target_edges: 0,
            intra_fraction: 0.5,
            seed: 0,
        };
        let mut next = 0u32;
        for k in 0..cfg.num_communities {
            let (start, end) = cfg.community_range(k);
            assert_eq!(start, next, "gap before community {k}");
            assert!(end > start);
            for v in start..end {
                assert_eq!(cfg.community_of(v), k);
            }
            next = end;
        }
        assert_eq!(next, cfg.num_vertices);
    }

    #[test]
    fn singleton_blocks_fall_back_to_background() {
        // K == N forces every intra draw into the fallback path.
        let cfg = StreamConfig {
            num_vertices: 8,
            num_communities: 8,
            target_edges: 100,
            intra_fraction: 1.0,
            seed: 3,
        };
        let mut count = 0;
        for_each_edge(&cfg, |a, b| {
            assert_ne!(a, b);
            count += 1;
        });
        assert_eq!(count, 100);
    }

    #[test]
    #[should_panic(expected = "intra_fraction")]
    fn rejects_bad_fraction() {
        let cfg = StreamConfig {
            intra_fraction: 1.5,
            ..small()
        };
        for_each_edge(&cfg, |_, _| {});
    }
}
