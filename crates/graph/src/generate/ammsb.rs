//! Exact a-MMSB generative sampler (small graphs).
//!
//! Samples a graph from the *exact* generative process of Section II-A of
//! the paper: `beta_k ~ Beta(eta)`, `pi_a ~ Dirichlet(alpha)`, and for every
//! pair `(a, b)` community indicators `z_ab ~ pi_a`, `z_ba ~ pi_b`, then
//! `y_ab ~ Bernoulli(beta_k)` if `z_ab = z_ba = k` else `Bernoulli(delta)`.
//!
//! Enumerating all `N(N-1)/2` pairs costs `O(N^2)`, so this generator is
//! meant for validation-scale graphs (N up to a few thousand): it gives the
//! sampler data that *exactly* matches its modeling assumptions, which the
//! integration tests use to check posterior recovery.

use super::{GeneratedGraph, GroundTruth};
use crate::{GraphBuilder, VertexId};
use mmsb_rand::dist::{Beta, Dirichlet, Sample};
use mmsb_rand::{Rng, RngCore};

/// Parameters of the exact a-MMSB generative process.
#[derive(Debug, Clone, PartialEq)]
pub struct AmmsbConfig {
    /// Number of vertices `N`.
    pub num_vertices: u32,
    /// Number of communities `K`.
    pub num_communities: usize,
    /// Dirichlet concentration `alpha` for memberships.
    pub alpha: f64,
    /// Beta shape `eta` for community strengths.
    pub eta: f64,
    /// Inter-community link probability `delta`.
    pub delta: f64,
}

/// The sampled latent state alongside the graph, for tests that want to
/// compare recovered parameters against the truth.
#[derive(Debug, Clone)]
pub struct AmmsbSample {
    /// The generated graph and hard ground-truth communities (vertex `a`
    /// belongs to community `k` iff `pi_a[k] > 1/K`).
    pub generated: GeneratedGraph,
    /// True mixed memberships, row-major `N x K`.
    pub pi: Vec<Vec<f64>>,
    /// True community strengths, length `K`.
    pub beta: Vec<f64>,
}

/// Draw a categorical index from a probability vector.
fn categorical<R: RngCore>(probs: &[f64], rng: &mut R) -> usize {
    let mut u = rng.next_f64() * probs.iter().sum::<f64>();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

/// Sample a graph from the exact a-MMSB generative process.
///
/// # Panics
/// Panics on invalid parameters (`delta` outside `(0,1)`, zero dims) and
/// refuses `N > 20_000` (quadratic cost).
pub fn generate_ammsb<R: RngCore>(config: &AmmsbConfig, rng: &mut R) -> AmmsbSample {
    assert!(config.num_vertices >= 2, "need at least 2 vertices");
    assert!(
        config.num_vertices <= 20_000,
        "exact a-MMSB generation is O(N^2); use the planted generator for N > 20k"
    );
    assert!(config.num_communities >= 1, "need at least 1 community");
    assert!(
        config.delta > 0.0 && config.delta < 1.0,
        "delta must lie in (0, 1)"
    );

    let n = config.num_vertices as usize;
    let k = config.num_communities;
    let beta_dist = Beta::symmetric(config.eta).expect("validated eta");
    let dir = Dirichlet::symmetric(config.alpha, k).expect("validated alpha");

    let beta: Vec<f64> = (0..k).map(|_| beta_dist.sample(rng)).collect();
    let pi: Vec<Vec<f64>> = (0..n).map(|_| dir.sample_simplex(rng)).collect();

    let mut builder = GraphBuilder::new(config.num_vertices);
    for a in 0..n {
        for b in (a + 1)..n {
            let za = categorical(&pi[a], rng);
            let zb = categorical(&pi[b], rng);
            let r = if za == zb { beta[za] } else { config.delta };
            if rng.bernoulli(r) {
                builder
                    .add_edge(VertexId(a as u32), VertexId(b as u32))
                    .expect("valid edge");
            }
        }
    }

    // Hard ground truth: thresholded memberships.
    let threshold = 1.0 / k as f64;
    let mut communities = vec![Vec::new(); k];
    for (a, pa) in pi.iter().enumerate() {
        for (c, &p) in pa.iter().enumerate() {
            if p > threshold {
                communities[c].push(VertexId(a as u32));
            }
        }
    }

    AmmsbSample {
        generated: GeneratedGraph {
            graph: builder.build(),
            ground_truth: GroundTruth { communities },
        },
        pi,
        beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::Xoshiro256PlusPlus;

    fn config() -> AmmsbConfig {
        AmmsbConfig {
            num_vertices: 150,
            num_communities: 4,
            alpha: 0.1,
            eta: 1.0,
            delta: 0.005,
        }
    }

    #[test]
    fn categorical_respects_mass() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let probs = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(categorical(&probs, &mut rng), 2);
        }
        let probs = [0.5, 0.5];
        let ones = (0..10_000)
            .filter(|_| categorical(&probs, &mut rng) == 1)
            .count();
        assert!((4_500..5_500).contains(&ones));
    }

    #[test]
    fn generates_consistent_shapes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let s = generate_ammsb(&config(), &mut rng);
        assert_eq!(s.pi.len(), 150);
        assert!(s.pi.iter().all(|row| row.len() == 4));
        assert_eq!(s.beta.len(), 4);
        assert!(s.beta.iter().all(|&b| (0.0..=1.0).contains(&b)));
        assert_eq!(s.generated.graph.num_vertices(), 150);
    }

    #[test]
    fn pi_rows_are_simplex_points() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let s = generate_ammsb(&config(), &mut rng);
        for row in &s.pi {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_community_vertices_link_more() {
        // With concentrated memberships (small alpha), intra-community
        // density should exceed delta substantially.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let cfg = AmmsbConfig {
            num_vertices: 300,
            num_communities: 3,
            alpha: 0.05,
            eta: 5.0, // pushes beta towards ~0.5
            delta: 0.002,
        };
        let s = generate_ammsb(&cfg, &mut rng);
        let density = s.generated.graph.num_edges() as f64 / s.generated.graph.num_pairs() as f64;
        assert!(density > cfg.delta, "density {density} <= delta");
    }

    #[test]
    #[should_panic(expected = "O(N^2)")]
    fn refuses_huge_n() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut cfg = config();
        cfg.num_vertices = 50_000;
        generate_ammsb(&cfg, &mut rng);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mut cfg = config();
        cfg.delta = 0.0;
        generate_ammsb(&cfg, &mut rng);
    }
}
