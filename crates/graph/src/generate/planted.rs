//! Planted overlapping-community generator.
//!
//! The workhorse stand-in for the SNAP datasets: vertices join a random
//! number of communities; each community internally wires its members as an
//! Erdős–Rényi subgraph with an edge probability chosen to hit a target
//! internal degree; a sparse background (the `delta` of the a-MMSB model)
//! adds inter-community noise. Generation is `O(|E|)` expected via
//! geometric edge skipping, so million-edge graphs take milliseconds.

use super::{GeneratedGraph, GroundTruth};
use crate::{GraphBuilder, VertexId};
use mmsb_rand::{Rng, RngCore};

/// Parameters for [`generate_planted`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedConfig {
    /// Number of vertices `N`.
    pub num_vertices: u32,
    /// Number of planted communities `K`.
    pub num_communities: usize,
    /// Mean community size (sizes are drawn uniformly in `[0.5, 1.5] x`
    /// this value).
    pub mean_community_size: f64,
    /// Mean memberships per vertex; the overlap factor. Values above 1.0
    /// create overlapping structure. Implemented by scaling community
    /// sizes, then assigning members by sampling vertices.
    pub memberships_per_vertex: f64,
    /// Target mean *intra-community* degree of a member.
    pub internal_degree: f64,
    /// Target mean *background* (noise) degree of a vertex.
    pub background_degree: f64,
}

impl PlantedConfig {
    /// Validate parameter sanity.
    ///
    /// # Panics
    /// Panics on inconsistent parameters (zero sizes, negative degrees).
    fn validate(&self) {
        assert!(self.num_vertices >= 2, "need at least 2 vertices");
        assert!(self.num_communities >= 1, "need at least 1 community");
        assert!(
            self.mean_community_size >= 2.0,
            "communities must average >= 2 members"
        );
        assert!(self.internal_degree >= 0.0, "negative internal degree");
        assert!(self.background_degree >= 0.0, "negative background degree");
        assert!(
            self.memberships_per_vertex > 0.0,
            "memberships_per_vertex must be positive"
        );
    }
}

/// Sample an Erdős–Rényi `G(members, p)` on the given member list using
/// geometric skipping, adding edges to `builder`.
fn wire_community<R: RngCore>(
    builder: &mut GraphBuilder,
    members: &[VertexId],
    p: f64,
    rng: &mut R,
) {
    let s = members.len();
    if s < 2 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..s {
            for j in (i + 1)..s {
                let _ = builder.add_edge(members[i], members[j]);
            }
        }
        return;
    }
    // Enumerate pairs (i, j), i < j, as a linear index and skip ahead by
    // Geometric(p) jumps (Batagelj & Brandes 2005).
    let total = (s as u64) * (s as u64 - 1) / 2;
    let log1p = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let u = rng.next_f64_open();
        let skip = (u.ln() / log1p).floor() as u64 + 1;
        idx = match idx.checked_add(skip) {
            Some(v) => v,
            None => break,
        };
        if idx > total {
            break;
        }
        // Invert the linear index (1-based) into (i, j).
        let linear = idx - 1;
        let i = invert_pair_index(linear, s as u64);
        let offset = linear - (i * (2 * (s as u64) - i - 1)) / 2;
        let j = i + 1 + offset;
        let _ = builder.add_edge(members[i as usize], members[j as usize]);
    }
}

/// Given linear index `t` over pairs (i<j) of `s` items in row-major order,
/// return the row `i`.
fn invert_pair_index(t: u64, s: u64) -> u64 {
    // Row i starts at offset i*(2s - i - 1)/2; solve by scanning from an
    // analytic initial guess (exact integer arithmetic, no drift).
    let tf = t as f64;
    let sf = s as f64;
    let mut i = (sf - 0.5 - ((sf - 0.5) * (sf - 0.5) - 2.0 * tf).max(0.0).sqrt()).floor() as u64;
    i = i.min(s - 2);
    while (i * (2 * s - i - 1)) / 2 > t {
        i -= 1;
    }
    while ((i + 1) * (2 * s - i - 2)) / 2 <= t {
        i += 1;
    }
    i
}

/// Generate a graph with planted overlapping communities.
///
/// Deterministic given the RNG state. See [`PlantedConfig`] for knobs.
pub fn generate_planted<R: RngCore>(config: &PlantedConfig, rng: &mut R) -> GeneratedGraph {
    config.validate();
    let n = config.num_vertices;
    let mut builder = GraphBuilder::new(n);

    // Scale community sizes so that total memberships ≈ N * overlap.
    let target_total = (n as f64 * config.memberships_per_vertex).max(1.0);
    let natural_total = config.num_communities as f64 * config.mean_community_size;
    let size_scale = target_total / natural_total;

    let mut communities: Vec<Vec<VertexId>> = Vec::with_capacity(config.num_communities);
    for _ in 0..config.num_communities {
        let jitter = 0.5 + rng.next_f64(); // uniform in [0.5, 1.5)
        let size = ((config.mean_community_size * size_scale * jitter).round() as usize)
            .clamp(2, n as usize);
        let mut members: Vec<VertexId> = rng
            .sample_distinct(n as usize, size)
            .into_iter()
            .map(|i| VertexId(i as u32))
            .collect();
        members.sort_unstable();
        communities.push(members);
    }

    for members in &communities {
        let s = members.len();
        let p = (config.internal_degree / (s as f64 - 1.0)).min(1.0);
        wire_community(&mut builder, members, p, rng);
    }

    // Background noise: expected background_degree * N / 2 random edges.
    let noise_edges = (config.background_degree * n as f64 / 2.0).round() as u64;
    let mut added = 0u64;
    let mut attempts = 0u64;
    let max_attempts = noise_edges.saturating_mul(20) + 100;
    while added < noise_edges && attempts < max_attempts {
        attempts += 1;
        let a = VertexId(rng.below(n as u64) as u32);
        let b = VertexId(rng.below(n as u64) as u32);
        if a == b {
            continue;
        }
        if builder.add_edge(a, b).unwrap_or(false) {
            added += 1;
        }
    }

    GeneratedGraph {
        graph: builder.build(),
        ground_truth: GroundTruth { communities },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::Xoshiro256PlusPlus;

    fn config() -> PlantedConfig {
        PlantedConfig {
            num_vertices: 500,
            num_communities: 10,
            mean_community_size: 60.0,
            memberships_per_vertex: 1.2,
            internal_degree: 12.0,
            background_degree: 1.0,
        }
    }

    #[test]
    fn invert_pair_index_exhaustive() {
        for s in 2u64..12 {
            let mut t = 0u64;
            for i in 0..s - 1 {
                for _j in i + 1..s {
                    assert_eq!(invert_pair_index(t, s), i, "t={t} s={s}");
                    t += 1;
                }
            }
        }
    }

    #[test]
    fn generates_expected_scale() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let g = generate_planted(&config(), &mut rng);
        assert_eq!(g.graph.num_vertices(), 500);
        assert_eq!(g.ground_truth.num_communities(), 10);
        // Expected degree ≈ overlap * internal + background = 1.2*12 + 1.
        let md = g.graph.mean_degree();
        assert!((8.0..25.0).contains(&md), "mean degree {md}");
    }

    #[test]
    fn communities_are_denser_than_background() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let g = generate_planted(&config(), &mut rng);
        // Probability two random co-members are linked should far exceed
        // the background density.
        let c = &g.ground_truth.communities[0];
        let mut linked = 0usize;
        let mut pairs = 0usize;
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                pairs += 1;
                if g.graph.has_edge(c[i], c[j]) {
                    linked += 1;
                }
            }
        }
        let density = linked as f64 / pairs as f64;
        let global = g.graph.num_edges() as f64 / g.graph.num_pairs() as f64;
        assert!(
            density > 5.0 * global,
            "community density {density} vs global {global}"
        );
    }

    #[test]
    fn deterministic() {
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(3);
        let g1 = generate_planted(&config(), &mut r1);
        let g2 = generate_planted(&config(), &mut r2);
        assert_eq!(g1.graph.num_edges(), g2.graph.num_edges());
        let e1: Vec<_> = g1.graph.edges().collect();
        let e2: Vec<_> = g2.graph.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn overlap_factor_respected() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut cfg = config();
        cfg.memberships_per_vertex = 2.0;
        let g = generate_planted(&cfg, &mut rng);
        let overlap = g.ground_truth.mean_memberships(cfg.num_vertices);
        assert!((1.5..2.6).contains(&overlap), "overlap {overlap}");
    }

    #[test]
    #[should_panic(expected = "at least 2 vertices")]
    fn tiny_graph_rejected() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut cfg = config();
        cfg.num_vertices = 1;
        generate_planted(&cfg, &mut rng);
    }

    #[test]
    fn dense_community_p_one() {
        // internal_degree >= size forces p = 1: complete subgraph.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let cfg = PlantedConfig {
            num_vertices: 20,
            num_communities: 1,
            mean_community_size: 10.0,
            memberships_per_vertex: 0.5,
            internal_degree: 100.0,
            background_degree: 0.0,
        };
        let g = generate_planted(&cfg, &mut rng);
        let c = &g.ground_truth.communities[0];
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                assert!(g.graph.has_edge(c[i], c[j]));
            }
        }
    }
}
