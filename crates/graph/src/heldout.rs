//! Held-out set construction for perplexity evaluation.
//!
//! Following the paper (and Li, Ahn & Welling), the held-out set `E_h`
//! contains an equal number of *linked* pairs (removed from the training
//! graph) and *non-linked* pairs, so perplexity measures both link
//! prediction and non-link prediction. `E_h` is statically partitioned
//! across machines for the parallel perplexity phase.

use crate::{access::GraphAccess, Edge, FxHashSet, Graph, GraphBuilder, VertexId};
use mmsb_rand::{Rng, RngCore};

/// A held-out evaluation set: pairs with their true link observation.
#[derive(Debug, Clone)]
pub struct HeldOut {
    pairs: Vec<(Edge, bool)>,
    index: FxHashSet<u64>,
}

impl HeldOut {
    /// Split `graph` into a training graph and a held-out set with
    /// `num_links` linked pairs and `num_links` non-linked pairs.
    ///
    /// The returned training graph is `graph` minus the held-out links.
    ///
    /// # Panics
    /// Panics if `num_links > |E|` or if the graph is too dense to supply
    /// enough non-links (needs `num_links <= num_pairs - |E|`).
    pub fn split<R: RngCore>(graph: &Graph, num_links: usize, rng: &mut R) -> (Graph, HeldOut) {
        assert!(
            (num_links as u64) <= graph.num_edges(),
            "cannot hold out {num_links} links from a graph with {} edges",
            graph.num_edges()
        );
        assert!(
            (num_links as u64) <= graph.num_pairs() - graph.num_edges(),
            "graph too dense to sample {num_links} held-out non-links"
        );

        let all_edges: Vec<Edge> = graph.edges().collect();
        let link_idx = rng.sample_distinct(all_edges.len(), num_links);
        let mut index = FxHashSet::default();
        let mut removed_links = FxHashSet::default();
        let mut pairs = Vec::with_capacity(num_links * 2);
        for i in link_idx {
            let e = all_edges[i];
            index.insert(e.pack());
            removed_links.insert(e.pack());
            pairs.push((e, true));
        }

        let n = graph.num_vertices();
        assert!(n >= 2, "need at least two vertices");
        let mut non_links = 0usize;
        while non_links < num_links {
            let a = VertexId(rng.below(n as u64) as u32);
            let b = VertexId(rng.below(n as u64) as u32);
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if graph.has_edge(a, b) || !index.insert(e.pack()) {
                continue;
            }
            pairs.push((e, false));
            non_links += 1;
        }

        // Rebuild the training graph without the held-out links.
        let mut builder = GraphBuilder::with_edge_capacity(n, all_edges.len() - num_links);
        for e in &all_edges {
            if !removed_links.contains(&e.pack()) {
                builder
                    .add_edge(e.lo(), e.hi())
                    .expect("edge from valid graph");
            }
        }
        (builder.build(), HeldOut { pairs, index })
    }

    /// Build a held-out set through any [`GraphAccess`] backend *without*
    /// rebuilding the training graph — the out-of-core path, where the
    /// adjacency is immutable on disk and `O(E)` edge collection is off
    /// the table.
    ///
    /// Links are drawn uniformly from `E` by degree-corrected rejection:
    /// pick a vertex uniformly, accept it with probability
    /// `degree / max_degree`, then pick one of its neighbors uniformly —
    /// every directed edge lands with probability `1 / (N * max_degree)`,
    /// so undirected links are uniform. Non-links are uniform pairs
    /// filtered through `has_edge`, exactly as [`HeldOut::split`] draws
    /// them.
    ///
    /// Unlike [`HeldOut::split`], the held-out links stay in the training
    /// graph; the mini-batch and neighbor samplers exclude held-out
    /// *pairs* explicitly, so the evaluation pairs still never contribute
    /// a gradient. Perplexity numbers are therefore comparable across
    /// backends only when both used the same construction.
    ///
    /// # Panics
    /// Panics if the graph has no edges (or too few to supply
    /// `num_links` distinct ones), or is too dense for the non-links.
    pub fn sample_observed<G: GraphAccess, R: RngCore>(
        mut graph: G,
        num_links: usize,
        rng: &mut R,
    ) -> HeldOut {
        assert!(
            (num_links as u64) <= graph.num_edges(),
            "cannot hold out {num_links} links from a graph with {} edges",
            graph.num_edges()
        );
        assert!(
            (num_links as u64) <= graph.num_pairs() - graph.num_edges(),
            "graph too dense to sample {num_links} held-out non-links"
        );
        let n = graph.num_vertices();
        assert!(n >= 2, "need at least two vertices");
        let max_degree = graph.max_degree() as u64;

        let mut index = FxHashSet::default();
        let mut pairs = Vec::with_capacity(num_links * 2);
        let mut links = 0usize;
        while links < num_links {
            let a = VertexId(rng.below(n as u64) as u32);
            let d = graph.degree(a) as u64;
            if d == 0 || rng.below(max_degree) >= d {
                continue;
            }
            let slot = rng.below(d) as usize;
            let b = VertexId(graph.neighbors(a)[slot]);
            let e = Edge::new(a, b);
            if !index.insert(e.pack()) {
                continue;
            }
            pairs.push((e, true));
            links += 1;
        }

        let mut non_links = 0usize;
        while non_links < num_links {
            let a = VertexId(rng.below(n as u64) as u32);
            let b = VertexId(rng.below(n as u64) as u32);
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if graph.has_edge(a, b) || !index.insert(e.pack()) {
                continue;
            }
            pairs.push((e, false));
            non_links += 1;
        }
        HeldOut { pairs, index }
    }

    /// All held-out pairs with their observations.
    pub fn pairs(&self) -> &[(Edge, bool)] {
        &self.pairs
    }

    /// Total number of held-out pairs (links + non-links).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether a pair is part of the held-out set (mini-batch samplers use
    /// this to exclude evaluation pairs from training).
    pub fn contains(&self, e: Edge) -> bool {
        self.index.contains(&e.pack())
    }

    /// Contiguous partition of the pair list for rank `rank` of `ranks` —
    /// the static partitioning the paper uses for the distributed
    /// perplexity computation.
    ///
    /// # Panics
    /// Panics if `rank >= ranks` or `ranks == 0`.
    pub fn partition(&self, rank: usize, ranks: usize) -> &[(Edge, bool)] {
        assert!(ranks > 0 && rank < ranks, "bad partition {rank}/{ranks}");
        let per = self.pairs.len().div_ceil(ranks);
        let lo = (rank * per).min(self.pairs.len());
        let hi = ((rank + 1) * per).min(self.pairs.len());
        &self.pairs[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::planted::{PlantedConfig, generate_planted};
    use mmsb_rand::Xoshiro256PlusPlus;

    fn test_graph() -> Graph {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        generate_planted(
            &PlantedConfig {
                num_vertices: 300,
                num_communities: 6,
                mean_community_size: 60.0,
                memberships_per_vertex: 1.4,
                internal_degree: 8.0,
                background_degree: 1.0,
            },
            &mut rng,
        )
        .graph
    }

    #[test]
    fn split_sizes_and_balance() {
        let g = test_graph();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let (train, h) = HeldOut::split(&g, 50, &mut rng);
        assert_eq!(h.len(), 100);
        let links = h.pairs().iter().filter(|&&(_, y)| y).count();
        assert_eq!(links, 50);
        assert_eq!(train.num_edges(), g.num_edges() - 50);
    }

    #[test]
    fn heldout_links_absent_from_training() {
        let g = test_graph();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let (train, h) = HeldOut::split(&g, 40, &mut rng);
        for &(e, y) in h.pairs() {
            if y {
                assert!(g.has_edge(e.lo(), e.hi()), "held-out link not in original");
                assert!(!train.has_edge(e.lo(), e.hi()), "held-out link leaked into training");
            } else {
                assert!(!g.has_edge(e.lo(), e.hi()), "held-out non-link is an edge");
            }
        }
    }

    #[test]
    fn contains_matches_pairs() {
        let g = test_graph();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let (_, h) = HeldOut::split(&g, 30, &mut rng);
        for &(e, _) in h.pairs() {
            assert!(h.contains(e));
        }
        assert_eq!(h.pairs().len(), 60);
    }

    #[test]
    fn partition_covers_everything_disjointly() {
        let g = test_graph();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let (_, h) = HeldOut::split(&g, 33, &mut rng);
        for ranks in [1, 2, 3, 7, 64, 200] {
            let total: usize = (0..ranks).map(|r| h.partition(r, ranks).len()).sum();
            assert_eq!(total, h.len(), "ranks={ranks}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold out")]
    fn too_many_links_panics() {
        let g = test_graph();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let want = g.num_edges() as usize + 1;
        HeldOut::split(&g, want, &mut rng);
    }

    #[test]
    fn sample_observed_labels_are_truthful_and_balanced() {
        let g = test_graph();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let h = HeldOut::sample_observed(&g, 40, &mut rng);
        assert_eq!(h.len(), 80);
        let links = h.pairs().iter().filter(|&&(_, y)| y).count();
        assert_eq!(links, 40);
        for &(e, y) in h.pairs() {
            assert_eq!(y, g.has_edge(e.lo(), e.hi()));
            assert!(h.contains(e));
        }
        // Pairs are distinct.
        let set: std::collections::HashSet<u64> =
            h.pairs().iter().map(|&(e, _)| e.pack()).collect();
        assert_eq!(set.len(), h.len());
    }

    #[test]
    fn sample_observed_deterministic_given_seed() {
        let g = test_graph();
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(10);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(10);
        assert_eq!(
            HeldOut::sample_observed(&g, 25, &mut r1).pairs(),
            HeldOut::sample_observed(&g, 25, &mut r2).pairs()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = test_graph();
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(7);
        let (_, h1) = HeldOut::split(&g, 20, &mut r1);
        let (_, h2) = HeldOut::split(&g, 20, &mut r2);
        assert_eq!(h1.pairs(), h2.pairs());
    }
}
