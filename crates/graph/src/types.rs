//! Fundamental identifier types.

/// A vertex identifier: a dense index in `[0, N)`.
///
/// Stored as `u32` — the paper's largest graph (com-Friendster) has 65.6M
/// vertices, far below `u32::MAX`, and halving index width halves the
/// memory traffic of adjacency scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The index as `usize` for slice addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An undirected edge in canonical (min, max) order.
///
/// Canonicalization makes `Edge` usable directly as a set/map key: `(a, b)`
/// and `(b, a)` compare and hash identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    a: VertexId,
    b: VertexId,
}

impl Edge {
    /// Create a canonical edge. Endpoint order does not matter.
    ///
    /// # Panics
    /// Panics on a self-loop; the a-MMSB model has no `y_aa` variables.
    #[inline]
    pub fn new(x: VertexId, y: VertexId) -> Self {
        assert_ne!(x, y, "self-loop edge ({x}, {y})");
        if x.0 <= y.0 {
            Edge { a: x, b: y }
        } else {
            Edge { a: y, b: x }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn lo(self) -> VertexId {
        self.a
    }

    /// The larger endpoint.
    #[inline]
    pub fn hi(self) -> VertexId {
        self.b
    }

    /// Both endpoints as a `(lo, hi)` tuple.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.a, self.b)
    }

    /// Pack into a single `u64` key (`lo << 32 | hi`), the representation
    /// used for hash sets of edges.
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.a.0 as u64) << 32) | self.b.0 as u64
    }

    /// Inverse of [`Edge::pack`].
    #[inline]
    pub fn unpack(key: u64) -> Self {
        Edge {
            a: VertexId((key >> 32) as u32),
            b: VertexId(key as u32),
        }
    }

    /// Given one endpoint, return the other.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: VertexId) -> VertexId {
        if v == self.a {
            self.b
        } else if v == self.b {
            self.a
        } else {
            panic!("{v} is not an endpoint of ({}, {})", self.a, self.b)
        }
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    #[test]
    fn vertex_roundtrip() {
        let v = VertexId::from(42u32);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(v.to_string(), "v42");
    }

    #[test]
    fn edge_is_canonical() {
        let e1 = Edge::new(VertexId(5), VertexId(2));
        let e2 = Edge::new(VertexId(2), VertexId(5));
        assert_eq!(e1, e2);
        assert_eq!(e1.lo(), VertexId(2));
        assert_eq!(e1.hi(), VertexId(5));
        assert_eq!(e1.endpoints(), (VertexId(2), VertexId(5)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        Edge::new(VertexId(1), VertexId(1));
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(VertexId(1), VertexId(9));
        assert_eq!(e.other(VertexId(1)), VertexId(9));
        assert_eq!(e.other(VertexId(9)), VertexId(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_wrong_vertex_panics() {
        Edge::new(VertexId(1), VertexId(9)).other(VertexId(3));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xE1);
        for _ in 0..256 {
            let a = rng.below(1_000_000) as u32;
            let b = rng.below(1_000_000) as u32;
            if a == b {
                continue;
            }
            let e = Edge::new(VertexId(a), VertexId(b));
            assert_eq!(Edge::unpack(e.pack()), e, "({a}, {b})");
        }
    }

    #[test]
    fn pack_is_order_insensitive() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xE2);
        for _ in 0..256 {
            let a = rng.below(1_000_000) as u32;
            let b = rng.below(1_000_000) as u32;
            if a == b {
                continue;
            }
            let e1 = Edge::new(VertexId(a), VertexId(b));
            let e2 = Edge::new(VertexId(b), VertexId(a));
            assert_eq!(e1.pack(), e2.pack(), "({a}, {b})");
        }
    }
}
