//! Mini-batch sampling of vertex pairs (`E_n`).
//!
//! Two strategies are provided:
//!
//! * [`Strategy::RandomPair`] — sample `size` distinct pairs uniformly from
//!   the full pair universe `E* = V x V` (minus held-out pairs). The
//!   gradient scale is `h = |E*| / |E_n|`.
//! * [`Strategy::StratifiedNode`] — the *stratified random node sampling*
//!   of Li, Ahn & Welling (the variant the paper's implementation uses):
//!   pick a vertex `u` uniformly; with probability 1/2 the mini-batch is
//!   `u`'s link set, otherwise it is one of `m` predefined partitions of
//!   `u`'s non-link pairs. A link appears in the batch with probability
//!   `(2/N) * (1/2) = 1/N` (either endpoint can anchor it), so the
//!   unbiased gradient scale is `h = N`; a non-link appears with
//!   probability `1/(N m)`, giving `h = N * m`.
//!   This strategy has much lower gradient variance on sparse graphs
//!   because links — the informative observations — are sampled often.

use crate::{access::GraphAccess, heldout::HeldOut, Edge, VertexId};
use mmsb_rand::{Rng, RngCore};

/// Mini-batch sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Uniform sampling of `size` pairs from `V x V`.
    RandomPair {
        /// Number of pairs per mini-batch.
        size: usize,
    },
    /// Stratified random node sampling with `partitions` non-link strata,
    /// drawing `anchors` independent strata per mini-batch. Each stratum
    /// carries its own weight; averaging `anchors` independent estimators
    /// divides the gradient variance by `anchors` (the paper's mini-batches
    /// span thousands of vertices, i.e. many strata).
    StratifiedNode {
        /// Number of partitions `m` of each vertex's non-link pairs.
        partitions: usize,
        /// Number of anchor vertices (strata) per mini-batch.
        anchors: usize,
    },
}

/// Which strata a mini-batch was assembled from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchKind {
    /// Uniform pair sample.
    RandomPairs,
    /// A union of per-anchor strata; one entry per anchor.
    Strata(Vec<Stratum>),
}

/// One stratum of a stratified mini-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stratum {
    /// The link set of the anchor vertex.
    LinkSet {
        /// The anchor vertex whose links form the stratum.
        anchor: VertexId,
    },
    /// One non-link partition of the anchor vertex.
    NonLinkSet {
        /// The anchor vertex.
        anchor: VertexId,
        /// The selected partition index in `[0, m)`.
        partition: usize,
    },
}

/// A sampled mini-batch of vertex pairs with observations and gradient
/// scale.
#[derive(Debug, Clone)]
pub struct MiniBatch {
    /// The sampled pairs together with the observation `y_ab`.
    pub pairs: Vec<(Edge, bool)>,
    /// Per-pair gradient weight: the stratum scale `h` divided by the
    /// number of averaged strata. The global-parameter gradient estimator
    /// is `sum_p weight_p * g_p` (reduces to Eq. 3's `h(E_n) * sum g` for
    /// a single stratum).
    pub weights: Vec<f64>,
    /// Provenance of the batch.
    pub kind: BatchKind,
}

impl MiniBatch {
    /// The distinct vertices touched by this mini-batch — the `M` vertices
    /// the master scatters across workers.
    pub fn vertices(&self) -> Vec<VertexId> {
        let mut vs = Vec::new();
        self.vertices_into(&mut vs);
        vs
    }

    /// Like [`MiniBatch::vertices`], but reusing `out` — no allocation once
    /// its capacity covers `2 * pairs.len()`.
    pub fn vertices_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.pairs.iter().flat_map(|&(e, _)| [e.lo(), e.hi()]));
        out.sort_unstable();
        out.dedup();
    }

    /// Number of pairs in the batch.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the batch is empty (possible for isolated vertices in the
    /// link stratum).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The average stratum scale — informational; the estimator itself
    /// uses the per-pair [`MiniBatch::weights`].
    pub fn mean_weight(&self) -> f64 {
        if self.weights.is_empty() {
            0.0
        } else {
            self.weights.iter().sum::<f64>() / self.weights.len() as f64
        }
    }
}

/// Mini-batch sampler bound to a strategy.
#[derive(Debug, Clone, Copy)]
pub struct MinibatchSampler {
    strategy: Strategy,
}

impl MinibatchSampler {
    /// Create a sampler with the given strategy.
    ///
    /// # Panics
    /// Panics on a zero `size` / `partitions` parameter.
    pub fn new(strategy: Strategy) -> Self {
        match strategy {
            Strategy::RandomPair { size } => assert!(size > 0, "mini-batch size must be > 0"),
            Strategy::StratifiedNode { partitions, anchors } => {
                assert!(partitions > 0, "partition count must be > 0");
                assert!(anchors > 0, "anchor count must be > 0");
            }
        }
        Self { strategy }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Draw one mini-batch from the *training* graph (any [`GraphAccess`]
    /// backend — resident calls pass `&Graph`, out-of-core ones a block-
    /// cached reader). Held-out pairs are excluded when `heldout` is
    /// provided.
    pub fn sample<G: GraphAccess, R: RngCore>(
        &self,
        graph: G,
        heldout: Option<&HeldOut>,
        rng: &mut R,
    ) -> MiniBatch {
        let mut out = MiniBatch {
            pairs: Vec::new(),
            weights: Vec::new(),
            kind: BatchKind::RandomPairs,
        };
        self.sample_into(graph, heldout, rng, &mut out);
        out
    }

    /// Like [`MinibatchSampler::sample`], but reusing the vectors inside
    /// `out`. The RNG draw sequence is identical to `sample`, so either
    /// entry point continues the same chain. For the stratified strategy
    /// this performs no heap allocation once `out`'s capacities cover the
    /// largest stratum (the random-pair strategy keeps a per-call
    /// dedup set).
    pub fn sample_into<G: GraphAccess, R: RngCore>(
        &self,
        graph: G,
        heldout: Option<&HeldOut>,
        rng: &mut R,
        out: &mut MiniBatch,
    ) {
        out.pairs.clear();
        out.weights.clear();
        match self.strategy {
            Strategy::RandomPair { size } => {
                self.sample_random_pairs_into(graph, heldout, size, rng, out);
            }
            Strategy::StratifiedNode { partitions, anchors } => {
                self.sample_stratified_into(graph, heldout, partitions, anchors, rng, out);
            }
        }
    }

    fn sample_random_pairs_into<G: GraphAccess, R: RngCore>(
        &self,
        mut graph: G,
        heldout: Option<&HeldOut>,
        size: usize,
        rng: &mut R,
        out: &mut MiniBatch,
    ) {
        let n = graph.num_vertices() as u64;
        assert!(n >= 2, "graph must have at least 2 vertices");
        let mut seen = crate::FxHashSet::default();
        let pairs = &mut out.pairs;
        let max_pairs = graph.num_pairs() as usize;
        let want = size.min(max_pairs);
        while pairs.len() < want {
            let a = VertexId(rng.below(n) as u32);
            let b = VertexId(rng.below(n) as u32);
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if heldout.is_some_and(|h| h.contains(e)) || !seen.insert(e.pack()) {
                continue;
            }
            let y = graph.has_edge(a, b);
            pairs.push((e, y));
        }
        let scale = graph.num_pairs() as f64 / pairs.len().max(1) as f64;
        out.weights.resize(pairs.len(), scale);
        out.kind = BatchKind::RandomPairs;
    }

    fn sample_stratified_into<G: GraphAccess, R: RngCore>(
        &self,
        mut graph: G,
        heldout: Option<&HeldOut>,
        m: usize,
        anchors: usize,
        rng: &mut R,
        out: &mut MiniBatch,
    ) {
        let n = graph.num_vertices();
        assert!(n >= 2, "graph must have at least 2 vertices");
        // Reuse the strata vector across draws when the caller passes the
        // same batch back in.
        if !matches!(out.kind, BatchKind::Strata(_)) {
            out.kind = BatchKind::Strata(Vec::with_capacity(anchors));
        }
        let MiniBatch {
            pairs,
            weights,
            kind,
        } = out;
        let BatchKind::Strata(strata) = kind else {
            unreachable!("kind was just set to Strata");
        };
        strata.clear();
        let averaging = anchors as f64;
        for _ in 0..anchors {
            let anchor = VertexId(rng.below(n as u64) as u32);
            if rng.coin() {
                // Link stratum: all of anchor's (training) edges.
                let stratum_pairs = graph
                    .neighbors(anchor)
                    .iter()
                    .map(|&b| (Edge::new(anchor, VertexId(b)), true))
                    .filter(|&(e, _)| !heldout.is_some_and(|h| h.contains(e)));
                let before = pairs.len();
                pairs.extend(stratum_pairs);
                weights.extend(std::iter::repeat_n(
                    n as f64 / averaging,
                    pairs.len() - before,
                ));
                strata.push(Stratum::LinkSet { anchor });
            } else {
                // Non-link stratum: partition `p` holds the candidates
                // `b != anchor` with `b % m == p` that are not training
                // edges.
                // Stepping through the residue class directly keeps this
                // O(N/m) — the master draws mini-batches on the critical
                // path (unless pipelined), so an O(N) scan would dominate
                // small-K configurations.
                let p = rng.below_usize(m);
                let stratum_pairs = (p as u32..n)
                    .step_by(m)
                    .filter(|&b| b != anchor.0)
                    .map(|b| Edge::new(anchor, VertexId(b)))
                    .filter(|&e| {
                        !graph.has_edge(e.lo(), e.hi())
                            && !heldout.is_some_and(|h| h.contains(e))
                    })
                    .map(|e| (e, false));
                let before = pairs.len();
                pairs.extend(stratum_pairs);
                weights.extend(std::iter::repeat_n(
                    n as f64 * m as f64 / averaging,
                    pairs.len() - before,
                ));
                strata.push(Stratum::NonLinkSet {
                    anchor,
                    partition: p,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::planted::{generate_planted, PlantedConfig};
    use crate::Graph;
    use mmsb_rand::Xoshiro256PlusPlus;

    fn graph() -> Graph {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        generate_planted(
            &PlantedConfig {
                num_vertices: 200,
                num_communities: 4,
                mean_community_size: 60.0,
                memberships_per_vertex: 1.3,
                internal_degree: 10.0,
                background_degree: 1.0,
            },
            &mut rng,
        )
        .graph
    }

    #[test]
    fn random_pairs_size_weights_and_labels() {
        let g = graph();
        let s = MinibatchSampler::new(Strategy::RandomPair { size: 64 });
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let mb = s.sample(&g, None, &mut rng);
        assert_eq!(mb.len(), 64);
        assert_eq!(mb.kind, BatchKind::RandomPairs);
        assert_eq!(mb.weights.len(), 64);
        let expected = g.num_pairs() as f64 / 64.0;
        assert!(mb.weights.iter().all(|&w| (w - expected).abs() < 1e-9));
        for &(e, y) in &mb.pairs {
            assert_eq!(y, g.has_edge(e.lo(), e.hi()));
        }
        let set: std::collections::HashSet<u64> = mb.pairs.iter().map(|(e, _)| e.pack()).collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn single_anchor_link_stratum_is_anchor_neighborhood() {
        let g = graph();
        let s = MinibatchSampler::new(Strategy::StratifiedNode {
            partitions: 10,
            anchors: 1,
        });
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        loop {
            let mb = s.sample(&g, None, &mut rng);
            let BatchKind::Strata(ref strata) = mb.kind else {
                panic!("expected strata")
            };
            if let Stratum::LinkSet { anchor } = strata[0] {
                assert_eq!(mb.len() as u32, g.degree(anchor));
                assert!(mb.pairs.iter().all(|&(_, y)| y));
                let n = g.num_vertices() as f64;
                assert!(mb.weights.iter().all(|&w| (w - n).abs() < 1e-9));
                break;
            }
        }
    }

    #[test]
    fn single_anchor_nonlink_stratum_has_no_edges_and_right_partition() {
        let g = graph();
        let m = 8;
        let s = MinibatchSampler::new(Strategy::StratifiedNode {
            partitions: m,
            anchors: 1,
        });
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        loop {
            let mb = s.sample(&g, None, &mut rng);
            let BatchKind::Strata(ref strata) = mb.kind else {
                panic!("expected strata")
            };
            if let Stratum::NonLinkSet { anchor, partition } = strata[0] {
                assert!(!mb.pairs.iter().any(|&(_, y)| y));
                for &(e, _) in &mb.pairs {
                    let other = e.other(anchor);
                    assert_eq!(other.0 as usize % m, partition);
                    assert!(!g.has_edge(e.lo(), e.hi()));
                }
                let expected = g.num_vertices() as f64 * m as f64;
                assert!(mb.weights.iter().all(|&w| (w - expected).abs() < 1e-9));
                break;
            }
        }
    }

    #[test]
    fn multi_anchor_batches_divide_weights() {
        let g = graph();
        let anchors = 8;
        let s = MinibatchSampler::new(Strategy::StratifiedNode {
            partitions: 4,
            anchors,
        });
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mb = s.sample(&g, None, &mut rng);
        let BatchKind::Strata(ref strata) = mb.kind else {
            panic!("expected strata")
        };
        assert_eq!(strata.len(), anchors);
        assert_eq!(mb.weights.len(), mb.pairs.len());
        // Weights are the single-stratum scales divided by the anchor count.
        let n = g.num_vertices() as f64;
        for &w in &mb.weights {
            let link_w = n / anchors as f64;
            let nonlink_w = n * 4.0 / anchors as f64;
            assert!(
                (w - link_w).abs() < 1e-9 || (w - nonlink_w).abs() < 1e-9,
                "unexpected weight {w}"
            );
        }
    }

    #[test]
    fn excludes_heldout() {
        let g = graph();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let (train, h) = crate::heldout::HeldOut::split(&g, 100, &mut rng);
        for strat in [
            Strategy::RandomPair { size: 128 },
            Strategy::StratifiedNode {
                partitions: 4,
                anchors: 4,
            },
        ] {
            let s = MinibatchSampler::new(strat);
            for _ in 0..50 {
                let mb = s.sample(&train, Some(&h), &mut rng);
                for &(e, _) in &mb.pairs {
                    assert!(!h.contains(e), "{strat:?} sampled held-out pair");
                }
            }
        }
    }

    #[test]
    fn vertices_are_distinct_and_cover_pairs() {
        let g = graph();
        let s = MinibatchSampler::new(Strategy::RandomPair { size: 32 });
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let mb = s.sample(&g, None, &mut rng);
        let vs = mb.vertices();
        let set: std::collections::HashSet<_> = vs.iter().collect();
        assert_eq!(set.len(), vs.len());
        for &(e, _) in &mb.pairs {
            assert!(vs.contains(&e.lo()) && vs.contains(&e.hi()));
        }
    }

    #[test]
    fn stratified_weighted_mass_is_unbiased() {
        // Unbiasedness of the stratified estimator: each unordered pair is
        // reachable through both endpoints, each with probability
        // (1/N)(1/2)(1/m or 1), so P(pair in a stratum) = 1/N for links and
        // 1/(N m) for non-links; weighting by h and averaging over anchors
        // makes every pair count once: E[sum_p weight_p] = |E*|.
        let g = graph();
        let s = MinibatchSampler::new(Strategy::StratifiedNode {
            partitions: 8,
            anchors: 4,
        });
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let draws = 3000;
        let mean_weighted: f64 = (0..draws)
            .map(|_| {
                let mb = s.sample(&g, None, &mut rng);
                mb.weights.iter().sum::<f64>()
            })
            .sum::<f64>()
            / draws as f64;
        let total = g.num_pairs() as f64;
        let rel = (mean_weighted - total).abs() / total;
        assert!(rel < 0.05, "weighted pair mass off by {rel:.3}");
    }

    #[test]
    fn mean_weight_is_defined() {
        let g = graph();
        let s = MinibatchSampler::new(Strategy::RandomPair { size: 16 });
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(8);
        let mb = s.sample(&g, None, &mut rng);
        assert!(mb.mean_weight() > 0.0);
        let empty = MiniBatch {
            pairs: vec![],
            weights: vec![],
            kind: BatchKind::RandomPairs,
        };
        assert_eq!(empty.mean_weight(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "size must be > 0")]
    fn zero_size_panics() {
        MinibatchSampler::new(Strategy::RandomPair { size: 0 });
    }

    #[test]
    #[should_panic(expected = "anchor count")]
    fn zero_anchors_panics() {
        MinibatchSampler::new(Strategy::StratifiedNode {
            partitions: 4,
            anchors: 0,
        });
    }
}
