//! Incremental, deduplicating graph construction.

use crate::{Edge, FxHashSet, Graph, GraphError, VertexId};

/// Builds a [`Graph`] from a stream of undirected edges.
///
/// Duplicate edges (in either orientation) are silently dropped; self-loops
/// and out-of-range endpoints are rejected with an error. The builder keys
/// a hash set with packed edges, so construction is `O(|E|)` expected.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: u32,
    edges: FxHashSet<u64>,
}

impl GraphBuilder {
    /// Start a builder for a graph with `num_vertices` vertices
    /// (ids `0..num_vertices`).
    pub fn new(num_vertices: u32) -> Self {
        Self {
            num_vertices,
            edges: FxHashSet::default(),
        }
    }

    /// Pre-size the internal edge set.
    pub fn with_edge_capacity(num_vertices: u32, edges: usize) -> Self {
        let mut set = FxHashSet::default();
        set.reserve(edges);
        Self {
            num_vertices,
            edges: set,
        }
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Raise the vertex count to `num_vertices` (no-op if already at
    /// least that). Streaming loaders discover the vertex universe as
    /// they intern ids, so they grow the builder as edges arrive.
    pub fn grow_to(&mut self, num_vertices: u32) {
        self.num_vertices = self.num_vertices.max(num_vertices);
    }

    /// Number of distinct edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add one undirected edge. Returns `Ok(true)` if the edge was new,
    /// `Ok(false)` if it was a duplicate.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> Result<bool, GraphError> {
        if a == b {
            return Err(GraphError::SelfLoop { vertex: a.0 });
        }
        for v in [a, b] {
            if v.0 >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v.0,
                    num_vertices: self.num_vertices,
                });
            }
        }
        Ok(self.edges.insert(Edge::new(a, b).pack()))
    }

    /// Bulk-add edges, stopping at the first error.
    pub fn add_edges<I>(&mut self, edges: I) -> Result<(), GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (a, b) in edges {
            self.add_edge(a, b)?;
        }
        Ok(())
    }

    /// Whether the given edge has been added.
    pub fn contains(&self, a: VertexId, b: VertexId) -> bool {
        a != b && self.edges.contains(&Edge::new(a, b).pack())
    }

    /// Finalize into an immutable CSR [`Graph`].
    pub fn build(self) -> Graph {
        Graph::from_packed_edges(self.num_vertices, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    #[test]
    fn dedup_both_orientations() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(VertexId(0), VertexId(1)).unwrap());
        assert!(!b.add_edge(VertexId(1), VertexId(0)).unwrap());
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(VertexId(2), VertexId(2)),
            Err(GraphError::SelfLoop { vertex: 2 })
        ));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(VertexId(0), VertexId(3)),
            Err(GraphError::VertexOutOfRange { vertex: 3, .. })
        ));
    }

    #[test]
    fn contains_reflects_added_edges() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(1), VertexId(3)).unwrap();
        assert!(b.contains(VertexId(3), VertexId(1)));
        assert!(!b.contains(VertexId(0), VertexId(1)));
        assert!(!b.contains(VertexId(2), VertexId(2)));
    }

    #[test]
    fn add_edges_bulk() {
        let mut b = GraphBuilder::new(5);
        b.add_edges([(VertexId(0), VertexId(1)), (VertexId(2), VertexId(3))])
            .unwrap();
        assert_eq!(b.num_edges(), 2);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(10).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
    }

    /// Whatever mix of duplicates we feed in, the built graph's edge
    /// count equals the number of *distinct* canonical pairs. Checked
    /// over 64 random edge multisets.
    #[test]
    fn edge_count_matches_distinct_pairs() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xB7);
        for case in 0..64 {
            let n_pairs = rng.below(300) as usize;
            let mut b = GraphBuilder::new(50);
            let mut reference = std::collections::HashSet::new();
            for _ in 0..n_pairs {
                let x = rng.below(50) as u32;
                let y = rng.below(50) as u32;
                if x == y {
                    continue;
                }
                let _ = b.add_edge(VertexId(x), VertexId(y));
                reference.insert((x.min(y), x.max(y)));
            }
            assert_eq!(b.num_edges(), reference.len(), "case {case}");
            let g = b.build();
            assert_eq!(g.num_edges(), reference.len() as u64, "case {case}");
            for &(x, y) in &reference {
                assert!(g.has_edge(VertexId(x), VertexId(y)), "case {case}");
            }
        }
    }
}
