//! SNAP edge-list text I/O.
//!
//! The Stanford SNAP collection distributes graphs as whitespace-separated
//! `src dst` pairs, one per line, with `#`-prefixed comment lines. Vertex
//! ids in the files are arbitrary (non-contiguous) integers; the loader
//! densifies them to `[0, N)` and returns the mapping.

use crate::{FxHashMap, Graph, GraphBuilder, GraphError, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Result of loading an edge list: the graph plus the original ids, indexed
/// by dense [`VertexId`].
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The densified graph.
    pub graph: Graph,
    /// `original_ids[v.index()]` is the id the input file used for `v`.
    pub original_ids: Vec<u64>,
}

impl LoadedGraph {
    /// Map a dense vertex back to the id used in the input file.
    pub fn original_id(&self, v: VertexId) -> u64 {
        self.original_ids[v.index()]
    }
}

/// A streaming SNAP edge-list parser: one `(src, dst)` pair per call,
/// reading line by line with a single reused line buffer (no eager
/// buffering of the input, the lines, or the parsed edges — consumers
/// like the out-of-core converter stream arbitrarily large files in
/// constant memory).
///
/// * Lines starting with `#` (after optional leading whitespace) and blank
///   lines are skipped.
/// * Each data line must contain exactly two integer tokens; malformed
///   rows surface as [`GraphError::Parse`] with the 1-based line number.
/// * Self-loops are *skipped* here (SNAP social graphs contain a few; the
///   a-MMSB model cannot represent them); deduplication is the consumer's
///   job.
#[derive(Debug)]
pub struct EdgeListLines<R> {
    reader: BufReader<R>,
    line: String,
    line_no: usize,
    self_loops: u64,
}

impl<R: Read> EdgeListLines<R> {
    /// Start streaming from `reader`.
    pub fn new(reader: R) -> Self {
        Self {
            reader: BufReader::new(reader),
            line: String::new(),
            line_no: 0,
            self_loops: 0,
        }
    }

    /// The 1-based line number of the most recently parsed line.
    pub fn line_number(&self) -> usize {
        self.line_no
    }

    /// Self-loop rows skipped so far.
    pub fn self_loops_skipped(&self) -> u64 {
        self.self_loops
    }

    /// Parse the next edge; `Ok(None)` at end of input.
    #[allow(clippy::should_implement_trait)] // lending-style: reuses the line buffer
    pub fn next_edge(&mut self) -> Result<Option<(u64, u64)>, GraphError> {
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let trimmed = self.line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let line_no = self.line_no;
            let mut tokens = trimmed.split_whitespace();
            let parse = |tok: Option<&str>| -> Result<u64, GraphError> {
                let tok = tok.ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "expected two vertex ids".into(),
                })?;
                tok.parse::<u64>().map_err(|e| GraphError::Parse {
                    line: line_no,
                    message: format!("bad vertex id {tok:?}: {e}"),
                })
            };
            let a = parse(tokens.next())?;
            let b = parse(tokens.next())?;
            if tokens.next().is_some() {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: "trailing tokens after edge".into(),
                });
            }
            if a == b {
                self.self_loops += 1;
                continue; // drop self-loops
            }
            return Ok(Some((a, b)));
        }
    }
}

/// Parse a SNAP-format edge list from any reader (see [`EdgeListLines`]
/// for the accepted syntax). Edges stream directly into the deduplicating
/// [`GraphBuilder`] — nothing is buffered besides the id-interning table.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, GraphError> {
    let mut ids: FxHashMap<u64, u32> = FxHashMap::default();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut edges = EdgeListLines::new(reader);
    let mut builder = GraphBuilder::new(0);
    while let Some((a, b)) = edges.next_edge()? {
        let mut intern = |raw: u64| -> u32 {
            *ids.entry(raw).or_insert_with(|| {
                let dense = original_ids.len() as u32;
                original_ids.push(raw);
                dense
            })
        };
        let da = intern(a);
        let db = intern(b);
        builder.grow_to(original_ids.len() as u32);
        builder.add_edge(VertexId(da), VertexId(db))?;
    }
    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

/// Load a SNAP-format edge list from a file.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write a graph in SNAP edge-list format (dense ids, one `lo hi` pair per
/// line, with a comment header).
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# Undirected graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    writeln!(writer, "# FromNodeId\tToNodeId")?;
    let mut w = std::io::BufWriter::new(writer);
    for e in graph.edges() {
        writeln!(w, "{}\t{}", e.lo().0, e.hi().0)?;
    }
    w.flush()
}

/// Save a graph to a SNAP-format file.
pub fn save_edge_list<P: AsRef<Path>>(graph: &Graph, path: P) -> std::io::Result<()> {
    write_edge_list(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_edges() {
        let input = "# header\n\n10 20\n20 30\n  # indented comment\n10\t30\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.original_id(VertexId(0)), 10);
        assert_eq!(loaded.original_id(VertexId(1)), 20);
        assert_eq!(loaded.original_id(VertexId(2)), 30);
    }

    #[test]
    fn skips_self_loops_and_dedups() {
        let input = "1 1\n1 2\n2 1\n1 2\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
        assert_eq!(loaded.graph.num_vertices(), 2);
    }

    #[test]
    fn error_on_missing_token() {
        let err = read_edge_list("1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn error_on_bad_token() {
        let err = read_edge_list("1 x\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains('x'), "{msg}");
    }

    #[test]
    fn error_on_trailing_tokens() {
        let err = read_edge_list("1 2 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn error_line_numbers_count_comments() {
        let err = read_edge_list("# c\n1 2\nbroken\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn write_read_roundtrip() {
        let input = "0 1\n1 2\n2 3\n0 3\n";
        let loaded = read_edge_list(input.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_edge_list(&loaded.graph, &mut out).unwrap();
        let reloaded = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(reloaded.graph.num_vertices(), loaded.graph.num_vertices());
        assert_eq!(reloaded.graph.num_edges(), loaded.graph.num_edges());
        // Reloading re-densifies ids in file order, which differs from the
        // original interning order; map through the original ids.
        let remap: std::collections::HashMap<u64, VertexId> = (0..reloaded.graph.num_vertices())
            .map(|v| (reloaded.original_id(VertexId(v)), VertexId(v)))
            .collect();
        for e in loaded.graph.edges() {
            let a = remap[&(e.lo().0 as u64)];
            let b = remap[&(e.hi().0 as u64)];
            assert!(reloaded.graph.has_edge(a, b));
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mmsb_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let loaded = read_edge_list("5 6\n6 7\n".as_bytes()).unwrap();
        save_edge_list(&loaded.graph, &path).unwrap();
        let re = load_edge_list(&path).unwrap();
        assert_eq!(re.graph.num_edges(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_edge_list("/definitely/not/here.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
