//! Graph substrate for scalable overlapping community detection.
//!
//! This crate supplies everything the SG-MCMC sampler needs from the data
//! side, mirroring the data layer of El-Helw et al. (IPDPS-W 2016):
//!
//! * [`Graph`] — a compact undirected graph: CSR adjacency with sorted
//!   neighbor lists (`O(log deg)` membership tests, zero per-vertex
//!   allocation),
//! * [`GraphBuilder`] — deduplicating, self-loop-rejecting construction,
//! * [`io`] — the SNAP edge-list text format (comments, arbitrary ids),
//! * [`heldout`] — train/held-out split with matched link/non-link pairs,
//!   exactly the perplexity test set of the paper,
//! * [`minibatch`] — the stratified random-node sampling strategy of
//!   Li, Ahn & Welling plus plain uniform pair sampling,
//! * [`neighbor`] — per-vertex neighbor-set sampling (`V_n`),
//! * [`generate`] — synthetic graphs with planted overlapping communities
//!   (the stand-ins for the SNAP datasets; see DESIGN.md §3),
//! * [`stats`] — summary statistics backing Table II.
//!
//! # Example
//!
//! ```
//! use mmsb_graph::{GraphBuilder, VertexId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(VertexId(0), VertexId(1)).unwrap();
//! b.add_edge(VertexId(1), VertexId(2)).unwrap();
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 2);
//! assert!(g.has_edge(VertexId(0), VertexId(1)));
//! assert!(!g.has_edge(VertexId(0), VertexId(2)));
//! ```

#![forbid(unsafe_code)]

pub mod access;
pub mod generate;
pub mod heldout;
pub mod io;
pub mod minibatch;
pub mod neighbor;
pub mod stats;

mod builder;
mod graph;
mod hasher;
mod types;

pub use access::GraphAccess;
pub use builder::GraphBuilder;
pub use graph::Graph;
pub use hasher::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use types::{Edge, VertexId};

/// Errors produced while constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint is `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        num_vertices: u32,
    },
    /// Self-loops are not representable in the a-MMSB model.
    SelfLoop {
        /// The vertex that would loop to itself.
        vertex: u32,
    },
    /// A parse failure in an input file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(f, "vertex {vertex} out of range (N = {num_vertices})"),
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_mentions_details() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 5,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));

        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains('3'));

        let e = GraphError::Parse {
            line: 17,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("bad token"));
    }
}
