//! Bitwise determinism of the SIMD kernel dispatch.
//!
//! The per-backend contract (DESIGN.md §12): for a fixed kernel backend
//! and seed, the chain is a pure function of the inputs — the driver,
//! thread count, and scheduler must not appear in the bytes. Each
//! backend fixes its own reduction order (lane-strided partials folded
//! by an in-register butterfly, then the ascending scalar tail), so the
//! guarantee is *per backend*: scalar vs SIMD may differ in final-digit
//! rounding, but one backend at one seed is one chain everywhere.

use mmsb_core::{
    Backend, ParallelSampler, SamplerConfig, SequentialSampler, SimdPolicy,
};
use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::Graph;
use mmsb_rand::Xoshiro256PlusPlus;

fn setup(seed: u64) -> (Graph, HeldOut) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let gen = generate_planted(
        &PlantedConfig {
            num_vertices: 150,
            num_communities: 4,
            mean_community_size: 40.0,
            memberships_per_vertex: 1.2,
            internal_degree: 8.0,
            background_degree: 0.5,
        },
        &mut rng,
    );
    HeldOut::split(&gen.graph, 45, &mut rng)
}

/// Every backend that will dispatch for real on this host; scalar is
/// always first so the test is meaningful even without SIMD hardware.
fn backends() -> Vec<Backend> {
    [Backend::Scalar, Backend::Sse2, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|b| b.available())
        .collect()
}

fn snapshot(state: &mmsb_core::ModelState) -> (Vec<Vec<f32>>, Vec<f64>) {
    let pi = (0..state.n()).map(|a| state.pi_row(a).to_vec()).collect();
    (pi, state.theta().to_vec())
}

/// One forced backend, one seed: the sequential reference and the
/// parallel driver at several pool sizes must produce byte-identical
/// `pi`/`theta` state and bit-identical perplexity.
#[test]
fn forced_backend_chain_is_thread_count_invariant() {
    let (g, h) = setup(41);
    for backend in backends() {
        let cfg = SamplerConfig::new(5)
            .with_seed(23)
            .with_simd(SimdPolicy::Force(backend));

        let mut seq = SequentialSampler::new(g.clone(), h.clone(), cfg.clone()).unwrap();
        seq.run(6);
        let (ref_pi, ref_theta) = snapshot(seq.state());
        let ref_ppx = seq.evaluate_perplexity();

        for threads in [2usize, 3, 5] {
            let mut par =
                ParallelSampler::with_threads(g.clone(), h.clone(), cfg.clone(), threads)
                    .unwrap();
            par.run(6);
            let (pi, theta) = snapshot(par.state());
            assert_eq!(
                ref_pi, pi,
                "{backend}: pi diverged between 1 and {threads} threads"
            );
            assert_eq!(
                ref_theta, theta,
                "{backend}: theta diverged between 1 and {threads} threads"
            );
            let ppx = par.evaluate_perplexity();
            assert_eq!(
                ref_ppx.to_bits(),
                ppx.to_bits(),
                "{backend}: perplexity diverged at the bit level ({ref_ppx} vs {ppx})"
            );
        }
    }
}

/// `SimdPolicy::Auto` is pure dispatch sugar: it must land on exactly
/// the chain `Force(Backend::detect())` produces.
#[test]
fn auto_policy_matches_forced_detected_backend() {
    let (g, h) = setup(42);
    let base = SamplerConfig::new(4).with_seed(29);

    let mut auto = ParallelSampler::with_threads(
        g.clone(),
        h.clone(),
        base.clone().with_simd(SimdPolicy::Auto),
        3,
    )
    .unwrap();
    let mut forced = ParallelSampler::with_threads(
        g,
        h,
        base.with_simd(SimdPolicy::Force(Backend::detect())),
        3,
    )
    .unwrap();
    auto.run(6);
    forced.run(6);

    assert_eq!(snapshot(auto.state()), snapshot(forced.state()));
    assert_eq!(
        auto.evaluate_perplexity().to_bits(),
        forced.evaluate_perplexity().to_bits()
    );
}

/// Re-running the identical configuration is byte-for-byte reproducible
/// — there is no hidden global state in the dispatch layer.
#[test]
fn forced_backend_rerun_is_reproducible() {
    let (g, h) = setup(43);
    let backend = Backend::detect();
    let cfg = SamplerConfig::new(6)
        .with_seed(31)
        .with_simd(SimdPolicy::Force(backend));
    let run = |g: &Graph, h: &HeldOut| {
        let mut s = ParallelSampler::with_threads(g.clone(), h.clone(), cfg.clone(), 2).unwrap();
        s.run(5);
        let snap = snapshot(s.state());
        (snap, s.evaluate_perplexity().to_bits())
    };
    assert_eq!(run(&g, &h), run(&g, &h), "{backend}: rerun diverged");
}
