//! Bitwise determinism across graph backends (DESIGN.md §15).
//!
//! The out-of-core contract: the [`mmsb_ooc::BlockCache`] is pure
//! scratch — a hit and a miss return the same CRC-verified bytes, and
//! decoded lists are byte-identical to the resident CSR's adjacency —
//! so for a fixed seed the chain is a pure function of the graph, never
//! of where its bytes live. The tests pin that at the strictest level:
//! `pi` rows, `theta`, and the held-out perplexity must match the
//! resident reference *bitwise*, for sequential and parallel drivers,
//! across thread counts, and for a cache small enough that every
//! mini-batch evicts blocks.

use std::path::PathBuf;

use mmsb_core::{ParallelSampler, SamplerConfig, SequentialSampler};
use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::Graph;
use mmsb_ooc::{write_graph, BuildOptions, GraphBackend, OocGraph};
use mmsb_rand::Xoshiro256PlusPlus;

/// A planted graph big enough that its 4 KiB-block file spans more
/// blocks than the smallest cache holds (so evictions really happen).
fn setup(seed: u64) -> (Graph, HeldOut) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let gen = generate_planted(
        &PlantedConfig {
            num_vertices: 900,
            num_communities: 9,
            mean_community_size: 105.0,
            memberships_per_vertex: 1.2,
            internal_degree: 26.0,
            background_degree: 1.0,
        },
        &mut rng,
    );
    HeldOut::split(&gen.graph, 80, &mut rng)
}

fn snapshot(state: &mmsb_core::ModelState) -> (Vec<Vec<f32>>, Vec<f64>) {
    let pi = (0..state.n()).map(|a| state.pi_row(a).to_vec()).collect();
    (pi, state.theta().to_vec())
}

fn temp_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mmsb-backend-det-{}-{tag}.ooc", std::process::id()))
}

#[test]
fn out_of_core_chain_matches_resident_bitwise() {
    let (graph, heldout) = setup(51);
    let path = temp_file("main");
    write_graph(
        &graph,
        &path,
        BuildOptions {
            block_size: 4096,
            ..BuildOptions::default()
        },
    )
    .unwrap();
    let cfg = SamplerConfig::new(6).with_seed(33);
    let iters = 5;

    // Resident reference chain.
    let mut seq = SequentialSampler::new(graph.clone(), heldout.clone(), cfg.clone()).unwrap();
    seq.run(iters);
    let (ref_pi, ref_theta) = snapshot(seq.state());
    let ref_ppx = seq.evaluate_perplexity();

    // Sequential out-of-core at several cache sizes. The smallest
    // capacity request rounds up to one 4-way set — fewer slots than the
    // file has blocks, so training constantly evicts; the largest holds
    // the whole file. All must be bit-identical to the resident chain.
    for cache_blocks in [1usize, 8, 256] {
        let ooc = OocGraph::open(&path).unwrap();
        if cache_blocks == 1 {
            assert!(
                ooc.header().num_blocks > 4,
                "fixture too small to force evictions: {} blocks",
                ooc.header().num_blocks
            );
        }
        let mut s = SequentialSampler::with_backend(
            GraphBackend::OutOfCore(ooc),
            heldout.clone(),
            cfg.clone().with_graph_cache_blocks(cache_blocks),
        )
        .unwrap();
        s.run(iters);
        let (pi, theta) = snapshot(s.state());
        assert_eq!(ref_pi, pi, "pi diverged at cache_blocks={cache_blocks}");
        assert_eq!(ref_theta, theta, "theta diverged at cache_blocks={cache_blocks}");
        assert_eq!(
            ref_ppx.to_bits(),
            s.evaluate_perplexity().to_bits(),
            "perplexity diverged at cache_blocks={cache_blocks}"
        );
    }

    // Parallel out-of-core across thread counts, still on the tiny
    // eviction-heavy cache: per-worker caches are scratch too.
    for threads in [2usize, 3] {
        let ooc = OocGraph::open(&path).unwrap();
        let mut p = ParallelSampler::with_backend_threads(
            GraphBackend::OutOfCore(ooc),
            heldout.clone(),
            cfg.clone().with_graph_cache_blocks(1),
            threads,
        )
        .unwrap();
        p.run(iters);
        let (pi, theta) = snapshot(p.state());
        assert_eq!(ref_pi, pi, "pi diverged at {threads} threads");
        assert_eq!(ref_theta, theta, "theta diverged at {threads} threads");
        assert_eq!(
            ref_ppx.to_bits(),
            p.evaluate_perplexity().to_bits(),
            "perplexity diverged at {threads} threads"
        );
    }

    let _ = std::fs::remove_file(&path);
}

/// The block size is a storage knob, not a model knob: refiling the
/// same graph at a different block size must leave the chain untouched.
#[test]
fn block_size_never_reaches_the_chain() {
    let (graph, heldout) = setup(52);
    let cfg = SamplerConfig::new(5).with_seed(37).with_graph_cache_blocks(2);
    let mut runs = Vec::new();
    for block_size in [4096u32, 16384] {
        let path = temp_file(&format!("bs-{block_size}"));
        write_graph(
            &graph,
            &path,
            BuildOptions {
                block_size,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let ooc = OocGraph::open(&path).unwrap();
        let mut s =
            SequentialSampler::with_backend(GraphBackend::OutOfCore(ooc), heldout.clone(), cfg.clone())
                .unwrap();
        s.run(4);
        runs.push((snapshot(s.state()), s.evaluate_perplexity().to_bits()));
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(runs[0], runs[1], "block size leaked into the chain");
}
