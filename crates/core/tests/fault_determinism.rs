//! Determinism under injected faults.
//!
//! The contract of the failure layer: recoverable faults (failed/slow DKV
//! operations, lost/duplicated/delayed messages, stragglers) change the
//! *modeled time* of the run — surfaced as `Phase::Recovery` in the trace
//! — but never the chain. A faulty run's final `theta`/`pi` must be
//! bitwise-identical to the fault-free run under the same sampler seed,
//! and a permanent worker kill must degrade to `R - 1` workers while
//! still reproducing the same chain.

use mmsb_core::{DistributedConfig, DistributedSampler, SamplerConfig};
use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::Graph;
use mmsb_netsim::{FaultConfig, Phase};
use mmsb_rand::Xoshiro256PlusPlus;

fn setup(seed: u64) -> (Graph, HeldOut) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let gen = generate_planted(
        &PlantedConfig {
            num_vertices: 110,
            num_communities: 3,
            mean_community_size: 40.0,
            memberships_per_vertex: 1.1,
            internal_degree: 8.0,
            background_degree: 0.5,
        },
        &mut rng,
    );
    HeldOut::split(&gen.graph, 36, &mut rng)
}

fn assert_same_chain(a: &DistributedSampler, b: &DistributedSampler) {
    for v in 0..a.state().n() {
        assert_eq!(a.state().pi_row(v), b.state().pi_row(v), "pi diverged at {v}");
    }
    assert_eq!(a.state().theta(), b.state().theta(), "theta diverged");
}

/// Like [`assert_same_chain`] but for runs with *different worker
/// counts*: `pi` stays bitwise (phi updates are per-vertex pure and round
/// to f32), while the `theta`-gradient reduction sums worker shares in
/// rank order, so a different `R` changes the floating-point association
/// — theta matches to reduction precision, not bitwise.
fn assert_same_chain_across_widths(a: &DistributedSampler, b: &DistributedSampler) {
    for v in 0..a.state().n() {
        assert_eq!(a.state().pi_row(v), b.state().pi_row(v), "pi diverged at {v}");
    }
    for (x, y) in a.state().theta().iter().zip(b.state().theta()) {
        let rel = (x - y).abs() / x.abs().max(1e-12);
        assert!(rel < 1e-9, "theta diverged: {x} vs {y}");
    }
}

#[test]
fn transient_faults_cost_time_but_not_values() {
    let (g, h) = setup(21);
    let cfg = SamplerConfig::new(3).with_seed(13);

    let mut clean =
        DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), DistributedConfig::das5(4))
            .unwrap();
    let mut faulty = DistributedSampler::new(
        g,
        h,
        cfg,
        DistributedConfig::das5(4).with_faults(FaultConfig::transient(777)),
    )
    .unwrap();

    clean.run(8);
    faulty.run(8);

    assert_same_chain(&clean, &faulty);
    let pc = clean.evaluate_perplexity();
    let pf = faulty.evaluate_perplexity();
    assert_eq!(pc.to_bits(), pf.to_bits(), "perplexity diverged: {pc} vs {pf}");

    // The faults must have cost something, and the trace must say where.
    let recovery = faulty.report().phases.total(Phase::Recovery);
    assert!(recovery > 0.0, "transient plan produced zero recovery time");
    assert!(faulty.report().phases.count(Phase::Recovery) > 0);
    assert_eq!(clean.report().phases.total(Phase::Recovery), 0.0);
    assert!(
        faulty.virtual_time() > clean.virtual_time(),
        "faulty {} should be slower than clean {}",
        faulty.virtual_time(),
        clean.virtual_time()
    );
}

#[test]
fn fault_schedule_is_reproducible() {
    let (g, h) = setup(22);
    let cfg = SamplerConfig::new(3).with_seed(3);
    let dcfg = DistributedConfig::das5(3).with_faults(FaultConfig::transient(42));

    let mut a = DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), dcfg).unwrap();
    let mut b = DistributedSampler::new(g, h, cfg, dcfg).unwrap();
    a.run(6);
    b.run(6);
    assert_same_chain(&a, &b);
    // The fault *decisions* are a pure function of the plan seed, so the
    // iterations that needed recovery are the same run-to-run. (The
    // recovery *magnitudes* fold in measured compute — straggler overhead
    // scales the real stage time — so they are not bitwise comparable,
    // just like the rest of the virtual clock.)
    assert_eq!(
        a.report().phases.count(Phase::Recovery),
        b.report().phases.count(Phase::Recovery)
    );
    assert!(a.report().phases.total(Phase::Recovery) > 0.0);
    assert!(b.report().phases.total(Phase::Recovery) > 0.0);
}

#[test]
fn killed_worker_degrades_to_survivors_with_the_same_chain() {
    let (g, h) = setup(23);
    let cfg = SamplerConfig::new(3).with_seed(17);

    let mut clean =
        DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), DistributedConfig::das5(4))
            .unwrap();
    // Worker 2 dies permanently at the start of iteration 5; the run
    // rewinds to the iteration-4 checkpoint and continues on 3 workers.
    let faults = FaultConfig::none(5).with_kill(5, 2);
    let mut killed = DistributedSampler::new(
        g,
        h,
        cfg,
        DistributedConfig::das5(4).with_faults(faults),
    )
    .unwrap()
    .with_checkpoint_every(2);

    clean.run(10);
    killed.run(10);

    assert_eq!(killed.workers(), 3, "did not degrade to R - 1 workers");
    assert_eq!(killed.lost_worker(), Some(2));
    assert_eq!(killed.iteration(), 10, "rewound iterations must be re-run");
    assert_same_chain_across_widths(&clean, &killed);

    let p = killed.evaluate_perplexity();
    assert!(p.is_finite() && p > 1.0, "degraded run broke perplexity: {p}");
    assert!(killed.report().phases.total(Phase::Recovery) > 0.0);
    assert_eq!(clean.workers(), 4);
}

#[test]
fn kill_without_checkpoint_cadence_rewinds_to_construction() {
    let (g, h) = setup(24);
    let cfg = SamplerConfig::new(3).with_seed(29);
    let mut clean =
        DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), DistributedConfig::das5(3))
            .unwrap();
    // No with_checkpoint_every: the rollback point is the construction
    // snapshot, so the whole prefix is re-run after the kill.
    let mut killed = DistributedSampler::new(
        g,
        h,
        cfg,
        DistributedConfig::das5(3).with_faults(FaultConfig::none(1).with_kill(3, 0)),
    )
    .unwrap();
    clean.run(6);
    killed.run(6);
    assert_eq!(killed.workers(), 2);
    assert_eq!(killed.iteration(), 6);
    assert_same_chain_across_widths(&clean, &killed);
}

#[test]
fn invalid_kill_targets_are_rejected() {
    let (g, h) = setup(25);
    let cfg = SamplerConfig::new(3);
    // Kill rank out of range.
    assert!(DistributedSampler::new(
        g.clone(),
        h.clone(),
        cfg.clone(),
        DistributedConfig::das5(2).with_faults(FaultConfig::none(1).with_kill(0, 5)),
    )
    .is_err());
    // Killing the only worker leaves nothing to degrade to.
    assert!(DistributedSampler::new(
        g,
        h,
        cfg,
        DistributedConfig::das5(1).with_faults(FaultConfig::none(1).with_kill(0, 0)),
    )
    .is_err());
}
