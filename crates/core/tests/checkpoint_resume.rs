//! Kill-and-resume: a run restored from an on-disk checkpoint must
//! continue the *bitwise-identical* chain the uninterrupted run produced,
//! and the checkpoint format must reject corruption and stay stable.

use mmsb_core::{
    Checkpoint, CheckpointError, CoreError, DistributedConfig, DistributedSampler, SamplerConfig,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::Graph;
use mmsb_rand::Xoshiro256PlusPlus;
use std::path::PathBuf;

fn setup(seed: u64) -> (Graph, HeldOut) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let gen = generate_planted(
        &PlantedConfig {
            num_vertices: 100,
            num_communities: 3,
            mean_community_size: 38.0,
            memberships_per_vertex: 1.1,
            internal_degree: 8.0,
            background_degree: 0.5,
        },
        &mut rng,
    );
    HeldOut::split(&gen.graph, 30, &mut rng)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mmsb-{}-{name}", std::process::id()))
}

#[test]
fn kill_and_resume_is_bitwise_identical() {
    let (g, h) = setup(11);
    let cfg = SamplerConfig::new(3).with_seed(9);
    let dcfg = DistributedConfig::das5(4);

    // The uninterrupted reference: 6 iterations, eval, 6 more, eval.
    let mut full = DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), dcfg).unwrap();
    full.run(6);
    full.evaluate_perplexity();
    full.run(6);
    let p_full = full.evaluate_perplexity();

    // The killed run: same schedule up to the checkpoint, then "killed".
    let path = temp_path("resume.ckpt");
    {
        let mut first = DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), dcfg).unwrap();
        first.run(6);
        first.evaluate_perplexity();
        first.checkpoint().save(&path).unwrap();
        // The process dies here; everything in memory is lost.
    }

    // The resumed run continues from disk.
    let loaded = Checkpoint::load(&path).unwrap();
    assert_eq!(loaded.iteration(), 6);
    let mut resumed = DistributedSampler::resume(g, h, cfg, dcfg, &loaded).unwrap();
    assert_eq!(resumed.iteration(), 6);
    resumed.run(6);
    let p_resumed = resumed.evaluate_perplexity();

    for a in 0..full.state().n() {
        assert_eq!(
            full.state().pi_row(a),
            resumed.state().pi_row(a),
            "pi diverged at vertex {a}"
        );
    }
    assert_eq!(full.state().theta(), resumed.state().theta(), "theta diverged");
    assert_eq!(
        p_full.to_bits(),
        p_resumed.to_bits(),
        "perplexity diverged: {p_full} vs {p_resumed}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupting_one_byte_fails_the_checksum() {
    let (g, h) = setup(12);
    let cfg = SamplerConfig::new(3).with_seed(4);
    let mut s =
        DistributedSampler::new(g, h, cfg, DistributedConfig::das5(2)).unwrap();
    s.run(3);
    let bytes = s.checkpoint().to_bytes();

    // Flip one byte in the middle of the state payload.
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    assert!(
        matches!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::ChecksumMismatch)
        ),
        "single flipped byte must fail the checksum"
    );

    // The pristine bytes still load.
    let back = Checkpoint::from_bytes(&bytes).unwrap();
    assert_eq!(back.iteration(), 3);
}

#[test]
fn format_header_is_stable() {
    // Golden-file test for the on-disk layout: the first bytes are the
    // magic, the version, the layout tag, and the vertex count — all at
    // fixed offsets. Breaking this breaks every old checkpoint.
    let (g, h) = setup(13);
    let n = g.num_vertices();
    let cfg = SamplerConfig::new(3).with_seed(2);
    let s = DistributedSampler::new(g, h, cfg, DistributedConfig::das5(2)).unwrap();
    let bytes = s.checkpoint().to_bytes();

    assert_eq!(&bytes[..8], &CHECKPOINT_MAGIC, "magic moved");
    assert_eq!(&bytes[..8], b"MMSBCKP1");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        CHECKPOINT_VERSION
    );
    assert_eq!(bytes[12], 0, "PiSumPhi layout tag");
    assert_eq!(u32::from_le_bytes(bytes[13..17].try_into().unwrap()), n);
    assert_eq!(
        u64::from_le_bytes(bytes[17..25].try_into().unwrap()),
        3,
        "k field"
    );
    assert_eq!(
        u64::from_le_bytes(bytes[25..33].try_into().unwrap()),
        2,
        "seed field"
    );
}

#[test]
fn checkpoint_refuses_a_mismatched_sampler() {
    let (g, h) = setup(14);
    let cfg = SamplerConfig::new(3).with_seed(5);
    let dcfg = DistributedConfig::das5(2);
    let s = DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), dcfg).unwrap();
    let ck = s.checkpoint();

    // Same everything but the seed: a different chain, refuse to splice.
    let other = cfg.with_seed(6);
    let err = match DistributedSampler::resume(g, h, other, dcfg, &ck) {
        Ok(_) => panic!("mismatched seed must be rejected"),
        Err(e) => e,
    };
    assert!(
        matches!(err, CoreError::Checkpoint(CheckpointError::Mismatch { .. })),
        "got {err}"
    );
}

#[test]
fn save_and_load_roundtrip_via_disk() {
    let (g, h) = setup(15);
    let cfg = SamplerConfig::new(3).with_seed(8);
    let mut s = DistributedSampler::new(g, h, cfg, DistributedConfig::das5(2)).unwrap();
    s.run(2);
    let ck = s.checkpoint();
    let path = temp_path("roundtrip.ckpt");
    ck.save(&path).unwrap();
    let back = Checkpoint::load(&path).unwrap();
    assert_eq!(back, ck);
    std::fs::remove_file(&path).ok();

    assert!(matches!(
        Checkpoint::load(&temp_path("does-not-exist.ckpt")),
        Err(CheckpointError::Io(_))
    ));
}
