//! Bitwise determinism across pipeline modes.
//!
//! `PipelineMode::Double` executes the `pi` loads for real on a
//! background thread (`PrefetchingReader`), overlapped with compute;
//! `PipelineMode::Single` loads synchronously. The contract: chunk
//! boundaries, RNG streams, and reduction order are identical in both
//! modes — only *when* bytes are copied changes — so after any number of
//! iterations the sampler state must match bit for bit.

use mmsb_core::{
    train_threaded, DistributedConfig, DistributedSampler, SamplerConfig,
};
use mmsb_dkv::pipeline::PipelineMode;
use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::Graph;
use mmsb_rand::Xoshiro256PlusPlus;

fn setup(seed: u64) -> (Graph, HeldOut) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let gen = generate_planted(
        &PlantedConfig {
            num_vertices: 140,
            num_communities: 3,
            mean_community_size: 50.0,
            memberships_per_vertex: 1.1,
            internal_degree: 8.0,
            background_degree: 0.5,
        },
        &mut rng,
    );
    HeldOut::split(&gen.graph, 45, &mut rng)
}

/// The lockstep distributed sampler: 5 iterations under Single vs Double
/// (real overlap) must produce identical `pi`/`theta` state and identical
/// perplexity.
#[test]
fn distributed_single_vs_double_is_bitwise_identical() {
    let (g, h) = setup(11);
    let cfg = SamplerConfig::new(4).with_seed(13);
    let mut single = DistributedSampler::new(
        g.clone(),
        h.clone(),
        cfg.clone(),
        DistributedConfig::das5(4).with_pipeline(PipelineMode::Single),
    )
    .unwrap();
    let mut double = DistributedSampler::new(
        g,
        h,
        cfg,
        DistributedConfig::das5(4).with_pipeline(PipelineMode::Double),
    )
    .unwrap();
    single.run(5);
    double.run(5);

    for a in 0..single.state().n() {
        assert_eq!(
            single.state().pi_row(a),
            double.state().pi_row(a),
            "pi diverged at vertex {a}"
        );
    }
    assert_eq!(single.state().theta(), double.state().theta(), "theta diverged");
    let ps = single.evaluate_perplexity();
    let pd = double.evaluate_perplexity();
    assert_eq!(ps, pd, "perplexity diverged: {ps} vs {pd}");
    assert_eq!(
        ps.to_bits(),
        pd.to_bits(),
        "perplexity diverged at the bit level"
    );
}

/// Same contract for the genuinely concurrent threaded driver, where
/// Double mode overlaps store reads with compute on a per-worker
/// background thread.
#[test]
fn threaded_single_vs_double_is_bitwise_identical() {
    let (g, h) = setup(12);
    let cfg = SamplerConfig::new(4).with_seed(17);
    let single = train_threaded(
        g.clone(),
        h.clone(),
        cfg.clone(),
        3,
        5,
        5,
        PipelineMode::Single,
    )
    .unwrap();
    let double = train_threaded(g, h, cfg, 3, 5, 5, PipelineMode::Double).unwrap();

    for a in 0..single.state.n() {
        assert_eq!(
            single.state.pi_row(a),
            double.state.pi_row(a),
            "pi diverged at vertex {a}"
        );
    }
    assert_eq!(single.state.theta(), double.state.theta(), "theta diverged");
    assert_eq!(
        single.perplexity_trace, double.perplexity_trace,
        "perplexity traces diverged"
    );
}

/// The dedup_reads flag changes modeled wire time only; combined with
/// either pipeline mode the chain must stay bitwise identical.
#[test]
fn dedup_and_pipeline_combinations_share_one_chain() {
    let (g, h) = setup(13);
    let cfg = SamplerConfig::new(3).with_seed(19);
    let mut reference: Option<Vec<Vec<f32>>> = None;
    for mode in [PipelineMode::Single, PipelineMode::Double] {
        for dedup in [false, true] {
            let mut s = DistributedSampler::new(
                g.clone(),
                h.clone(),
                cfg.clone(),
                DistributedConfig::das5(3)
                    .with_pipeline(mode)
                    .with_dedup_reads(dedup),
            )
            .unwrap();
            s.run(5);
            let rows: Vec<Vec<f32>> = (0..s.state().n())
                .map(|a| s.state().pi_row(a).to_vec())
                .collect();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "mode {mode:?} dedup {dedup} diverged"),
            }
        }
    }
}
