//! Pins the deterministic theta reduction: a mini-batch large enough to
//! span several theta chunks (chunk size 1024 pairs) forces the drivers
//! through the fixed binary combining tree, and the result must be
//! bitwise identical to the sequential sampler for every pool size —
//! the tree shape depends only on the chunk count, never on which
//! worker finished first.

use mmsb_core::{ParallelSampler, SamplerConfig, SequentialSampler};
use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::minibatch::Strategy;
use mmsb_graph::Graph;
use mmsb_rand::Xoshiro256PlusPlus;

fn setup() -> (Graph, HeldOut, SamplerConfig) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
    let gen = generate_planted(
        &PlantedConfig {
            num_vertices: 200,
            num_communities: 4,
            mean_community_size: 55.0,
            memberships_per_vertex: 1.1,
            internal_degree: 9.0,
            background_degree: 0.5,
        },
        &mut rng,
    );
    let (graph, heldout) = HeldOut::split(&gen.graph, 50, &mut rng);
    // 2500 pairs per batch -> 3 theta chunks of <= 1024 pairs, so the
    // binary tree actually combines partials ((0+1)+2) instead of
    // degenerating to the identity.
    let config = SamplerConfig::new(4)
        .with_seed(17)
        .with_minibatch(Strategy::RandomPair { size: 2500 });
    (graph, heldout, config)
}

#[test]
fn tree_reduced_theta_matches_sequential_for_any_pool_size() {
    let (graph, heldout, config) = setup();
    for threads in [1usize, 2, 7] {
        // Rebuilt per pool size: perplexity evaluation accumulates
        // posterior samples, so the reference must have recorded exactly
        // as many as the sampler it is compared against.
        let mut seq =
            SequentialSampler::new(graph.clone(), heldout.clone(), config.clone()).unwrap();
        seq.run(6);
        let mut par =
            ParallelSampler::with_threads(graph.clone(), heldout.clone(), config.clone(), threads)
                .unwrap();
        par.run(6);
        assert_eq!(
            seq.state().theta(),
            par.state().theta(),
            "theta diverged with {threads} pool threads"
        );
        for a in 0..seq.state().n() {
            assert_eq!(
                seq.state().pi_row(a),
                par.state().pi_row(a),
                "pi row {a} diverged with {threads} pool threads"
            );
        }
        let ps = seq.evaluate_perplexity();
        let pp = par.evaluate_perplexity();
        assert_eq!(
            ps, pp,
            "perplexity diverged with {threads} pool threads: {ps} vs {pp}"
        );
    }
}
