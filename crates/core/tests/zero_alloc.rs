//! Pins the zero-allocation steady-state contract: after warmup, a
//! [`ParallelSampler`] `step()` must never touch the heap. Every
//! per-iteration buffer is pre-reserved at its hard upper bound
//! (`Engine::new`, `StepBuffers::new`, `Workspace::new`), the pool
//! publishes jobs as a `Copy` struct, and the mini-batch/neighbor
//! machinery reuses its vectors — so the counter below must stay at
//! exactly zero.
//!
//! This file holds a single test on purpose: the counting allocator is
//! process-global, and a concurrently running test would pollute the
//! count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use mmsb_core::{ParallelSampler, SamplerConfig};
use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
use mmsb_graph::heldout::HeldOut;
use mmsb_rand::Xoshiro256PlusPlus;

/// Wraps [`System`], counting allocations and reallocations (not frees:
/// a free without a matching alloc is impossible, and counting both
/// would double-report) while the gate is up.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_step_is_allocation_free() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
    let gen = generate_planted(
        &PlantedConfig {
            num_vertices: 300,
            num_communities: 6,
            mean_community_size: 55.0,
            memberships_per_vertex: 1.1,
            internal_degree: 10.0,
            background_degree: 0.5,
        },
        &mut rng,
    );
    let (graph, heldout) = HeldOut::split(&gen.graph, 60, &mut rng);

    // The default config uses stratified-node mini-batches, the strategy
    // the zero-allocation contract covers (random-pair dedup keeps a
    // rebuild-per-draw hash set and is exempt).
    let config = SamplerConfig::new(8).with_seed(7);
    let mut sampler = ParallelSampler::with_threads(graph, heldout, config, 3).unwrap();

    // Warm up: first iterations may still grow lazily-reserved buffers
    // (e.g. the strata vector on its first stratified draw).
    sampler.run(60);

    COUNTING.store(true, Ordering::SeqCst);
    sampler.run(40);
    COUNTING.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "steady-state step() hit the allocator {n} times over 40 iterations"
    );
}
