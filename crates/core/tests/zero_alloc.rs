//! Pins the zero-allocation steady-state contract: after warmup, a
//! [`ParallelSampler`] `step()` must never touch the heap — and neither
//! may a warmed double-buffered [`PrefetchingReader`] pass (the pipelined
//! `pi` load path of the distributed samplers) nor a warmed out-of-core
//! [`mmsb_ooc::BlockCache`] read loop (the graph path of the ooc
//! backend). Every per-iteration buffer is pre-reserved at its hard
//! upper bound (`Engine::new`, `StepBuffers::new`, `Workspace::new`,
//! `ReaderScratch`, the cache's block storage and decode scratch), the
//! pool and the background worker publish tasks as unboxed pointer
//! pairs, and the mini-batch/neighbor machinery reuses its vectors — so
//! the counter below must stay at exactly zero.
//!
//! This file holds a single test on purpose: the counting allocator is
//! process-global, and a concurrently running test would pollute the
//! count.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use mmsb_core::{Backend, ParallelSampler, SamplerConfig, SimdPolicy};
use mmsb_dkv::pipeline::{PrefetchingReader, ReaderScratch};
use mmsb_dkv::{DkvStore, Partition, ShardedStore};
use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
use mmsb_graph::heldout::HeldOut;
use mmsb_netsim::NetworkModel;
use mmsb_obs::{ObsConfig, ObsLevel};
use mmsb_rand::Xoshiro256PlusPlus;

/// Wraps [`System`], counting allocations and reallocations (not frees:
/// a free without a matching alloc is impossible, and counting both
/// would double-report) while the gate is up.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: every method forwards its arguments verbatim to `System`, so
// the `GlobalAlloc` contract holds exactly as `System` upholds it; the
// added counting is a relaxed atomic increment with no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: (applies to all four methods) the caller's obligations are passed
    // through unchanged to `System`, which imposes identical ones.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; see the impl-level comment.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards verbatim; see the impl-level comment.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; see the impl-level comment.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: forwards verbatim; see the impl-level comment.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarded verbatim; see the impl-level comment.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: forwards verbatim; see the impl-level comment.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; see the impl-level comment.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_step_is_allocation_free() {
    // Full observability stays on for the whole test: the obs registry
    // and span ring are sized once here, so counters, histograms, and
    // span records land in pre-allocated atomic slots. The gates below
    // therefore also prove instrumentation costs zero heap traffic.
    mmsb_obs::init(ObsConfig::at(ObsLevel::Spans));

    let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
    let gen = generate_planted(
        &PlantedConfig {
            num_vertices: 300,
            num_communities: 6,
            mean_community_size: 55.0,
            memberships_per_vertex: 1.1,
            internal_degree: 10.0,
            background_degree: 0.5,
        },
        &mut rng,
    );
    let (graph, heldout) = HeldOut::split(&gen.graph, 60, &mut rng);

    // The default config uses stratified-node mini-batches, the strategy
    // the zero-allocation contract covers (random-pair dedup keeps a
    // rebuild-per-draw hash set and is exempt). Both kernel backends must
    // uphold the contract: the scalar path uses the legacy kernels, the
    // SIMD path additionally exercises the pre-reserved `PhiScratch` /
    // `ThetaScratch` planes and the pre-drawn noise buffer in
    // `Workspace` — forcing the widest detected backend pins that even on
    // hosts where `Auto` would pick it anyway.
    let backends = [Backend::Scalar, Backend::detect()];
    for (i, &backend) in backends.iter().enumerate() {
        if i > 0 && backend == Backend::Scalar {
            continue; // no SIMD on this host; the scalar pass covered it
        }
        let config = SamplerConfig::new(8)
            .with_seed(7)
            .with_simd(SimdPolicy::Force(backend));
        let mut sampler =
            ParallelSampler::with_threads(graph.clone(), heldout.clone(), config, 3).unwrap();

        // Warm up: first iterations may still grow lazily-reserved buffers
        // (e.g. the strata vector on its first stratified draw).
        sampler.run(60);

        COUNTING.store(true, Ordering::SeqCst);
        sampler.run(40);
        COUNTING.store(false, Ordering::SeqCst);

        let n = ALLOCS.swap(0, Ordering::SeqCst);
        assert_eq!(
            n, 0,
            "steady-state step() on {backend} hit the allocator {n} times over 40 iterations"
        );
    }

    // ---- pipelined path: a warmed PrefetchingReader pass ----
    // The real double-buffered loader must also be allocation-free once
    // warm: the ping-pong row buffers, timing vectors, and chunk table
    // live in the ReaderScratch, and the background worker receives its
    // task as an unboxed pointer pair. The counter is process-global, so
    // any allocation on the prefetch thread would be caught too.
    let row_len = 9;
    let mut store = ShardedStore::new(Partition::new(512, 4), row_len);
    let keys: Vec<u32> = (0..512).collect();
    let vals = vec![1.0f32; keys.len() * row_len];
    store.write_batch(&keys, &vals).unwrap();
    let net = NetworkModel::fdr_infiniband();
    let mut reader = PrefetchingReader::new(64);
    let mut scratch = ReaderScratch::new();
    let mut acc = 0.0f64;
    for _ in 0..5 {
        reader
            .run(&store, 0, &keys, &net, &mut scratch, |_, _, rows| {
                acc += rows[0] as f64;
            })
            .unwrap();
    }

    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..20 {
        reader
            .run(&store, 0, &keys, &net, &mut scratch, |_, _, rows| {
                acc += rows[0] as f64;
            })
            .unwrap();
    }
    COUNTING.store(false, Ordering::SeqCst);
    assert!(acc > 0.0);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "warmed prefetching reader hit the allocator {n} times over 20 passes"
    );

    // ---- write path: warmed write_batch calls ----
    // The duplicate-key check sorts a copy of the batch in a store-owned
    // scratch vector; once that scratch has grown to the largest batch
    // seen, repeated writes (the per-iteration `pi` publish) must not
    // allocate either. The first call above already warmed it with the
    // full 512-key batch, so both full and partial rewrites stay clean.
    let half: Vec<u32> = (0..256).collect();
    let half_vals = vec![2.0f32; half.len() * row_len];
    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..20 {
        store.write_batch(&keys, &vals).unwrap();
        store.write_batch(&half, &half_vals).unwrap();
    }
    COUNTING.store(false, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "warmed write_batch hit the allocator {n} times over 40 writes"
    );

    // ---- out-of-core graph path: warmed BlockCache reads ----
    // The cache's block storage is sized at construction and the decode
    // scratch is reserved at `max_degree`, so once every block has been
    // faulted in, neighbor decodes and membership probes must never
    // touch the heap — even though instrumentation (cache counters, the
    // read-latency histogram) stays fully on.
    let dir = std::env::temp_dir().join(format!("mmsb-zero-alloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.ooc");
    mmsb_ooc::write_graph(
        &graph,
        &path,
        mmsb_ooc::BuildOptions {
            block_size: 4096,
            ..mmsb_ooc::BuildOptions::default()
        },
    )
    .unwrap();
    let ooc = mmsb_ooc::OocGraph::open(&path).unwrap();
    // Oversize the cache so the working set is eviction-free once warm.
    let mut cache = mmsb_ooc::BlockCache::for_graph(&ooc, 4 * ooc.header().num_blocks as usize, 5);
    let mut edges_seen = 0u64;
    {
        let mut reader = mmsb_ooc::OocReader::new(&ooc, &mut cache);
        for v in 0..ooc.num_vertices() {
            edges_seen += reader.try_neighbors(mmsb_graph::VertexId(v)).unwrap().len() as u64;
        }
        assert!(edges_seen > 0);

        COUNTING.store(true, Ordering::SeqCst);
        for _ in 0..10 {
            for v in 0..ooc.num_vertices() {
                edges_seen +=
                    reader.try_neighbors(mmsb_graph::VertexId(v)).unwrap().len() as u64;
                let probe = mmsb_graph::VertexId((v + 1) % ooc.num_vertices());
                edges_seen +=
                    u64::from(reader.try_has_edge(mmsb_graph::VertexId(v), probe).unwrap());
            }
        }
        COUNTING.store(false, Ordering::SeqCst);
    }
    assert!(edges_seen > 0);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "warmed out-of-core read loop hit the allocator {n} times over 10 passes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
