//! Checkpoint/restore of the full sampler chain state.
//!
//! A checkpoint captures everything the chain's future depends on — the
//! state arrays (`pi`, `sum(phi)`, optionally full `phi`), `theta`/`beta`,
//! both master RNG streams, the iteration counter, and the running
//! perplexity accumulator — so a killed run restored from disk continues
//! producing the *bitwise-identical* trajectory the uninterrupted run
//! would have (per-vertex randomness is re-derived from
//! `(seed, iteration, vertex)` and needs no capture).
//!
//! # On-disk format (version 1)
//!
//! Little-endian throughout:
//!
//! ```text
//! magic     8  b"MMSBCKP1"
//! version   u32
//! layout    u8              0 = PiSumPhi, 1 = FullPhi
//! n         u32
//! k         u64
//! seed      u64
//! iteration u64
//! pairs     u64             held-out pair count
//! samples   u64             perplexity samples recorded
//! master    4 x u64         master RNG state
//! theta_rng 4 x u64
//! pi        n*k x f32
//! phi_sum   n x f32
//! phi       (n*k | 0) x f64 present only for FullPhi
//! theta     2k x f64
//! beta      k x f64
//! probs     pairs x f64     perplexity probability sums
//! crc       u32             CRC-32 of every preceding byte
//! ```
//!
//! The trailing CRC-32 (IEEE 802.3 polynomial, implemented in-tree) makes
//! a flipped byte anywhere in the file a load-time
//! [`CheckpointError::ChecksumMismatch`] instead of a silently corrupted
//! chain.

use crate::config::StateLayout;
use crate::perplexity::PerplexityAccumulator;
use crate::sampler::Engine;
use crate::state::ModelState;
use crate::CoreError;
use mmsb_rand::Xoshiro256PlusPlus;
use std::path::Path;

/// File magic: "MMSB" + "CKP" + format generation.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"MMSBCKP1";
/// Current format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Errors from checkpoint encoding, decoding, and file I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(String),
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// The trailing CRC-32 does not match the body.
    ChecksumMismatch,
    /// The file ended before the declared payload.
    Truncated,
    /// The checkpoint is internally valid but does not fit the sampler it
    /// was offered to (different graph size, `k`, seed, or layout).
    Mismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "checkpoint version {found} unsupported (max {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Mismatch { reason } => {
                write!(f, "checkpoint does not match sampler: {reason}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

// ---------------------------------------------------------------- CRC-32

// The checkpoint checksum now lives in `mmsb-ooc` (the on-disk graph
// format shares it); re-exported here so `mmsb_core::checkpoint::crc32`
// keeps working.
pub use mmsb_ooc::crc32;

// ------------------------------------------------------------ serializer

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Byte reader with truncation checking.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CheckpointError::Truncated)?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f32s(&mut self, count: usize) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.take(count.checked_mul(4).ok_or(CheckpointError::Truncated)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    fn f64s(&mut self, count: usize) -> Result<Vec<f64>, CheckpointError> {
        let raw = self.take(count.checked_mul(8).ok_or(CheckpointError::Truncated)?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8")))
            .collect())
    }

    fn rng_state(&mut self) -> Result<[u64; 4], CheckpointError> {
        Ok([self.u64()?, self.u64()?, self.u64()?, self.u64()?])
    }
}

// ------------------------------------------------------------ checkpoint

/// A restorable snapshot of the sampler chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    layout: StateLayout,
    n: u32,
    k: usize,
    seed: u64,
    iteration: u64,
    master_rng: [u64; 4],
    theta_rng: [u64; 4],
    pi: Vec<f32>,
    phi_sum: Vec<f32>,
    phi: Vec<f64>,
    theta: Vec<f64>,
    beta: Vec<f64>,
    prob_sums: Vec<f64>,
    samples: u64,
}

impl Checkpoint {
    /// Snapshot `engine`'s full chain state.
    pub(crate) fn capture(engine: &Engine) -> Self {
        let (pi, phi_sum, phi) = engine.state.flat_arrays();
        let (prob_sums, samples) = engine.perplexity.snapshot();
        Self {
            layout: engine.state.layout(),
            n: engine.state.n(),
            k: engine.state.k(),
            seed: engine.config.seed,
            iteration: engine.iteration,
            master_rng: engine.master_rng.state(),
            theta_rng: engine.theta_rng.state(),
            pi: pi.to_vec(),
            phi_sum: phi_sum.to_vec(),
            phi: phi.to_vec(),
            theta: engine.state.theta().to_vec(),
            beta: engine.state.beta().to_vec(),
            prob_sums: prob_sums.to_vec(),
            samples,
        }
    }

    /// Install this snapshot into `engine`, rewinding (or fast-forwarding)
    /// it to the captured point of the chain.
    pub(crate) fn install(&self, engine: &mut Engine) -> Result<(), CoreError> {
        if engine.state.n() != self.n
            || engine.state.k() != self.k
            || engine.state.layout() != self.layout
        {
            return Err(CoreError::Checkpoint(CheckpointError::Mismatch {
                reason: format!(
                    "sampler has n={} k={} {:?}, checkpoint has n={} k={} {:?}",
                    engine.state.n(),
                    engine.state.k(),
                    engine.state.layout(),
                    self.n,
                    self.k,
                    self.layout
                ),
            }));
        }
        if engine.config.seed != self.seed {
            return Err(CoreError::Checkpoint(CheckpointError::Mismatch {
                reason: format!(
                    "sampler seed {} != checkpoint seed {}",
                    engine.config.seed, self.seed
                ),
            }));
        }
        if engine.heldout.len() != self.prob_sums.len() {
            return Err(CoreError::Checkpoint(CheckpointError::Mismatch {
                reason: format!(
                    "sampler has {} held-out pairs, checkpoint has {}",
                    engine.heldout.len(),
                    self.prob_sums.len()
                ),
            }));
        }
        engine.state = ModelState::from_flat_arrays(
            self.n,
            self.k,
            self.layout,
            self.pi.clone(),
            self.phi_sum.clone(),
            self.phi.clone(),
            self.theta.clone(),
            self.beta.clone(),
        )?;
        engine.master_rng = Xoshiro256PlusPlus::from_state(self.master_rng);
        engine.theta_rng = Xoshiro256PlusPlus::from_state(self.theta_rng);
        engine.perplexity =
            PerplexityAccumulator::from_snapshot(self.prob_sums.clone(), self.samples);
        engine.iteration = self.iteration;
        Ok(())
    }

    /// The iteration this checkpoint was taken at.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// The sampler seed the captured chain runs under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of vertices in the captured model.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of communities in the captured model.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The state layout the chain ran under.
    pub fn layout(&self) -> StateLayout {
        self.layout
    }

    /// The captured memberships, flat row-major `n x k` (vertex-major).
    /// This plus [`Self::beta`] is everything a read-only model server
    /// needs to answer Eq. 7 and membership queries.
    pub fn pi(&self) -> &[f32] {
        &self.pi
    }

    /// The captured community strengths `beta`, length `k`.
    pub fn beta(&self) -> &[f64] {
        &self.beta
    }

    /// Serialize to the versioned, checksummed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.pi.len() * 4
                + self.phi_sum.len() * 4
                + self.phi.len() * 8
                + (self.theta.len() + self.beta.len() + self.prob_sums.len()) * 8,
        );
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        put_u32(&mut out, CHECKPOINT_VERSION);
        out.push(match self.layout {
            StateLayout::PiSumPhi => 0,
            StateLayout::FullPhi => 1,
        });
        put_u32(&mut out, self.n);
        put_u64(&mut out, self.k as u64);
        put_u64(&mut out, self.seed);
        put_u64(&mut out, self.iteration);
        put_u64(&mut out, self.prob_sums.len() as u64);
        put_u64(&mut out, self.samples);
        for w in self.master_rng.iter().chain(&self.theta_rng) {
            put_u64(&mut out, *w);
        }
        put_f32s(&mut out, &self.pi);
        put_f32s(&mut out, &self.phi_sum);
        put_f64s(&mut out, &self.phi);
        put_f64s(&mut out, &self.theta);
        put_f64s(&mut out, &self.beta);
        put_f64s(&mut out, &self.prob_sums);
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Deserialize, verifying magic, version, length, and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() + 4 + 4 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..8] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(tail.try_into().expect("4"));
        if crc32(body) != stored {
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut c = Cursor {
            bytes: body,
            pos: 8,
        };
        let version = c.u32()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let layout = match c.u8()? {
            0 => StateLayout::PiSumPhi,
            1 => StateLayout::FullPhi,
            l => {
                return Err(CheckpointError::Mismatch {
                    reason: format!("unknown layout tag {l}"),
                })
            }
        };
        let n = c.u32()?;
        let k = usize::try_from(c.u64()?).map_err(|_| CheckpointError::Truncated)?;
        let seed = c.u64()?;
        let iteration = c.u64()?;
        let pairs = usize::try_from(c.u64()?).map_err(|_| CheckpointError::Truncated)?;
        let samples = c.u64()?;
        let master_rng = c.rng_state()?;
        let theta_rng = c.rng_state()?;
        let nk = (n as usize)
            .checked_mul(k)
            .ok_or(CheckpointError::Truncated)?;
        let pi = c.f32s(nk)?;
        let phi_sum = c.f32s(n as usize)?;
        let phi = match layout {
            StateLayout::FullPhi => c.f64s(nk)?,
            StateLayout::PiSumPhi => Vec::new(),
        };
        let theta = c.f64s(2 * k)?;
        let beta = c.f64s(k)?;
        let prob_sums = c.f64s(pairs)?;
        if c.pos != body.len() {
            return Err(CheckpointError::Mismatch {
                reason: format!("{} trailing bytes", body.len() - c.pos),
            });
        }
        Ok(Self {
            layout,
            n,
            k,
            seed,
            iteration,
            master_rng,
            theta_rng,
            pi,
            phi_sum,
            phi,
            theta,
            beta,
            prob_sums,
            samples,
        })
    }

    /// Write the serialized checkpoint to `path` (atomically: a temp file
    /// in the same directory renamed over the target, so a crash mid-write
    /// never leaves a half-written checkpoint under the real name).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes()).map_err(|e| CheckpointError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Load and verify a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            layout: StateLayout::PiSumPhi,
            n: 3,
            k: 2,
            seed: 7,
            iteration: 42,
            master_rng: [1, 2, 3, 4],
            theta_rng: [5, 6, 7, 8],
            pi: vec![0.5, 0.5, 0.25, 0.75, 1.0, 0.0],
            phi_sum: vec![1.5, 2.5, 3.5],
            phi: Vec::new(),
            theta: vec![1.0, 2.0, 3.0, 4.0],
            beta: vec![0.5, 0.25],
            prob_sums: vec![0.9, 0.8],
            samples: 1,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for len in 0..bytes.len() {
            assert!(Checkpoint::from_bytes(&bytes[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_distinguished() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));

        let mut bytes = sample_checkpoint().to_bytes();
        // Bump the version *and* re-seal the CRC so only the version is bad.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(CheckpointError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains('9'));
        assert!(CheckpointError::Io("gone".into()).to_string().contains("gone"));
    }
}
