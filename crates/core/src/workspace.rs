//! Per-thread scratch buffers for the zero-allocation hot path.
//!
//! Each pool worker owns one [`Workspace`]; every buffer the per-vertex
//! `phi` update and the per-chunk `theta` gradient need lives here, so the
//! steady-state iteration loop performs no heap allocation. Workspace
//! contents are pure scratch — they never influence results, which is why
//! dynamic chunk-to-worker assignment cannot perturb the chain.

use mmsb_graph::{FxHashSet, VertexId};
use mmsb_ooc::BlockCache;
use mmsb_simd::{PhiScratch, ThetaScratch};

/// Reusable scratch for one worker thread.
pub(crate) struct Workspace {
    /// The center vertex's `phi` row (`K` f64s).
    pub phi_a: Vec<f64>,
    /// Gathered neighbor `pi` rows (`|V_n| * K` f32s).
    pub rows: Vec<f32>,
    /// Per-neighbor observations `y_ab`.
    pub linked: Vec<bool>,
    /// `f_diag` scratch of the theta kernel (`K` f64s).
    pub grad: Vec<f64>,
    /// Ping-pong `f` scratch of the phi kernel (`2K` f64s).
    pub f: Vec<f64>,
    /// Pre-drawn standard-normal variates for the SIMD SGRLD step
    /// (`K` f64s, drawn in coordinate order).
    pub noise: Vec<f64>,
    /// Accepted polar `u` components feeding the vectorized normal
    /// finish (`K` f64s, coordinate order).
    pub noise_u: Vec<f64>,
    /// Accepted polar `s = u² + v²` components paired with `noise_u`.
    pub noise_s: Vec<f64>,
    /// Plane scratch of the SIMD phi-gradient kernel.
    pub phi_scratch: PhiScratch,
    /// Context + accumulator planes of the SIMD theta kernel.
    pub theta_scratch: ThetaScratch,
    /// Sampled neighbor set.
    pub neighbors: Vec<VertexId>,
    /// Dedup set for neighbor rejection sampling.
    pub seen: FxHashSet<u32>,
    /// This worker's block cache for out-of-core adjacency reads
    /// (`None` for resident graphs). Pure scratch, like everything else
    /// here — cache contents never influence results.
    pub graph_cache: Option<BlockCache>,
}

impl Workspace {
    /// Create a workspace sized for `k` communities and neighbor sets of
    /// up to `neighbor_sample` vertices.
    pub fn new(k: usize, neighbor_sample: usize) -> Self {
        let mut seen = FxHashSet::default();
        // Rejection sampling can insert more candidates than it keeps
        // (held-out exclusions); over-reserve so the set never regrows.
        seen.reserve((neighbor_sample * 4).max(64));
        Self {
            phi_a: vec![0.0; k],
            rows: Vec::with_capacity(neighbor_sample * k),
            linked: Vec::with_capacity(neighbor_sample),
            grad: vec![0.0; k],
            f: vec![0.0; 2 * k],
            noise: Vec::with_capacity(k),
            noise_u: Vec::with_capacity(k),
            noise_s: Vec::with_capacity(k),
            phi_scratch: PhiScratch::new(k),
            theta_scratch: ThetaScratch::new(k),
            neighbors: Vec::with_capacity(neighbor_sample),
            seen,
            graph_cache: None,
        }
    }

    /// Attach an out-of-core block cache (builder style; drivers create
    /// one per workspace via `GraphBackend::new_cache`).
    pub fn with_graph_cache(mut self, cache: Option<BlockCache>) -> Self {
        self.graph_cache = cache;
        self
    }
}
