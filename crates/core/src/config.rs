//! Sampler hyperparameters and configuration.

use crate::CoreError;
use mmsb_graph::minibatch::Strategy;
use mmsb_simd::{Backend, SimdPolicy};

/// The SGRLD step-size schedule `eps_t = a * (1 + t/b)^(-c)`.
///
/// `c` in `(0.5, 1]` satisfies the Robbins–Monro conditions
/// (`sum eps = inf`, `sum eps^2 < inf`). Defaults follow Li, Ahn & Welling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSize {
    /// Initial scale `a`.
    pub a: f64,
    /// Decay offset `b`.
    pub b: f64,
    /// Decay exponent `c`.
    pub c: f64,
}

impl Default for StepSize {
    fn default() -> Self {
        Self {
            a: 0.01,
            b: 1024.0,
            c: 0.55,
        }
    }
}

impl StepSize {
    /// The step size at iteration `t` (0-based).
    #[inline]
    pub fn at(&self, t: u64) -> f64 {
        self.a * (1.0 + t as f64 / self.b).powf(-self.c)
    }

    fn validate(&self) -> Result<(), CoreError> {
        if !(self.a > 0.0 && self.b > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("step size a={}, b={} must be positive", self.a, self.b),
            });
        }
        if !(self.c > 0.5 && self.c <= 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("step decay c={} outside (0.5, 1]", self.c),
            });
        }
        Ok(())
    }
}

/// How the per-vertex state is laid out (paper §III-A ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateLayout {
    /// Store `pi` (f32) plus `sum(phi)` and recompute `phi = pi * sum` on
    /// demand — the paper's choice: halves memory at the cost of one
    /// multiply per element and f32 rounding of the chain state.
    PiSumPhi,
    /// Store the full `phi` matrix in f64. Twice the memory (and 2x again
    /// for f64), exact chain state. Only available to single-node
    /// samplers; the distributed DKV path always uses [`Self::PiSumPhi`].
    FullPhi,
}

/// Full sampler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Number of latent communities `K`.
    pub k: usize,
    /// Dirichlet concentration `alpha` for memberships (default `1/K`).
    pub alpha: f64,
    /// Beta prior `eta = (eta0, eta1)` for community strengths.
    pub eta: (f64, f64),
    /// Inter-community link probability `delta`.
    pub delta: f64,
    /// Step-size schedule.
    pub step: StepSize,
    /// Mini-batch strategy.
    pub minibatch: Strategy,
    /// Neighbor-set size `|V_n|` per mini-batch vertex.
    pub neighbor_sample: usize,
    /// Master RNG seed; all randomness derives from it.
    pub seed: u64,
    /// State layout.
    pub layout: StateLayout,
    /// Kernel backend selection for the phi/theta hot path.
    ///
    /// `Auto` (the default) picks the widest SIMD backend the host
    /// supports; `Force(Backend::Scalar)` routes every kernel through
    /// the legacy scalar code, reproducing pre-SIMD chains bit for bit.
    /// Chains are bitwise-reproducible per backend (same backend, seed,
    /// and thread count ⇒ identical bytes), but different backends
    /// round differently in the last ulps — force one for cross-host
    /// reproducibility.
    pub simd: SimdPolicy,
    /// Per-reader block-cache capacity (in blocks) for out-of-core
    /// graphs; ignored by resident backends. Cache size is pure scratch
    /// — any value yields the same chain — so this only trades memory
    /// for disk reads.
    pub graph_cache_blocks: usize,
}

impl SamplerConfig {
    /// A configuration with `k` communities and the paper's defaults:
    /// `alpha = 1/K`, `eta = (1, 1)`, `delta = 1e-5`, stratified-node
    /// mini-batches with 32 non-link strata, `|V_n| = 32`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            alpha: 1.0 / k.max(1) as f64,
            eta: (1.0, 1.0),
            delta: 1e-5,
            step: StepSize::default(),
            minibatch: Strategy::StratifiedNode {
                partitions: 32,
                anchors: 32,
            },
            neighbor_sample: 32,
            seed: 42,
            layout: StateLayout::PiSumPhi,
            simd: SimdPolicy::Auto,
            graph_cache_blocks: mmsb_ooc::DEFAULT_CACHE_BLOCKS,
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the mini-batch strategy.
    pub fn with_minibatch(mut self, strategy: Strategy) -> Self {
        self.minibatch = strategy;
        self
    }

    /// Set the neighbor-sample size `|V_n|`.
    pub fn with_neighbor_sample(mut self, n: usize) -> Self {
        self.neighbor_sample = n;
        self
    }

    /// Set the state layout.
    pub fn with_layout(mut self, layout: StateLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Set the step-size schedule.
    pub fn with_step(mut self, step: StepSize) -> Self {
        self.step = step;
        self
    }

    /// Set the SIMD backend policy.
    pub fn with_simd(mut self, simd: SimdPolicy) -> Self {
        self.simd = simd;
        self
    }

    /// The concrete kernel backend this configuration resolves to.
    ///
    /// [`Self::validate`] guarantees resolution succeeds for any config
    /// a sampler accepts; on an unvalidated config with an impossible
    /// forced backend this falls back to scalar rather than panicking.
    pub fn backend(&self) -> Backend {
        self.simd.resolve().unwrap_or(Backend::Scalar)
    }

    /// Set the out-of-core block-cache capacity (blocks per reader).
    pub fn with_graph_cache_blocks(mut self, blocks: usize) -> Self {
        self.graph_cache_blocks = blocks.max(1);
        self
    }

    /// Set `delta`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Validate against a graph of `num_vertices` vertices.
    pub fn validate(&self, num_vertices: u32) -> Result<(), CoreError> {
        if self.k == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "k must be at least 1".into(),
            });
        }
        if self.alpha <= 0.0 || self.alpha.is_nan() {
            return Err(CoreError::InvalidConfig {
                reason: format!("alpha = {} must be positive", self.alpha),
            });
        }
        if !(self.eta.0 > 0.0 && self.eta.1 > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("eta = {:?} must be positive", self.eta),
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("delta = {} outside (0, 1)", self.delta),
            });
        }
        self.step.validate()?;
        self.simd
            .resolve()
            .map_err(|e| CoreError::InvalidConfig {
                reason: e.to_string(),
            })?;
        if num_vertices < 2 {
            return Err(CoreError::GraphTooSmall {
                reason: format!("{num_vertices} vertices"),
            });
        }
        if self.neighbor_sample == 0 || self.neighbor_sample >= num_vertices as usize {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "neighbor sample {} must be in [1, N) with N = {num_vertices}",
                    self.neighbor_sample
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_size_decays_and_starts_at_a() {
        let s = StepSize::default();
        assert!((s.at(0) - 0.01).abs() < 1e-15);
        assert!(s.at(100) < s.at(0));
        assert!(s.at(10_000) < s.at(100));
        assert!(s.at(1_000_000) > 0.0);
    }

    #[test]
    fn step_size_robbins_monro_shape() {
        // With c in (0.5, 1], the tail sum of eps^2 over a long horizon is
        // finite-ish while eps decays slower than 1/t.
        let s = StepSize::default();
        let t1 = s.at(1_000);
        let t2 = s.at(4_000);
        // c = 0.55: quadrupling t should shrink eps by < 4x (sub-linear).
        assert!(t1 / t2 < 4.0);
    }

    #[test]
    fn defaults_validate() {
        let c = SamplerConfig::new(8);
        assert!(c.validate(100).is_ok());
        assert!((c.alpha - 0.125).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(SamplerConfig::new(0).validate(100).is_err());
        assert!(SamplerConfig::new(4)
            .with_delta(0.0)
            .validate(100)
            .is_err());
        assert!(SamplerConfig::new(4)
            .with_delta(1.0)
            .validate(100)
            .is_err());
        let mut c = SamplerConfig::new(4);
        c.alpha = -1.0;
        assert!(c.validate(100).is_err());
        let mut c = SamplerConfig::new(4);
        c.eta = (0.0, 1.0);
        assert!(c.validate(100).is_err());
        let mut c = SamplerConfig::new(4);
        c.step.c = 0.4;
        assert!(c.validate(100).is_err());
        assert!(SamplerConfig::new(4)
            .with_neighbor_sample(100)
            .validate(100)
            .is_err());
        assert!(SamplerConfig::new(4)
            .with_neighbor_sample(0)
            .validate(100)
            .is_err());
        assert!(SamplerConfig::new(4).validate(1).is_err());
    }

    #[test]
    fn builders_set_fields() {
        let c = SamplerConfig::new(4)
            .with_seed(9)
            .with_neighbor_sample(16)
            .with_layout(StateLayout::FullPhi)
            .with_delta(0.001)
            .with_simd(SimdPolicy::Force(Backend::Scalar));
        assert_eq!(c.seed, 9);
        assert_eq!(c.neighbor_sample, 16);
        assert_eq!(c.layout, StateLayout::FullPhi);
        assert_eq!(c.delta, 0.001);
        assert_eq!(c.simd, SimdPolicy::Force(Backend::Scalar));
        assert_eq!(c.backend(), Backend::Scalar);
    }

    #[test]
    fn simd_policy_validates_against_host() {
        // Auto and forced-scalar always validate; a backend foreign to
        // this architecture must be rejected with its name in the error.
        assert!(SamplerConfig::new(4).validate(100).is_ok());
        assert!(SamplerConfig::new(4)
            .with_simd(SimdPolicy::Force(Backend::Scalar))
            .validate(100)
            .is_ok());
        #[cfg(target_arch = "x86_64")]
        let foreign = Backend::Neon;
        #[cfg(not(target_arch = "x86_64"))]
        let foreign = Backend::Avx2;
        let err = SamplerConfig::new(4)
            .with_simd(SimdPolicy::Force(foreign))
            .validate(100)
            .unwrap_err();
        assert!(err.to_string().contains(foreign.name()), "{err}");
    }

    #[test]
    fn unvalidated_backend_falls_back_to_scalar() {
        #[cfg(target_arch = "x86_64")]
        let foreign = Backend::Neon;
        #[cfg(not(target_arch = "x86_64"))]
        let foreign = Backend::Avx2;
        let c = SamplerConfig::new(4).with_simd(SimdPolicy::Force(foreign));
        assert_eq!(c.backend(), Backend::Scalar);
    }
}
