//! Randomness plumbing shared by all samplers.
//!
//! Parallel and distributed execution must reproduce the sequential chain
//! bit-for-bit. That works only if no random draw depends on *which thread
//! or rank* performs it, so:
//!
//! * the **master stream** (mini-batch selection, `theta` noise) is a
//!   single `Xoshiro256PlusPlus` stream consumed only by the logical
//!   master in a fixed order, and
//! * every **per-vertex draw** (neighbor sets, `phi` noise) comes from a
//!   throwaway generator derived from `(seed, iteration, vertex)` by
//!   hashing — identical wherever the vertex's work happens to run.

use mmsb_rand::{RngCore, SplitMix64, Xoshiro256PlusPlus};

/// Stream index of the master RNG (mini-batch selection).
const STREAM_MASTER: u64 = 0;
/// Stream index of the state-initialization RNG.
const STREAM_INIT: u64 = 1;
/// Stream index of the theta-noise RNG. Kept separate from the mini-batch
/// stream so that a pipelining master — which draws mini-batch `t + 1`
/// *before* applying theta noise `t` — consumes randomness in a different
/// order without changing the chain.
const STREAM_THETA: u64 = 2;

/// The master stream for a given seed.
pub fn master_rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::stream(seed, STREAM_MASTER)
}

/// The initialization stream for a given seed.
pub fn init_rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::stream(seed, STREAM_INIT)
}

/// The theta-noise stream for a given seed.
pub fn theta_rng(seed: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::stream(seed, STREAM_THETA)
}

/// A deterministic per-`(iteration, vertex)` generator.
///
/// Two rounds of SplitMix64 whitening over the packed inputs give seeds
/// with no observable correlation across adjacent iterations/vertices.
pub fn vertex_rng(seed: u64, iteration: u64, vertex: u32) -> Xoshiro256PlusPlus {
    let mut sm = SplitMix64::new(seed ^ iteration.rotate_left(32));
    let a = sm.next_u64();
    let mut sm = SplitMix64::new(a ^ u64::from(vertex));
    Xoshiro256PlusPlus::seed_from_u64(sm.next_u64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::Rng;

    #[test]
    fn streams_are_distinct() {
        let mut m = master_rng(5);
        let mut i = init_rng(5);
        let mut t = theta_rng(5);
        let (a, b, c) = (m.next_u64(), i.next_u64(), t.next_u64());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn vertex_rng_is_reproducible() {
        let mut a = vertex_rng(1, 10, 3);
        let mut b = vertex_rng(1, 10, 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn vertex_rng_varies_with_all_inputs() {
        let base: Vec<u64> = {
            let mut r = vertex_rng(1, 10, 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        for (s, it, v) in [(2u64, 10u64, 3u32), (1, 11, 3), (1, 10, 4)] {
            let mut r = vertex_rng(s, it, v);
            let other: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
            assert_ne!(base, other, "seed={s} iter={it} vertex={v}");
        }
    }

    #[test]
    fn vertex_rng_first_draws_look_uniform() {
        // Mean of the first f64 across many (iter, vertex) cells should be
        // near 0.5 — catches gross seeding correlation.
        let n = 20_000;
        let mut sum = 0.0;
        for i in 0..100u64 {
            for v in 0..200u32 {
                sum += vertex_rng(7, i, v).next_f64();
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
