//! Posterior averaging of the membership matrix.
//!
//! A single MCMC state is one posterior sample; Eq. 7 already averages
//! per-pair probabilities across samples for perplexity, and the same
//! should be done for community extraction: average `pi` over the thinned
//! tail of the chain, then threshold. This smooths the per-sample Langevin
//! noise out of the reported memberships.

use crate::communities::Communities;
use crate::ModelState;
use mmsb_graph::VertexId;

/// Running mean of `pi` across recorded posterior samples.
#[derive(Debug, Clone)]
pub struct PosteriorMean {
    n: u32,
    k: usize,
    /// `N x K` running sums (f64 to avoid drift across many samples).
    sums: Vec<f64>,
    samples: u64,
}

impl PosteriorMean {
    /// Create an accumulator for an `N x K` membership matrix.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(n: u32, k: usize) -> Self {
        assert!(n > 0 && k > 0, "posterior mean needs n > 0 and k > 0");
        Self {
            n,
            k,
            sums: vec![0.0; n as usize * k],
            samples: 0,
        }
    }

    /// Record one posterior sample.
    ///
    /// # Panics
    /// Panics if the state's dimensions disagree with the accumulator.
    pub fn record(&mut self, state: &ModelState) {
        assert_eq!(state.n(), self.n, "vertex-count mismatch");
        assert_eq!(state.k(), self.k, "community-count mismatch");
        for a in 0..self.n {
            let row = state.pi_row(a);
            let base = a as usize * self.k;
            for (j, &p) in row.iter().enumerate() {
                self.sums[base + j] += p as f64;
            }
        }
        self.samples += 1;
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The averaged membership row of vertex `a`.
    ///
    /// # Panics
    /// Panics if no samples were recorded.
    pub fn mean_pi_row(&self, a: VertexId) -> Vec<f32> {
        assert!(self.samples > 0, "no posterior samples recorded");
        let t = self.samples as f64;
        let base = a.index() * self.k;
        self.sums[base..base + self.k]
            .iter()
            .map(|&s| (s / t) as f32)
            .collect()
    }

    /// Threshold-extract communities from the *averaged* memberships.
    ///
    /// # Panics
    /// Panics if no samples were recorded or the threshold is outside
    /// `[0, 1)`.
    pub fn communities(&self, threshold: f32) -> Communities {
        assert!(self.samples > 0, "no posterior samples recorded");
        assert!(
            (0.0..1.0).contains(&threshold),
            "threshold {threshold} outside [0, 1)"
        );
        let t = self.samples as f64;
        let mut members = vec![Vec::new(); self.k];
        for a in 0..self.n {
            let base = a as usize * self.k;
            for (c, member_list) in members.iter_mut().enumerate() {
                if (self.sums[base + c] / t) as f32 > threshold {
                    member_list.push(VertexId(a));
                }
            }
        }
        Communities { members }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StateLayout;
    use mmsb_rand::Xoshiro256PlusPlus;

    fn state(seed: u64) -> ModelState {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        ModelState::init(10, 3, StateLayout::PiSumPhi, 0.5, (1.0, 1.0), &mut rng).unwrap()
    }

    #[test]
    fn single_sample_mean_equals_the_sample() {
        let s = state(1);
        let mut pm = PosteriorMean::new(10, 3);
        pm.record(&s);
        for a in 0..10 {
            let mean = pm.mean_pi_row(VertexId(a));
            for (m, &p) in mean.iter().zip(s.pi_row(a)) {
                assert!((m - p).abs() < 1e-7);
            }
        }
        assert_eq!(pm.samples(), 1);
    }

    #[test]
    fn mean_of_two_samples_is_the_midpoint() {
        let s1 = state(1);
        let s2 = state(2);
        let mut pm = PosteriorMean::new(10, 3);
        pm.record(&s1);
        pm.record(&s2);
        let mean = pm.mean_pi_row(VertexId(0));
        for (j, &m) in mean.iter().enumerate() {
            let expected = 0.5 * (s1.pi_row(0)[j] as f64 + s2.pi_row(0)[j] as f64);
            assert!((m as f64 - expected).abs() < 1e-7, "j={j}");
        }
    }

    #[test]
    fn averaged_rows_remain_on_simplex() {
        let mut pm = PosteriorMean::new(10, 3);
        for seed in 0..5 {
            pm.record(&state(seed));
        }
        for a in 0..10 {
            let sum: f32 = pm.mean_pi_row(VertexId(a)).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "vertex {a} sum {sum}");
        }
    }

    #[test]
    fn communities_from_average() {
        let mut pm = PosteriorMean::new(10, 3);
        pm.record(&state(7));
        let c = pm.communities(0.1);
        assert_eq!(c.num_communities(), 3);
    }

    #[test]
    #[should_panic(expected = "no posterior samples")]
    fn empty_accumulator_panics_on_read() {
        PosteriorMean::new(4, 2).mean_pi_row(VertexId(0));
    }

    #[test]
    #[should_panic(expected = "community-count mismatch")]
    fn dimension_mismatch_panics() {
        let s = state(1); // k = 3
        PosteriorMean::new(10, 4).record(&s);
    }
}
