//! Extracting overlapping communities from the inferred memberships.

use crate::ModelState;
use mmsb_graph::generate::GroundTruth;
use mmsb_graph::VertexId;

/// An overlapping community assignment: for each community, its members.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Communities {
    /// `members[k]` lists the vertices assigned to community `k` (sorted).
    pub members: Vec<Vec<VertexId>>,
}

impl Communities {
    /// Threshold-extract communities: vertex `a` belongs to community `k`
    /// iff `pi_a[k] > threshold`. The conventional threshold for a
    /// `K`-community model is a multiple of the uniform mass `1/K`.
    pub fn from_state(state: &ModelState, threshold: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&threshold),
            "threshold {threshold} outside [0, 1)"
        );
        let mut members = vec![Vec::new(); state.k()];
        for a in 0..state.n() {
            for (c, &p) in state.pi_row(a).iter().enumerate() {
                if p > threshold {
                    members[c].push(VertexId(a));
                }
            }
        }
        Self { members }
    }

    /// Number of communities (including empty ones).
    pub fn num_communities(&self) -> usize {
        self.members.len()
    }

    /// Number of non-empty communities.
    pub fn num_nonempty(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// Per-vertex membership lists.
    pub fn memberships(&self, num_vertices: u32) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); num_vertices as usize];
        for (c, members) in self.members.iter().enumerate() {
            for &v in members {
                out[v.index()].push(c);
            }
        }
        out
    }

    /// Convert to the graph crate's ground-truth representation (for
    /// symmetric evaluation calls).
    pub fn to_ground_truth(&self) -> GroundTruth {
        GroundTruth {
            communities: self.members.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StateLayout;
    use mmsb_rand::Xoshiro256PlusPlus;

    fn state_with_rows(rows: &[[f64; 3]]) -> ModelState {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut s = ModelState::init(
            rows.len() as u32,
            3,
            StateLayout::PiSumPhi,
            0.5,
            (1.0, 1.0),
            &mut rng,
        )
        .unwrap();
        for (a, row) in rows.iter().enumerate() {
            s.set_phi_row(a as u32, row);
        }
        s
    }

    #[test]
    fn threshold_extraction() {
        // pi rows: [0.8, 0.1, 0.1], [0.45, 0.45, 0.1], [0.05, 0.05, 0.9]
        let s = state_with_rows(&[[8.0, 1.0, 1.0], [4.5, 4.5, 1.0], [0.5, 0.5, 9.0]]);
        let c = Communities::from_state(&s, 1.0 / 3.0);
        assert_eq!(c.members[0], vec![VertexId(0), VertexId(1)]);
        assert_eq!(c.members[1], vec![VertexId(1)]);
        assert_eq!(c.members[2], vec![VertexId(2)]);
        assert_eq!(c.num_communities(), 3);
        assert_eq!(c.num_nonempty(), 3);
    }

    #[test]
    fn overlap_is_captured() {
        let s = state_with_rows(&[[5.0, 5.0, 0.1]]);
        let c = Communities::from_state(&s, 0.3);
        let m = c.memberships(1);
        assert_eq!(m[0], vec![0, 1], "vertex should sit in two communities");
    }

    #[test]
    fn high_threshold_empties_communities() {
        let s = state_with_rows(&[[1.0, 1.0, 1.0]]);
        let c = Communities::from_state(&s, 0.9);
        assert_eq!(c.num_nonempty(), 0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let s = state_with_rows(&[[1.0, 1.0, 1.0]]);
        Communities::from_state(&s, 1.5);
    }

    #[test]
    fn ground_truth_conversion_preserves_members() {
        let s = state_with_rows(&[[8.0, 1.0, 1.0], [1.0, 8.0, 1.0]]);
        let c = Communities::from_state(&s, 0.5);
        let gt = c.to_ground_truth();
        assert_eq!(gt.communities, c.members);
    }
}
