//! The global-parameter update (Eq. 3/4): SGRLD step on `theta`.

use crate::state::PHI_MIN;
use mmsb_rand::dist::Normal;
use mmsb_rand::RngCore;

/// Accumulate one pair's contribution to the `theta` gradient (Eq. 4)
/// into `grad` (flat `K x 2`, `grad[2k + i]`), scaled by the pair's
/// mini-batch `weight` (the stratum scale `h`, divided by the number of
/// averaged strata).
///
/// `weight * f_kk / Z_ab * (|1 - i - y| / theta_ki - 1 / sum_j theta_kj)`
/// with `f_kk = p(y | beta_k) * pi_ak * pi_bk` and `Z_ab` the pair
/// marginal. `f_diag` is caller scratch of at least `K` slots, so batch
/// loops reuse one buffer instead of allocating per pair.
#[allow(clippy::too_many_arguments)] // hot kernel: flat scalar arguments beat a params struct here
pub fn theta_gradient_pair(
    pi_a: &[f32],
    pi_b: &[f32],
    y: bool,
    weight: f64,
    beta: &[f64],
    theta: &[f64],
    delta: f64,
    f_diag: &mut [f64],
    grad: &mut [f64],
) {
    let k = beta.len();
    assert!(pi_a.len() >= k && pi_b.len() >= k, "pi rows shorter than K");
    assert!(f_diag.len() >= k, "f_diag scratch shorter than K");
    assert_eq!(theta.len(), 2 * k, "theta must be K x 2");
    assert_eq!(grad.len(), 2 * k, "gradient buffer must be K x 2");

    let p_ne = if y { delta } else { 1.0 - delta };
    // Z and the diagonal terms f_kk in one pass.
    let mut z = 0.0f64;
    for c in 0..k {
        let pa = pi_a[c] as f64;
        let pb = pi_b[c] as f64;
        let p_eq = if y { beta[c] } else { 1.0 - beta[c] };
        let f = p_eq * pa * pb;
        f_diag[c] = f;
        z += f + p_ne * pa * (1.0 - pb);
    }
    debug_assert!(z > 0.0, "pair marginal must be positive");
    let inv_z = 1.0 / z;
    let yf = if y { 1.0 } else { 0.0 };
    for c in 0..k {
        let w = weight * f_diag[c] * inv_z;
        if w == 0.0 {
            continue;
        }
        let sum_theta = theta[2 * c] + theta[2 * c + 1];
        let inv_sum = 1.0 / sum_theta;
        // i = 0: |1 - 0 - y| = 1 - y; i = 1: |1 - 1 - y| = y.
        grad[2 * c] += w * ((1.0 - yf) / theta[2 * c] - inv_sum);
        grad[2 * c + 1] += w * (yf / theta[2 * c + 1] - inv_sum);
    }
}

/// One full SGRLD step (Eq. 3) on `theta` given the accumulated mini-batch
/// gradient and the batch scale `h(E_n)`. Updates `theta` in place; the
/// caller recomputes `beta` afterwards.
pub fn update_theta<R: RngCore>(
    theta: &mut [f64],
    grad: &[f64],
    h_scale: f64,
    eta: (f64, f64),
    eps: f64,
    rng: &mut R,
) {
    assert_eq!(theta.len(), grad.len(), "gradient/theta length mismatch");
    assert_eq!(theta.len() % 2, 0, "theta must be K x 2");
    let half_eps = 0.5 * eps;
    let noise_scale = eps.sqrt();
    for (j, t) in theta.iter_mut().enumerate() {
        let prior = if j % 2 == 0 { eta.0 } else { eta.1 };
        let drift = half_eps * (prior - *t + h_scale * grad[j]);
        let noise = t.sqrt() * noise_scale * Normal::standard_sample(rng);
        let next = (*t + drift + noise).abs();
        debug_assert!(next.is_finite(), "theta update produced {next}");
        *t = next.max(PHI_MIN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    /// Pair marginal log-likelihood as a function of theta (through beta),
    /// for finite-difference checks.
    fn log_z(pi_a: &[f32], pi_b: &[f32], y: bool, theta: &[f64], delta: f64) -> f64 {
        let k = theta.len() / 2;
        let p_ne = if y { delta } else { 1.0 - delta };
        let mut z = 0.0;
        for c in 0..k {
            let beta_c = theta[2 * c + 1] / (theta[2 * c] + theta[2 * c + 1]);
            let p_eq = if y { beta_c } else { 1.0 - beta_c };
            let pa = pi_a[c] as f64;
            let pb = pi_b[c] as f64;
            z += p_eq * pa * pb + p_ne * pa * (1.0 - pb);
        }
        z.ln()
    }

    fn random_setup(k: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f64>) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let simplex = |rng: &mut Xoshiro256PlusPlus| -> Vec<f32> {
            let raw: Vec<f64> = (0..k).map(|_| 0.05 + rng.next_f64()).collect();
            let s: f64 = raw.iter().sum();
            raw.iter().map(|&x| (x / s) as f32).collect()
        };
        let pi_a = simplex(&mut rng);
        let pi_b = simplex(&mut rng);
        let theta: Vec<f64> = (0..2 * k).map(|_| 0.5 + 2.0 * rng.next_f64()).collect();
        (pi_a, pi_b, theta)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        for (seed, y) in [(1u64, true), (2, false)] {
            let k = 4;
            let (pi_a, pi_b, theta) = random_setup(k, seed);
            let beta: Vec<f64> = (0..k)
                .map(|c| theta[2 * c + 1] / (theta[2 * c] + theta[2 * c + 1]))
                .collect();
            let delta = 0.01;
            let mut f_diag = vec![0.0; k];
            let mut grad = vec![0.0; 2 * k];
            theta_gradient_pair(&pi_a, &pi_b, y, 1.0, &beta, &theta, delta, &mut f_diag, &mut grad);

            let h = 1e-6;
            for j in 0..2 * k {
                let mut plus = theta.clone();
                plus[j] += h;
                let mut minus = theta.clone();
                minus[j] -= h;
                let fd = (log_z(&pi_a, &pi_b, y, &plus, delta)
                    - log_z(&pi_a, &pi_b, y, &minus, delta))
                    / (2.0 * h);
                assert!(
                    (grad[j] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                    "y={y} component {j}: analytic {} vs fd {fd}",
                    grad[j]
                );
            }
        }
    }

    #[test]
    fn weight_scales_linearly() {
        let k = 3;
        let (pi_a, pi_b, theta) = random_setup(k, 9);
        let beta: Vec<f64> = (0..k)
            .map(|c| theta[2 * c + 1] / (theta[2 * c] + theta[2 * c + 1]))
            .collect();
        let mut f_diag = vec![0.0; k];
        let mut unit = vec![0.0; 2 * k];
        theta_gradient_pair(&pi_a, &pi_b, true, 1.0, &beta, &theta, 0.01, &mut f_diag, &mut unit);
        let mut scaled = vec![0.0; 2 * k];
        theta_gradient_pair(&pi_a, &pi_b, true, 5.0, &beta, &theta, 0.01, &mut f_diag, &mut scaled);
        for (u, s) in unit.iter().zip(&scaled) {
            assert!((5.0 * u - s).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_accumulates_across_pairs() {
        let k = 3;
        let (pi_a, pi_b, theta) = random_setup(k, 5);
        let beta: Vec<f64> = (0..k)
            .map(|c| theta[2 * c + 1] / (theta[2 * c] + theta[2 * c + 1]))
            .collect();
        let mut f_diag = vec![0.0; k];
        let mut once = vec![0.0; 2 * k];
        theta_gradient_pair(&pi_a, &pi_b, true, 1.0, &beta, &theta, 0.01, &mut f_diag, &mut once);
        let mut twice = vec![0.0; 2 * k];
        theta_gradient_pair(&pi_a, &pi_b, true, 1.0, &beta, &theta, 0.01, &mut f_diag, &mut twice);
        theta_gradient_pair(&pi_a, &pi_b, true, 1.0, &beta, &theta, 0.01, &mut f_diag, &mut twice);
        for (o, t) in once.iter().zip(&twice) {
            assert!((2.0 * o - t).abs() < 1e-12);
        }
    }

    #[test]
    fn link_observation_pushes_beta_up() {
        // After many positive updates on a linked pair concentrated in
        // community 0, beta_0 should grow.
        let k = 2;
        let pi_a = [0.95f32, 0.05];
        let pi_b = [0.95f32, 0.05];
        let mut theta = vec![1.0, 1.0, 1.0, 1.0];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..300 {
            let beta: Vec<f64> = (0..k)
                .map(|c| theta[2 * c + 1] / (theta[2 * c] + theta[2 * c + 1]))
                .collect();
            let mut f_diag = vec![0.0; k];
            let mut grad = vec![0.0; 2 * k];
            theta_gradient_pair(&pi_a, &pi_b, true, 1.0, &beta, &theta, 1e-5, &mut f_diag, &mut grad);
            update_theta(&mut theta, &grad, 50.0, (1.0, 1.0), 0.005, &mut rng);
        }
        let beta0 = theta[1] / (theta[0] + theta[1]);
        assert!(beta0 > 0.7, "beta0 = {beta0}");
    }

    #[test]
    fn update_keeps_theta_positive() {
        let mut theta = vec![0.001, 2.0, 5.0, 0.01];
        let grad = vec![-100.0, 100.0, -5.0, 3.0];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        for _ in 0..100 {
            update_theta(&mut theta, &grad, 10.0, (1.0, 1.0), 0.01, &mut rng);
            assert!(theta.iter().all(|&t| t >= PHI_MIN && t.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn update_rejects_mismatched_grad() {
        let mut theta = vec![1.0, 1.0];
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        update_theta(&mut theta, &[0.0], 1.0, (1.0, 1.0), 0.01, &mut rng);
    }

    #[test]
    fn deterministic_given_rng() {
        let mut t1 = vec![1.0, 2.0];
        let mut t2 = vec![1.0, 2.0];
        let grad = vec![0.5, -0.5];
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(4);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(4);
        update_theta(&mut t1, &grad, 2.0, (1.0, 1.0), 0.01, &mut r1);
        update_theta(&mut t2, &grad, 2.0, (1.0, 1.0), 0.01, &mut r2);
        assert_eq!(t1, t2);
    }
}
