//! The local-parameter update (Eq. 5/6): SGRLD step on one vertex's `phi`.

use super::RowView;
use crate::state::PHI_MIN;
use mmsb_rand::dist::Normal;
use mmsb_rand::RngCore;

/// Parameters of one `update_phi` invocation.
#[derive(Debug, Clone, Copy)]
pub struct PhiParams {
    /// Dirichlet prior concentration `alpha`.
    pub alpha: f64,
    /// Inter-community link probability `delta`.
    pub delta: f64,
    /// Step size `eps_t`.
    pub eps: f64,
    /// Gradient scale `N / |V_n|` of Eq. 5.
    pub grad_scale: f64,
}

/// Accumulate the gradient of `sum_b log p(y_ab | phi_a, pi_b, beta)` with
/// respect to `phi_a` (Eq. 6 summed over the neighbor set).
///
/// `neighbors.row(i)[..K]` must hold `pi_b` for neighbor `i`, and
/// `linked[i]` the observation `y_ab`. `out` is overwritten. `f` is caller
/// scratch of at least `2K` slots (two ping-pong halves), letting hot
/// loops reuse one buffer instead of allocating per call.
///
/// Derivation: with `pi_ak = phi_ak / S`, `S = sum_j phi_aj`, the marginal
/// likelihood of one pair is `Z = sum_k f_k` with
/// `f_k = pi_ak * (p(y|k,k) * pi_bk + p(y|k != l) * (1 - pi_bk))`, and
/// `d log Z / d phi_ak = f_k / (Z * phi_ak) - 1 / S`.
///
/// The loop is software-pipelined: neighbor `i`'s `f`/`Z` pass also folds
/// neighbor `i - 1`'s finished contribution into `out`, so each neighbor
/// costs a single pass over the communities. Every `out[c]` still receives
/// the same additions, with the same operand values, in the same neighbor
/// order as the naive two-pass form — the result is bitwise-identical.
pub fn phi_gradient(
    phi_a: &[f64],
    beta: &[f64],
    neighbors: &RowView<'_>,
    linked: &[bool],
    delta: f64,
    f: &mut [f64],
    out: &mut [f64],
) {
    let k = phi_a.len();
    assert_eq!(beta.len(), k, "beta dimension mismatch");
    assert_eq!(out.len(), k, "gradient buffer dimension mismatch");
    assert!(f.len() >= 2 * k, "f scratch needs at least 2K slots");
    assert_eq!(
        neighbors.len(),
        linked.len(),
        "each neighbor row needs an observation"
    );

    let s: f64 = phi_a.iter().sum();
    debug_assert!(s > 0.0, "phi row must be positive");
    let inv_s = 1.0 / s;

    out.fill(0.0);
    let (mut cur, mut prev) = f.split_at_mut(k);
    let mut prev_inv_z = 0.0f64;
    let mut have_prev = false;
    for (i, &y) in linked.iter().enumerate() {
        let pi_b = neighbors.row(i);
        let p_ne = if y { delta } else { 1.0 - delta };
        let mut z = 0.0f64;
        if have_prev {
            for c in 0..k {
                let pi_ac = phi_a[c] * inv_s;
                let pi_bc = pi_b[c] as f64;
                let p_eq = if y { beta[c] } else { 1.0 - beta[c] };
                let fc = pi_ac * (p_eq * pi_bc + p_ne * (1.0 - pi_bc));
                cur[c] = fc;
                z += fc;
                out[c] += prev[c] * prev_inv_z / phi_a[c] - inv_s;
            }
        } else {
            for c in 0..k {
                let pi_ac = phi_a[c] * inv_s;
                let pi_bc = pi_b[c] as f64;
                let p_eq = if y { beta[c] } else { 1.0 - beta[c] };
                let fc = pi_ac * (p_eq * pi_bc + p_ne * (1.0 - pi_bc));
                cur[c] = fc;
                z += fc;
            }
        }
        debug_assert!(z > 0.0, "pair marginal must be positive");
        prev_inv_z = 1.0 / z;
        have_prev = true;
        std::mem::swap(&mut cur, &mut prev);
    }
    // Drain the pipeline: the last neighbor's contribution.
    if have_prev {
        for c in 0..k {
            out[c] += prev[c] * prev_inv_z / phi_a[c] - inv_s;
        }
    }
}

/// One full SGRLD step (Eq. 5) on a vertex's `phi` row:
///
/// `phi* = | phi + eps/2 * (alpha - phi + grad_scale * grad)
///          + sqrt(phi) * xi |`, with `xi ~ N(0, eps)`.
///
/// The noise is drawn from `rng` in coordinate order — callers that need
/// reproducibility across drivers pass a per-`(iteration, vertex)` RNG.
/// `f` is scratch for [`phi_gradient`] (at least `2K` slots). The result
/// is clamped to [`crate::PHI_MIN`].
#[allow(clippy::too_many_arguments)]
pub fn update_phi_row<R: RngCore>(
    phi_a: &[f64],
    beta: &[f64],
    neighbors: &RowView<'_>,
    linked: &[bool],
    params: &PhiParams,
    rng: &mut R,
    f: &mut [f64],
    out: &mut [f64],
) {
    phi_gradient(phi_a, beta, neighbors, linked, params.delta, f, out);
    let half_eps = 0.5 * params.eps;
    let noise_scale = params.eps.sqrt();
    for c in 0..phi_a.len() {
        let drift = half_eps * (params.alpha - phi_a[c] + params.grad_scale * out[c]);
        let noise = phi_a[c].sqrt() * noise_scale * Normal::standard_sample(rng);
        let next = (phi_a[c] + drift + noise).abs();
        debug_assert!(next.is_finite(), "phi update produced {next}");
        out[c] = next.max(PHI_MIN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    /// Reference log-likelihood: `sum_b log p(y_ab)` as a function of
    /// `phi_a`, used for finite-difference gradient checks.
    fn log_likelihood(
        phi_a: &[f64],
        beta: &[f64],
        neighbors: &[Vec<f32>],
        linked: &[bool],
        delta: f64,
    ) -> f64 {
        let s: f64 = phi_a.iter().sum();
        let mut total = 0.0;
        for (pi_b, &y) in neighbors.iter().zip(linked) {
            let p_ne = if y { delta } else { 1.0 - delta };
            let mut z = 0.0;
            for c in 0..phi_a.len() {
                let pi_ac = phi_a[c] / s;
                let pi_bc = pi_b[c] as f64;
                let p_eq = if y { beta[c] } else { 1.0 - beta[c] };
                z += pi_ac * (p_eq * pi_bc + p_ne * (1.0 - pi_bc));
            }
            total += z.ln();
        }
        total
    }

    fn random_setup(
        k: usize,
        n_neighbors: usize,
        seed: u64,
    ) -> (Vec<f64>, Vec<f64>, Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let phi_a: Vec<f64> = (0..k).map(|_| 0.1 + rng.next_f64()).collect();
        let beta: Vec<f64> = (0..k).map(|_| 0.05 + 0.9 * rng.next_f64()).collect();
        let neighbors: Vec<Vec<f32>> = (0..n_neighbors)
            .map(|_| {
                let raw: Vec<f64> = (0..k).map(|_| 0.05 + rng.next_f64()).collect();
                let s: f64 = raw.iter().sum();
                raw.iter().map(|&x| (x / s) as f32).collect()
            })
            .collect();
        let linked: Vec<bool> = (0..n_neighbors).map(|_| rng.coin()).collect();
        (phi_a, beta, neighbors, linked)
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (phi_a, beta, neighbors, linked) = random_setup(5, 7, 42);
        let flat: Vec<f32> = neighbors.iter().flatten().copied().collect();
        let view = RowView::new(&flat, 5);
        let delta = 0.01;
        let mut f = vec![0.0; 10];
        let mut grad = vec![0.0; 5];
        phi_gradient(&phi_a, &beta, &view, &linked, delta, &mut f, &mut grad);

        let h = 1e-6;
        for c in 0..5 {
            let mut plus = phi_a.clone();
            plus[c] += h;
            let mut minus = phi_a.clone();
            minus[c] -= h;
            let fd = (log_likelihood(&plus, &beta, &neighbors, &linked, delta)
                - log_likelihood(&minus, &beta, &neighbors, &linked, delta))
                / (2.0 * h);
            assert!(
                (grad[c] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "component {c}: analytic {} vs fd {fd}",
                grad[c]
            );
        }
    }

    #[test]
    fn gradient_matches_unfused_two_pass_reference() {
        // The pipelined single-pass loop must agree bitwise with the
        // textbook two-pass form it replaced.
        for seed in 0..8u64 {
            let (phi_a, beta, neighbors, linked) = random_setup(6, 9, seed);
            let flat: Vec<f32> = neighbors.iter().flatten().copied().collect();
            let view = RowView::new(&flat, 6);
            let delta = 1e-4;
            let mut f = vec![0.0; 12];
            let mut grad = vec![0.0; 6];
            phi_gradient(&phi_a, &beta, &view, &linked, delta, &mut f, &mut grad);

            let s: f64 = phi_a.iter().sum();
            let inv_s = 1.0 / s;
            let mut expect = vec![0.0f64; 6];
            let mut fk = [0.0f64; 6];
            for (i, &y) in linked.iter().enumerate() {
                let pi_b = view.row(i);
                let p_ne = if y { delta } else { 1.0 - delta };
                let mut z = 0.0;
                for c in 0..6 {
                    let pi_ac = phi_a[c] * inv_s;
                    let pi_bc = pi_b[c] as f64;
                    let p_eq = if y { beta[c] } else { 1.0 - beta[c] };
                    let fc = pi_ac * (p_eq * pi_bc + p_ne * (1.0 - pi_bc));
                    fk[c] = fc;
                    z += fc;
                }
                let inv_z = 1.0 / z;
                for c in 0..6 {
                    expect[c] += fk[c] * inv_z / phi_a[c] - inv_s;
                }
            }
            assert_eq!(grad, expect, "seed {seed}");
        }
    }

    #[test]
    fn gradient_zero_neighbors_is_zero() {
        let (phi_a, beta, _, _) = random_setup(4, 0, 1);
        let view = RowView::new(&[], 4);
        let mut f = vec![0.0; 8];
        let mut grad = vec![9.0; 4];
        phi_gradient(&phi_a, &beta, &view, &[], 0.01, &mut f, &mut grad);
        assert_eq!(grad, vec![0.0; 4]);
    }

    #[test]
    fn update_keeps_phi_positive_and_finite() {
        let (phi_a, beta, neighbors, linked) = random_setup(6, 10, 7);
        let flat: Vec<f32> = neighbors.iter().flatten().copied().collect();
        let view = RowView::new(&flat, 6);
        let params = PhiParams {
            alpha: 0.1,
            delta: 1e-5,
            eps: 0.01,
            grad_scale: 100.0,
        };
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut f = vec![0.0; 12];
        let mut out = vec![0.0; 6];
        for _ in 0..200 {
            update_phi_row(
                &phi_a, &beta, &view, &linked, &params, &mut rng, &mut f, &mut out,
            );
            assert!(out.iter().all(|&x| x >= PHI_MIN && x.is_finite()), "{out:?}");
        }
    }

    #[test]
    fn update_is_deterministic_given_rng() {
        let (phi_a, beta, neighbors, linked) = random_setup(4, 5, 9);
        let flat: Vec<f32> = neighbors.iter().flatten().copied().collect();
        let view = RowView::new(&flat, 4);
        let params = PhiParams {
            alpha: 0.25,
            delta: 1e-4,
            eps: 0.005,
            grad_scale: 50.0,
        };
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut f = vec![0.0; 8];
        let mut o1 = vec![0.0; 4];
        let mut o2 = vec![0.0; 4];
        update_phi_row(&phi_a, &beta, &view, &linked, &params, &mut r1, &mut f, &mut o1);
        update_phi_row(&phi_a, &beta, &view, &linked, &params, &mut r2, &mut f, &mut o2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn zero_step_size_freezes_state_modulo_prior() {
        // With eps = 0 both drift and noise vanish: phi* = phi.
        let (phi_a, beta, neighbors, linked) = random_setup(4, 5, 11);
        let flat: Vec<f32> = neighbors.iter().flatten().copied().collect();
        let view = RowView::new(&flat, 4);
        let params = PhiParams {
            alpha: 0.25,
            delta: 1e-4,
            eps: 0.0,
            grad_scale: 50.0,
        };
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut f = vec![0.0; 8];
        let mut out = vec![0.0; 4];
        update_phi_row(&phi_a, &beta, &view, &linked, &params, &mut rng, &mut f, &mut out);
        for (a, b) in out.iter().zip(&phi_a) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn gradient_pulls_towards_linked_communities() {
        // One linked neighbor fully in community 0, high beta_0: the
        // gradient in component 0 should exceed the others.
        let phi_a = vec![1.0, 1.0, 1.0];
        let beta = vec![0.9, 0.9, 0.9];
        let flat = [0.98f32, 0.01, 0.01];
        let view = RowView::new(&flat, 3);
        let mut f = vec![0.0; 6];
        let mut grad = vec![0.0; 3];
        phi_gradient(&phi_a, &beta, &view, &[true], 1e-5, &mut f, &mut grad);
        assert!(grad[0] > grad[1], "{grad:?}");
        assert!(grad[0] > grad[2], "{grad:?}");
    }

    #[test]
    #[should_panic(expected = "observation")]
    fn mismatched_observations_panic() {
        let (phi_a, beta, neighbors, _) = random_setup(4, 3, 13);
        let flat: Vec<f32> = neighbors.iter().flatten().copied().collect();
        let view = RowView::new(&flat, 4);
        let mut f = vec![0.0; 8];
        let mut grad = vec![0.0; 4];
        phi_gradient(&phi_a, &beta, &view, &[true], 0.01, &mut f, &mut grad);
    }
}
