//! Numerical kernels shared by all three samplers.
//!
//! Everything here is pure (state in, state out): the sequential, parallel
//! and distributed drivers differ only in *where* these kernels run and
//! how their inputs travel, which is what makes chain-equivalence across
//! drivers testable.

pub mod phi;
pub mod theta;

/// Strided view over concatenated f32 rows (e.g. DKV read buffers, where
/// each row is `K + 1` floats but kernels only consume the first `K`).
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    data: &'a [f32],
    stride: usize,
}

impl<'a> RowView<'a> {
    /// Wrap `data` containing rows of length `stride`.
    ///
    /// # Panics
    /// Panics if `stride == 0` or `data.len()` is not a multiple of it.
    pub fn new(data: &'a [f32], stride: usize) -> Self {
        assert!(stride > 0, "row stride must be positive");
        assert_eq!(
            data.len() % stride,
            0,
            "buffer length {} is not a multiple of stride {stride}",
            data.len()
        );
        Self { data, stride }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.stride
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` (full stride; callers slice to `K` as needed).
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// The underlying flat buffer (rows of [`Self::stride`] floats) —
    /// the layout the strided SIMD kernels consume directly.
    #[inline]
    pub fn flat(&self) -> &'a [f32] {
        self.data
    }

    /// Length of each row in the flat buffer.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_view_indexing() {
        let data = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = RowView::new(&data, 3);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        assert_eq!(v.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(v.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of stride")]
    fn ragged_buffer_rejected() {
        RowView::new(&[1.0f32; 5], 3);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        RowView::new(&[], 0);
    }
}
