//! Node-level parallel-speedup model.
//!
//! The simulation host executes each rank's compute single-threaded (so
//! measurements are contention-free); the 16-core OpenMP parallelism each
//! DAS5 node applies on top — and the 40-core HPC Cloud machine of
//! Figure 4 — is modeled with Amdahl's law plus a per-core efficiency
//! factor, calibrated to typical memory-bound scaling of the `update_phi`
//! kernel. See DESIGN.md §3.

/// Amdahl-style speedup model for one node's thread-level parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeComputeModel {
    /// Number of cores (threads) the node uses.
    pub cores: usize,
    /// Fraction of per-iteration node work that does not parallelize
    /// (mini-batch unpacking, loop setup, reductions).
    pub serial_fraction: f64,
    /// Multiplicative per-core efficiency on the parallel part, capturing
    /// memory-bandwidth saturation (1.0 = perfect scaling).
    pub parallel_efficiency: f64,
}

impl NodeComputeModel {
    /// A single-threaded node (no model adjustment).
    pub fn serial() -> Self {
        Self {
            cores: 1,
            serial_fraction: 0.0,
            parallel_efficiency: 1.0,
        }
    }

    /// A DAS5-like node: 16 cores, a small serial fraction and the
    /// sub-linear scaling typical of a memory-bound stochastic-gradient
    /// kernel.
    pub fn das5_node() -> Self {
        Self {
            cores: 16,
            serial_fraction: 0.03,
            parallel_efficiency: 0.85,
        }
    }

    /// The 40-core, 1 TB HPC Cloud machine of Figure 4.
    pub fn hpc_cloud_40() -> Self {
        Self {
            cores: 40,
            serial_fraction: 0.03,
            parallel_efficiency: 0.85,
        }
    }

    /// A copy of this model with a different core count.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "a node needs at least one core");
        self.cores = cores;
        self
    }

    /// Effective speedup over single-threaded execution:
    /// `1 / (s + (1 - s) / (cores * eff))` where the effective parallel
    /// width is `cores * parallel_efficiency`.
    pub fn speedup(&self) -> f64 {
        assert!(self.cores >= 1, "a node needs at least one core");
        assert!(
            (0.0..=1.0).contains(&self.serial_fraction),
            "serial fraction must be in [0, 1]"
        );
        assert!(
            self.parallel_efficiency > 0.0 && self.parallel_efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        if self.cores == 1 {
            return 1.0;
        }
        let width = self.cores as f64 * self.parallel_efficiency;
        1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / width)
    }

    /// Scale a measured single-threaded time to this node's modeled
    /// multi-threaded time.
    #[inline]
    pub fn scale(&self, serial_seconds: f64) -> f64 {
        serial_seconds / self.speedup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_model_is_identity() {
        let m = NodeComputeModel::serial();
        assert_eq!(m.speedup(), 1.0);
        assert_eq!(m.scale(2.5), 2.5);
    }

    #[test]
    fn speedup_increases_with_cores_sublinearly() {
        let m16 = NodeComputeModel::das5_node();
        let m40 = NodeComputeModel::hpc_cloud_40();
        let s16 = m16.speedup();
        let s40 = m40.speedup();
        assert!(s16 > 6.0 && s16 < 16.0, "s16 = {s16}");
        assert!(s40 > s16, "40 cores should beat 16");
        assert!(s40 < 40.0, "speedup must be sublinear");
    }

    #[test]
    fn amdahl_limit_respected() {
        // With 10% serial work, speedup can never exceed 10x.
        let m = NodeComputeModel {
            cores: 10_000,
            serial_fraction: 0.1,
            parallel_efficiency: 1.0,
        };
        assert!(m.speedup() < 10.0);
        assert!(m.speedup() > 9.0);
    }

    #[test]
    fn scale_divides_by_speedup() {
        let m = NodeComputeModel::das5_node();
        let t = m.scale(1.0);
        assert!((t - 1.0 / m.speedup()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        NodeComputeModel::serial().with_cores(0);
    }
}
