//! The distributed master–worker driver (paper §III), in lockstep
//! simulation.
//!
//! One master plus `R` workers. The mini-batch and its adjacency rows are
//! scattered by the master; `pi` lives in an `mmsb-dkv` sharded store
//! partitioned over the workers; `theta`/`beta` live at the master and
//! `beta` is broadcast each iteration.
//!
//! **Execution model** (DESIGN.md §3/§6): every rank's compute runs for
//! real, single-threaded, one rank at a time — so measurements are free of
//! host contention — and is then scaled by the configured
//! [`NodeComputeModel`] (the per-node OpenMP layer). Every communication
//! and DKV operation advances the owning rank's [`ClusterClocks`] entry by
//! an `mmsb-netsim` cost; barriers synchronize clocks to the max. The
//! virtual makespan is what Figures 1–4 plot.
//!
//! **Chain fidelity**: the numerical trajectory is identical to the
//! sequential and parallel drivers up to the floating-point association
//! order of the distributed `theta`-gradient reduction (each worker sums
//! its pair share, then shares are summed in rank order).

use super::Engine;
use crate::checkpoint::Checkpoint;
use crate::communities::Communities;
use crate::compute_model::NodeComputeModel;
use crate::config::{SamplerConfig, StateLayout};
use crate::kernels::RowView;
use crate::{CoreError, ModelState};
use mmsb_dkv::pipeline::{ChunkedReader, PipelineMode, PrefetchingReader, ReaderScratch};
use mmsb_dkv::{DkvStore, FaultingStore, Partition, ShardedStore};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::{Graph, GraphAccess, VertexId};
use mmsb_netsim::{
    collective, ClusterClocks, DkvFault, FaultConfig, FaultPlan, MsgFault, NetworkModel, Phase,
    PhaseTimes, RecoveryPolicy, TraceReport,
};
use mmsb_netsim::obs_bridge;
use mmsb_obs::clock::Stopwatch;
use mmsb_obs::id as obs_id;
use mmsb_rand::Xoshiro256PlusPlus;

/// Cluster-level configuration of the distributed sampler.
#[derive(Debug, Clone, Copy)]
pub struct DistributedConfig {
    /// Number of worker ranks `R` (the paper uses up to 64, plus the
    /// master).
    pub workers: usize,
    /// Network cost model.
    pub net: NetworkModel,
    /// Per-node thread-parallelism model applied to measured compute.
    pub node: NodeComputeModel,
    /// Single- or double-buffered `pi` loads (Figure 3 / Table III).
    pub pipeline: PipelineMode,
    /// Mini-batch vertices per load/compute chunk.
    pub chunk_vertices: usize,
    /// Read combining: issue one RDMA read per *distinct* key in a chunk
    /// instead of one per occurrence (neighbor sets of different
    /// mini-batch vertices overlap). Affects modeled wire time only — the
    /// data delivered is identical either way.
    pub dedup_reads: bool,
    /// Seeded fault schedule, or `None` for a fault-free cluster.
    ///
    /// Transient faults (failed/slow DKV operations, lost/duplicated/
    /// delayed messages, stragglers) change only the *modeled time*: every
    /// retry re-executes to the same bytes, so the chain stays
    /// bitwise-identical to the fault-free run. A `kill_worker` entry is
    /// permanent: the sampler rewinds to its last checkpoint and continues
    /// on `R - 1` workers.
    pub faults: Option<FaultConfig>,
    /// Retry/backoff/timeout parameters used when faults are injected.
    pub recovery: RecoveryPolicy,
}

impl DistributedConfig {
    /// A DAS5-like configuration: FDR InfiniBand, 16-core nodes,
    /// double-buffered loads, 16-vertex chunks.
    pub fn das5(workers: usize) -> Self {
        Self {
            workers,
            net: NetworkModel::fdr_infiniband(),
            node: NodeComputeModel::das5_node(),
            pipeline: PipelineMode::Double,
            chunk_vertices: 16,
            dedup_reads: false,
            faults: None,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Inject the given fault schedule.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Override the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Toggle read combining.
    pub fn with_dedup_reads(mut self, dedup: bool) -> Self {
        self.dedup_reads = dedup;
        self
    }

    /// Toggle pipelining.
    pub fn with_pipeline(mut self, mode: PipelineMode) -> Self {
        self.pipeline = mode;
        self
    }

    /// Override the network model.
    pub fn with_net(mut self, net: NetworkModel) -> Self {
        self.net = net;
        self
    }

    /// Override the node compute model.
    pub fn with_node(mut self, node: NodeComputeModel) -> Self {
        self.node = node;
        self
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.workers == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "distributed sampler needs at least one worker".into(),
            });
        }
        if self.chunk_vertices == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "chunk_vertices must be positive".into(),
            });
        }
        if let Some(f) = &self.faults {
            if let Some((_, rank)) = f.kill_worker {
                if rank >= self.workers {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "kill_worker rank {rank} out of range for {} workers",
                            self.workers
                        ),
                    });
                }
                if self.workers < 2 {
                    return Err(CoreError::InvalidConfig {
                        reason: "cannot lose the only worker".into(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The distributed SG-MCMC sampler over a simulated cluster.
pub struct DistributedSampler {
    engine: Engine,
    dcfg: DistributedConfig,
    /// The sharded `pi` store behind the fault-injection layer. With no
    /// faults configured the layer passes every operation straight
    /// through at zero cost.
    store: FaultingStore,
    /// The fault schedule (a no-op plan when `dcfg.faults` is `None`).
    plan: FaultPlan,
    policy: RecoveryPolicy,
    /// Set once a permanent worker loss has been absorbed (at most one
    /// kill per schedule).
    lost_worker: Option<usize>,
    /// The most recent chain snapshot; the rollback point for permanent
    /// worker loss. Captured at construction when faults are configured,
    /// and refreshed per [`DistributedSampler::with_checkpoint_every`].
    last_checkpoint: Option<Checkpoint>,
    /// Refresh `last_checkpoint` every this many iterations.
    checkpoint_every: Option<u64>,
    /// Index 0 is the master; worker `w` is rank `w + 1`.
    clocks: ClusterClocks,
    trace: PhaseTimes,
    /// Reader buffers (ping-pong row buffers, per-chunk timings, dedup
    /// scratch) — persistent so the steady state allocates nothing.
    scratch: ReaderScratch,
    /// The real double-buffered loader ([`PipelineMode::Double`]); its
    /// background worker persists across iterations.
    prefetch: PrefetchingReader,
    /// Reusable per-worker key/segment staging for the chunked loads.
    keys_buf: Vec<u32>,
    seg_lens: Vec<usize>,
    linked_buf: Vec<bool>,
    /// Block cache for out-of-core adjacency probes in the worker
    /// `update_phi` stage (`None` for resident backends). Pure scratch.
    graph_cache: Option<mmsb_ooc::BlockCache>,
}

/// Logical message-stage ids folded into the fabric fault coordinate so
/// each master-rooted collective of an iteration draws independent fates.
const STAGE_DEPLOY: u64 = 0;
const STAGE_REDUCE: u64 = 1;
const STAGE_BROADCAST: u64 = 2;
const STAGE_COUNT: u64 = 3;

/// Evenly split `items` into `parts` contiguous chunks (first chunks get
/// the remainder).
fn split_contiguous<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let n = items.len();
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(&items[lo..lo + len]);
        lo += len;
    }
    out
}

impl DistributedSampler {
    /// Build a distributed sampler. The state layout must be
    /// [`StateLayout::PiSumPhi`] (the DKV row format).
    pub fn new(
        graph: Graph,
        heldout: HeldOut,
        config: SamplerConfig,
        dcfg: DistributedConfig,
    ) -> Result<Self, CoreError> {
        Self::with_backend(graph.into(), heldout, config, dcfg)
    }

    /// Build a distributed sampler over either graph backend (resident
    /// CSR or the out-of-core block-cached format). The chain is bitwise
    /// identical across backends.
    pub fn with_backend(
        graph: mmsb_ooc::GraphBackend,
        heldout: HeldOut,
        config: SamplerConfig,
        dcfg: DistributedConfig,
    ) -> Result<Self, CoreError> {
        dcfg.validate()?;
        if config.layout != StateLayout::PiSumPhi {
            return Err(CoreError::InvalidConfig {
                reason: "distributed sampler requires the PiSumPhi layout".into(),
            });
        }
        let engine = Engine::with_backend(graph, heldout, config)?;
        let n = engine.graph.num_vertices();
        let k = engine.config.k;
        let mut store = ShardedStore::new(Partition::new(n, dcfg.workers), k + 1);
        // Initial population of the collective memory (not charged to the
        // clocks: the paper's measurements likewise start after loading).
        let mut row = vec![0.0f32; k + 1];
        for a in 0..n {
            engine.state.encode_dkv_row(a, &mut row);
            store.write_batch(&[a], &row)?;
        }
        let prefetch = PrefetchingReader::new(dcfg.chunk_vertices)
            .with_dedup_reads(dcfg.dedup_reads)
            .with_compute_scale(dcfg.node.scale(1.0));
        let plan = FaultPlan::new(dcfg.faults.unwrap_or_else(|| FaultConfig::none(0)));
        // A fault-configured run always holds a rollback point, even
        // before the first explicit checkpoint: a kill at iteration 0
        // must be recoverable.
        let last_checkpoint = dcfg.faults.map(|_| Checkpoint::capture(&engine));
        let graph_cache = engine
            .graph
            .new_cache(engine.config.graph_cache_blocks, engine.config.seed ^ 0xD15);
        Ok(Self {
            engine,
            dcfg,
            store: FaultingStore::new(store, plan, dcfg.recovery),
            plan,
            policy: dcfg.recovery,
            lost_worker: None,
            last_checkpoint,
            checkpoint_every: None,
            clocks: ClusterClocks::new(dcfg.workers + 1),
            trace: PhaseTimes::new(),
            scratch: ReaderScratch::new(),
            prefetch,
            keys_buf: Vec::new(),
            seg_lens: Vec::new(),
            linked_buf: Vec::new(),
            graph_cache,
        })
    }

    /// Build a sampler whose chain continues from `ckpt` instead of the
    /// seed initialization. The graph, held-out set, and configs must be
    /// the ones the checkpointed run used; the restored run then produces
    /// the bitwise-identical trajectory the uninterrupted run would have.
    pub fn resume(
        graph: Graph,
        heldout: HeldOut,
        config: SamplerConfig,
        dcfg: DistributedConfig,
        ckpt: &Checkpoint,
    ) -> Result<Self, CoreError> {
        let mut s = Self::new(graph, heldout, config, dcfg)?;
        s.restore(ckpt)?;
        Ok(s)
    }

    /// Refresh the in-memory rollback checkpoint every `every` iterations
    /// (used both by kill recovery and as the snapshot
    /// [`DistributedSampler::last_checkpoint`] exposes for persistence).
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint_every = Some(every);
        if self.last_checkpoint.is_none() {
            self.last_checkpoint = Some(Checkpoint::capture(&self.engine));
        }
        self
    }

    /// Snapshot the full chain state (state arrays, theta/beta, RNG
    /// streams, iteration, perplexity accumulator).
    pub fn checkpoint(&self) -> Checkpoint {
        let _ckpt_span = mmsb_obs::span(obs_id::S_CHECKPOINT);
        mmsb_obs::counter_add(obs_id::C_CHECKPOINTS, 1);
        Checkpoint::capture(&self.engine)
    }

    /// The most recent automatic checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Install `ckpt`, rewinding (or fast-forwarding) the chain to the
    /// captured iteration and reloading every DKV row from it. Virtual
    /// time is *not* rewound — restoring is part of the run's history.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), CoreError> {
        ckpt.install(&mut self.engine)?;
        self.reload_store()?;
        self.last_checkpoint = Some(ckpt.clone());
        Ok(())
    }

    /// Re-encode every vertex row from the engine state into the store.
    fn reload_store(&mut self) -> Result<(), CoreError> {
        let n = self.engine.graph.num_vertices();
        let k = self.engine.config.k;
        let mut row = vec![0.0f32; k + 1];
        for a in 0..n {
            self.engine.state.encode_dkv_row(a, &mut row);
            self.store.inner_mut().write_batch(&[a], &row)?;
        }
        Ok(())
    }

    /// Record a phase time in the virtual-time trace and mirror it into
    /// the obs per-phase histogram, so the printed breakdown and an
    /// exported metrics snapshot share one accounting.
    fn trace_add(&mut self, phase: Phase, seconds: f64) {
        self.trace.add(phase, seconds);
        mmsb_obs::hist_record_secs(obs_bridge::phase_hist_id(phase), seconds);
    }

    /// Record one modeled collective. The simulate path never touches
    /// `mmsb-comm` (collectives are priced by the netsim formulas), so
    /// the comm-collective metrics are mirrored here at the model sites.
    fn obs_collective(seconds: f64) {
        mmsb_obs::counter_add(obs_id::C_COMM_COLLECTIVES, 1);
        mmsb_obs::hist_record_secs(obs_id::H_COMM_COLLECTIVE_NS, seconds);
    }

    /// Number of worker ranks (reflects degradation after a worker loss).
    pub fn workers(&self) -> usize {
        self.dcfg.workers
    }

    /// The worker permanently lost to a kill fault, if any.
    pub fn lost_worker(&self) -> Option<usize> {
        self.lost_worker
    }

    /// Run one full iteration.
    pub fn step(&mut self) {
        let _step_span = mmsb_obs::span(obs_id::S_STEP);
        let step_sw = mmsb_obs::metrics_on().then(Stopwatch::start);
        // Permanent worker loss fires at the start of its iteration: the
        // master detects the dead rank, rewinds to the last checkpoint,
        // and re-partitions over the survivors before drawing anything.
        if self.lost_worker.is_none() {
            if let Some(dead) = self.plan.kill_at(self.engine.iteration) {
                self.degrade(dead);
            }
        }
        self.store.set_iteration(self.engine.iteration);
        let mut recovery_t = 0.0f64;

        let r = self.dcfg.workers;
        let k = self.engine.config.k;
        let net = self.dcfg.net;
        let node = self.dcfg.node;

        // ------------------------------------------------- master: draw
        let t0 = Stopwatch::start();
        let mb = self.engine.draw_minibatch();
        let draw = t0.elapsed_secs();
        self.trace_add(Phase::DrawMinibatch, draw);

        let vertices = mb.vertices();
        let vertex_shares = split_contiguous(&vertices, r);
        let pair_shares = split_contiguous(&mb.pairs, r);
        let weight_shares = split_contiguous(&mb.weights, r);

        // Deploy: per-worker bytes = vertex ids + their adjacency rows +
        // the worker's pair share (9 bytes: two ids + observation).
        let deploy_bytes = vertex_shares
            .iter()
            .zip(&pair_shares)
            .map(|(vs, ps)| {
                let adjacency: usize = vs
                    .iter()
                    .map(|&a| self.engine.graph.degree(a) as usize * 4)
                    .sum();
                vs.len() * 4 + adjacency + ps.len() * 9
            })
            .max()
            .unwrap_or(0);
        let deploy = collective::scatter(&net, r + 1, deploy_bytes)
            + self.collective_retry_cost(STAGE_DEPLOY, &mut recovery_t);
        Self::obs_collective(deploy);
        self.trace_add(Phase::DeployMinibatch, deploy);
        self.clocks.advance(0, draw + deploy);
        if self.dcfg.pipeline == PipelineMode::Single {
            // Non-pipelined: workers wait for the deployment.
            let ready = self.clocks.now(0);
            for w in 0..r {
                self.clocks.advance(w + 1, 0.0);
                if self.clocks.now(w + 1) < ready {
                    let wait = ready - self.clocks.now(w + 1);
                    self.clocks.advance(w + 1, wait);
                }
            }
        }
        // Pipelined: the batch was prefetched during the previous
        // iteration's update_phi; workers start immediately and the
        // master's concurrent work folds into the end-of-iteration
        // barrier.

        // -------------------------------------- workers: update_phi
        let mut all_updates: Vec<super::engine::PhiUpdate> = Vec::with_capacity(vertices.len());
        let mut max_neigh = 0.0f64;
        let mut max_load = 0.0f64;
        let mut max_compute = 0.0f64;
        let mut max_wall = 0.0f64;
        let mut max_stage_recovery = 0.0f64;
        for (w, share) in vertex_shares.iter().enumerate() {
            let rank = w + 1;
            // Sample neighbor sets (worker compute, thread-parallel on the
            // node).
            let t0 = Stopwatch::start();
            let mut per_vertex: Vec<(VertexId, Vec<VertexId>, Xoshiro256PlusPlus)> = share
                .iter()
                .map(|&a| {
                    let mut rng =
                        crate::rngs::vertex_rng(self.engine.config.seed, self.engine.iteration, a.0);
                    let ns = self
                        .engine
                        .neighbors
                        .sample(a, Some(&self.engine.heldout), &mut rng);
                    (a, ns, rng)
                })
                .collect();
            let neigh = node.scale(t0.elapsed_secs());
            self.clocks.advance(rank, neigh);
            max_neigh = max_neigh.max(neigh);

            // Chunked load + compute over this worker's vertices, routed
            // through the dkv readers. Chunk boundaries follow
            // `chunk_vertices`, so a chunk's key count varies with the
            // sampled neighbor sets — hence the segment API. Every buffer
            // involved (keys, segments, row ping-pong, timings, dedup
            // scratch) persists on `self`, keeping the steady state
            // allocation-free.
            let row_len = k + 1;
            let keys = &mut self.keys_buf;
            let seg_lens = &mut self.seg_lens;
            keys.clear();
            seg_lens.clear();
            for chunk in per_vertex.chunks(self.dcfg.chunk_vertices) {
                // Keys: own row then neighbor rows, per vertex.
                let before = keys.len();
                for (a, ns, _) in chunk.iter() {
                    keys.push(a.0);
                    keys.extend(ns.iter().map(|b| b.0));
                }
                seg_lens.push(keys.len() - before);
            }
            let engine = &self.engine;
            let linked = &mut self.linked_buf;
            // The adjacency reader borrows only `self.graph_cache`,
            // disjoint from the engine and buffer borrows above.
            let mut reader = engine.graph.reader(self.graph_cache.as_mut());
            let mut vi = 0usize;
            let mut on_chunk = |_start: usize, chunk_keys: &[u32], rows: &[f32]| {
                let mut offset = 0usize;
                while offset < chunk_keys.len() {
                    let (a, ns, rng) = &mut per_vertex[vi];
                    let own = &rows[offset * row_len..(offset + 1) * row_len];
                    let nrows =
                        &rows[(offset + 1) * row_len..(offset + 1 + ns.len()) * row_len];
                    linked.clear();
                    linked.extend(ns.iter().map(|&b| reader.has_edge(*a, b)));
                    let update = engine.compute_phi_update_from_rows(
                        *a,
                        own,
                        &RowView::new(nrows, row_len),
                        linked,
                        rng,
                    );
                    all_updates.push(update);
                    offset += 1 + ns.len();
                    vi += 1;
                }
            };
            // Both modes deliver identical chunks in identical order to
            // `on_chunk` — only the load execution (and hence time)
            // differs. The clocks always advance by the *modeled* makespan
            // so netsim figures stay comparable; Double additionally
            // records the measured overlapped wall-clock.
            let (stage, load_sum, compute_sum) = match self.dcfg.pipeline {
                PipelineMode::Single => {
                    let run = ChunkedReader::new(self.dcfg.chunk_vertices, PipelineMode::Single)
                        .with_dedup_reads(self.dcfg.dedup_reads)
                        .with_compute_scale(node.scale(1.0))
                        .run_segments(
                            self.store.inner(),
                            w,
                            keys,
                            seg_lens,
                            &net,
                            &mut self.scratch,
                            &mut on_chunk,
                        )
                        .expect("keys are valid vertex ids");
                    (run.total, run.load, run.compute)
                }
                PipelineMode::Double => {
                    let run = self
                        .prefetch
                        .run_segments(
                            self.store.inner(),
                            w,
                            keys,
                            seg_lens,
                            &net,
                            &mut self.scratch,
                            &mut on_chunk,
                        )
                        .expect("keys are valid vertex ids");
                    max_wall = max_wall.max(run.wall);
                    (run.modeled.total, run.modeled.load, run.modeled.compute)
                }
            };
            self.clocks.advance(rank, stage);
            max_load = max_load.max(load_sum);
            max_compute = max_compute.max(compute_sum);

            // Transient faults on this worker's load/compute stage:
            // retried chunk reads plus a possible straggle. Decisions come
            // from the plan alone — the data the pipeline delivered above
            // is already final, so only modeled time changes (the faulty
            // read-retry *data* path is what `FaultingStore`'s own tests
            // pin down).
            if self.dcfg.faults.is_some() {
                let chunks = self.seg_lens.len();
                let per_chunk = if chunks > 0 {
                    load_sum / chunks as f64
                } else {
                    0.0
                };
                let mut worker_recovery = self.read_retry_cost(w, chunks, per_chunk);
                if let Some(factor) = self.plan.straggler(self.engine.iteration, w) {
                    worker_recovery += self.policy.straggler_overhead(neigh + stage, factor);
                }
                self.clocks.advance(rank, worker_recovery);
                max_stage_recovery = max_stage_recovery.max(worker_recovery);
            }
        }
        recovery_t += max_stage_recovery;
        self.trace_add(Phase::SampleNeighbors, max_neigh);
        self.trace_add(Phase::LoadPi, max_load);
        self.trace_add(Phase::UpdatePhi, max_compute);
        if self.dcfg.pipeline == PipelineMode::Double {
            self.trace_add(Phase::Prefetch, max_wall);
        }

        // Barrier before update_pi (memory consistency, paper §III-C).
        let barrier_cost = net.barrier_time(r + 1);
        self.clocks.barrier(barrier_cost);
        self.trace_add(Phase::Barrier, barrier_cost);

        // ------------------------------------------ workers: update_pi
        // Apply updates to the authoritative state, then write the fresh
        // rows through the store (per owning worker's share).
        self.engine.apply_phi_updates(&all_updates);
        let mut max_pi = 0.0f64;
        let mut max_write_recovery = 0.0f64;
        let update_shares = split_contiguous(&all_updates, r);
        for (w, share) in update_shares.iter().enumerate() {
            let rank = w + 1;
            let t0 = Stopwatch::start();
            let keys: Vec<u32> = share.iter().map(|(a, _)| a.0).collect();
            let mut vals = vec![0.0f32; keys.len() * (k + 1)];
            for (i, &key) in keys.iter().enumerate() {
                self.engine
                    .state
                    .encode_dkv_row(key, &mut vals[i * (k + 1)..(i + 1) * (k + 1)]);
            }
            let compute = node.scale(t0.elapsed_secs());
            let wire = self.store.inner().write_cost(w, &keys, &net);
            // The real write goes through the fault layer: a failed
            // attempt really applies a partial prefix, and the retry's
            // idempotent full rewrite converges to the same bytes — only
            // the modeled recovery time differs from the clean run.
            let outcome = self
                .store
                .write_batch_recovered(w, &keys, &vals, wire)
                .expect("retry budget covers transient write faults");
            self.clocks
                .advance(rank, compute + wire + outcome.recovery_seconds);
            max_pi = max_pi.max(compute + wire);
            max_write_recovery = max_write_recovery.max(outcome.recovery_seconds);
        }
        recovery_t += max_write_recovery;
        self.trace_add(Phase::UpdatePi, max_pi);

        // Barrier before update_beta (fresh pi everywhere).
        self.clocks.barrier(barrier_cost);
        self.trace_add(Phase::Barrier, barrier_cost);

        // --------------------------------- update_beta_theta (4 steps)
        let mut beta_stage = 0.0f64;
        let mut grad_total = vec![0.0f64; 2 * k];
        let mut max_grad_time = 0.0f64;
        for (w, share) in pair_shares.iter().enumerate() {
            let rank = w + 1;
            // Load pi for the endpoints of this worker's pair share.
            let keys: Vec<u32> = share
                .iter()
                .flat_map(|&(e, _)| [e.lo().0, e.hi().0])
                .collect();
            let wire = self.store.inner().read_cost(w, &keys, &net);
            let t0 = Stopwatch::start();
            let grad = self.engine.theta_gradient_slice(share, weight_shares[w]);
            let compute = node.scale(t0.elapsed_secs());
            for (g, c) in grad_total.iter_mut().zip(&grad) {
                *g += c;
            }
            self.clocks.advance(rank, wire + compute);
            max_grad_time = max_grad_time.max(wire + compute);
        }
        beta_stage += max_grad_time;
        // MPI reduce of the per-worker gradients to the master. A dropped
        // contribution stalls the sync point for its timeout + retransmit.
        let reduce = collective::reduce(&net, r + 1, 2 * k * 8)
            + self.collective_retry_cost(STAGE_REDUCE, &mut recovery_t);
        Self::obs_collective(reduce);
        let t_reduce = self.clocks.barrier(reduce); // reduce is a sync point
        beta_stage += reduce;
        let _ = t_reduce;
        // Master: theta step + beta broadcast.
        let t0 = Stopwatch::start();
        self.engine.apply_theta_update(&grad_total);
        let master_compute = t0.elapsed_secs();
        let bcast = collective::broadcast(&net, r + 1, k * 8)
            + self.collective_retry_cost(STAGE_BROADCAST, &mut recovery_t);
        Self::obs_collective(bcast);
        self.clocks.advance(0, master_compute + bcast);
        self.clocks.barrier(0.0);
        beta_stage += master_compute + bcast;
        self.trace_add(Phase::UpdateBetaTheta, beta_stage);

        if recovery_t > 0.0 {
            self.trace_add(Phase::Recovery, recovery_t);
        }

        self.engine.bump_iteration();
        if let Some(every) = self.checkpoint_every {
            if self.engine.iteration.is_multiple_of(every) {
                let _ckpt_span = mmsb_obs::span(obs_id::S_CHECKPOINT);
                mmsb_obs::counter_add(obs_id::C_CHECKPOINTS, 1);
                self.last_checkpoint = Some(Checkpoint::capture(&self.engine));
            }
        }
        mmsb_obs::counter_add(obs_id::C_SAMPLER_STEPS, 1);
        if let Some(sw) = step_sw {
            mmsb_obs::hist_record_ns(obs_id::H_STEP_NS, sw.elapsed_ns());
        }
    }

    /// Run until `iterations` *more* iterations have completed. (A
    /// permanent worker loss rewinds the chain to its checkpoint; the
    /// rewound iterations are re-executed, so the target is still
    /// reached.)
    pub fn run(&mut self, iterations: u64) {
        let target = self.engine.iteration + iterations;
        while self.engine.iteration < target {
            self.step();
        }
    }

    /// Absorb the permanent loss of worker `dead`: rewind the chain to
    /// the last checkpoint, re-partition the store over the `R - 1`
    /// survivors, and charge the modeled detection + re-load cost as
    /// recovery time. Worker count never changes the numerics, so the
    /// degraded run still reproduces the fault-free chain bit-for-bit.
    fn degrade(&mut self, dead: usize) {
        mmsb_obs::counter_add(obs_id::C_RECOVERIES, 1);
        let ckpt = self
            .last_checkpoint
            .clone()
            .expect("fault-configured samplers always hold a rollback checkpoint");
        ckpt.install(&mut self.engine)
            .expect("self-captured checkpoint always matches its sampler");
        self.lost_worker = Some(dead);
        self.dcfg.workers -= 1;
        let n = self.engine.graph.num_vertices();
        let k = self.engine.config.k;
        let store = ShardedStore::new(Partition::new(n, self.dcfg.workers), k + 1);
        self.store = FaultingStore::new(store, self.plan, self.policy);
        self.reload_store()
            .expect("fresh partition accepts every vertex");
        // Model the recovery: the survivors wait out the stage timeout
        // that detects the loss, then the master re-scatters the full
        // checkpointed state over the new partition.
        let bytes = n as usize * (k + 1) * 4;
        let cost = self.policy.stage_timeout
            + collective::scatter(&self.dcfg.net, self.dcfg.workers + 1, bytes);
        Self::obs_collective(cost);
        let resume_at = self.clocks.max() + cost;
        self.clocks = ClusterClocks::new(self.dcfg.workers + 1);
        self.clocks.barrier(resume_at);
        self.trace_add(Phase::Recovery, cost);
    }

    /// Modeled seconds `rank`'s chunked read stage spends on transient
    /// DKV faults this iteration: each failed attempt re-issues one
    /// chunk's load after a backoff; a slow replica stretches its chunk
    /// by the plan's factor.
    fn read_retry_cost(&self, rank: usize, chunks: usize, per_chunk: f64) -> f64 {
        let iteration = self.engine.iteration;
        let mut extra = 0.0;
        for chunk in 0..chunks {
            let site = ((rank as u64) << 32) ^ (chunk as u64) ^ (iteration << 16);
            for attempt in 0..=self.policy.max_retries {
                match self.plan.read_fault(rank, iteration, chunk, attempt) {
                    Some(DkvFault::Fail) => {
                        extra += per_chunk + self.policy.backoff(&self.plan, site, attempt);
                    }
                    Some(DkvFault::Slow(factor)) => {
                        extra += per_chunk * (factor - 1.0);
                        break;
                    }
                    None => break,
                }
            }
        }
        extra
    }

    /// Modeled extra seconds of the slowest link in a master-rooted
    /// collective under the plan's fabric faults. A dropped frame costs
    /// its link the stage timeout plus a backoff before the retransmit
    /// (which draws a fresh fate); a delayed frame costs its extra
    /// in-flight time; a duplicated frame is dropped free of charge by
    /// the receiver's de-duplication. Accumulates into `recovery_t`.
    fn collective_retry_cost(&self, stage: u64, recovery_t: &mut f64) -> f64 {
        if self.dcfg.faults.is_none() {
            return 0.0;
        }
        let iteration = self.engine.iteration;
        let mut worst = 0.0f64;
        for w in 0..self.dcfg.workers {
            // One logical message per link per stage; retries fold into
            // the coordinate exactly like the wire protocol in mmsb-comm.
            let coord = (iteration * STAGE_COUNT + stage) * 64;
            let site = coord ^ ((w as u64) << 48);
            let mut extra = 0.0;
            for attempt in 0..=self.policy.max_retries {
                match self.plan.message_fault(w + 1, 0, coord + attempt as u64) {
                    Some(MsgFault::Drop) => {
                        extra += self.policy.stage_timeout
                            + self.policy.backoff(&self.plan, site, attempt);
                    }
                    Some(MsgFault::Delay(secs)) => {
                        extra += secs;
                        break;
                    }
                    Some(MsgFault::Duplicate) | None => break,
                }
            }
            worst = worst.max(extra);
        }
        *recovery_t += worst;
        worst
    }

    /// Distributed held-out perplexity: each worker loads the `pi` rows of
    /// its static `E_h` partition, computes its probabilities, and the
    /// per-pair probabilities are gathered at the master, which folds them
    /// into the running posterior average (Eq. 7). (The paper reduces
    /// partial log-sums; gathering the probability vectors instead keeps
    /// the posterior averaging bit-identical to the single-node drivers —
    /// the wire cost of the gather is modeled either way.)
    pub fn evaluate_perplexity(&mut self) -> f64 {
        let r = self.dcfg.workers;
        let net = self.dcfg.net;
        let node = self.dcfg.node;
        let total = self.engine.heldout.len();
        let mut all_probs = Vec::with_capacity(total);
        let mut max_t = 0.0f64;
        let mut offset = 0usize;
        for w in 0..r {
            let rank = w + 1;
            let share = self.engine.heldout.partition(w, r);
            let keys: Vec<u32> = share
                .iter()
                .flat_map(|&(e, _)| [e.lo().0, e.hi().0])
                .collect();
            let wire = self.store.inner().read_cost(w, &keys, &net);
            let t0 = Stopwatch::start();
            let probs = self.engine.perplexity_probs(offset, offset + share.len());
            let compute = node.scale(t0.elapsed_secs());
            offset += share.len();
            all_probs.extend(probs);
            self.clocks.advance(rank, wire + compute);
            max_t = max_t.max(wire + compute);
        }
        let gather = collective::gather(&net, r + 1, (total / r.max(1)) * 8);
        Self::obs_collective(gather);
        self.clocks.advance(0, gather);
        self.clocks.barrier(0.0);
        self.trace_add(Phase::Perplexity, max_t + gather);
        self.engine.record_perplexity_sample(&all_probs)
    }

    /// The virtual (modeled cluster) time elapsed so far, in seconds.
    pub fn virtual_time(&self) -> f64 {
        self.clocks.max()
    }

    /// Completed iterations.
    pub fn iteration(&self) -> u64 {
        self.engine.iteration
    }

    /// The current model state.
    pub fn state(&self) -> &ModelState {
        &self.engine.state
    }

    /// Threshold-extract the inferred communities.
    pub fn communities(&self, threshold: f32) -> Communities {
        Communities::from_state(&self.engine.state, threshold)
    }

    /// The timing report over everything run so far (Figure 1 / Table III
    /// rows).
    pub fn report(&self) -> TraceReport {
        TraceReport {
            phases: self.trace.clone(),
            iterations: self.engine.iteration,
            total_seconds: self.clocks.max(),
        }
    }

    /// The cluster configuration.
    pub fn cluster_config(&self) -> &DistributedConfig {
        &self.dcfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialSampler;
    use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
    use mmsb_rand::Xoshiro256PlusPlus;

    fn setup(seed: u64) -> (Graph, HeldOut) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let gen = generate_planted(
            &PlantedConfig {
                num_vertices: 120,
                num_communities: 3,
                mean_community_size: 45.0,
                memberships_per_vertex: 1.1,
                internal_degree: 8.0,
                background_degree: 0.5,
            },
            &mut rng,
        );
        HeldOut::split(&gen.graph, 40, &mut rng)
    }

    #[test]
    fn split_contiguous_covers_everything() {
        let items: Vec<u32> = (0..10).collect();
        for parts in [1, 2, 3, 7, 10, 15] {
            let shares = split_contiguous(&items, parts);
            assert_eq!(shares.len(), parts);
            let flat: Vec<u32> = shares.iter().flat_map(|s| s.iter().copied()).collect();
            assert_eq!(flat, items, "parts={parts}");
        }
    }

    #[test]
    fn matches_sequential_chain_closely() {
        let (g, h) = setup(1);
        let cfg = SamplerConfig::new(3).with_seed(7);
        let mut seq = SequentialSampler::new(g.clone(), h.clone(), cfg.clone()).unwrap();
        let mut dist = DistributedSampler::new(g, h, cfg, DistributedConfig::das5(4)).unwrap();
        seq.run(10);
        dist.run(10);
        // pi rows must match bitwise (phi updates are per-vertex pure).
        for a in 0..seq.state().n() {
            assert_eq!(seq.state().pi_row(a), dist.state().pi_row(a), "vertex {a}");
        }
        // theta matches up to the reduction association order.
        for (s, d) in seq.state().theta().iter().zip(dist.state().theta()) {
            let rel = (s - d).abs() / s.abs().max(1e-12);
            assert!(rel < 1e-6, "theta diverged: {s} vs {d}");
        }
    }

    #[test]
    fn worker_count_does_not_change_numerics() {
        let (g, h) = setup(2);
        let cfg = SamplerConfig::new(3).with_seed(3);
        let mut d2 =
            DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), DistributedConfig::das5(2))
                .unwrap();
        let mut d8 = DistributedSampler::new(g, h, cfg, DistributedConfig::das5(8)).unwrap();
        d2.run(8);
        d8.run(8);
        for a in 0..d2.state().n() {
            assert_eq!(d2.state().pi_row(a), d8.state().pi_row(a), "vertex {a}");
        }
        let p2 = d2.evaluate_perplexity();
        let p8 = d8.evaluate_perplexity();
        assert!((p2 - p8).abs() / p2 < 1e-9, "{p2} vs {p8}");
    }

    #[test]
    fn pipelining_changes_time_not_values() {
        let (g, h) = setup(3);
        let cfg = SamplerConfig::new(3).with_seed(5);
        let mut single = DistributedSampler::new(
            g.clone(),
            h.clone(),
            cfg.clone(),
            DistributedConfig::das5(4).with_pipeline(PipelineMode::Single),
        )
        .unwrap();
        let mut double = DistributedSampler::new(
            g,
            h,
            cfg,
            DistributedConfig::das5(4).with_pipeline(PipelineMode::Double),
        )
        .unwrap();
        single.run(6);
        double.run(6);
        for a in 0..single.state().n() {
            assert_eq!(single.state().pi_row(a), double.state().pi_row(a));
        }
        assert!(
            double.virtual_time() <= single.virtual_time() + 1e-12,
            "pipelining should never be slower: {} vs {}",
            double.virtual_time(),
            single.virtual_time()
        );
    }

    #[test]
    fn virtual_time_advances_and_report_is_consistent() {
        let (g, h) = setup(4);
        let cfg = SamplerConfig::new(3).with_seed(1);
        let mut d = DistributedSampler::new(g, h, cfg, DistributedConfig::das5(4)).unwrap();
        d.run(5);
        assert!(d.virtual_time() > 0.0);
        let r = d.report();
        assert_eq!(r.iterations, 5);
        assert!(r.total_ms_per_iter() > 0.0);
        assert!(r.phases.total(Phase::LoadPi) > 0.0);
        assert!(r.phases.total(Phase::UpdatePhi) > 0.0);
        assert!(r.phases.count(Phase::Barrier) >= 10);
    }

    #[test]
    fn rejects_bad_configs() {
        let (g, h) = setup(5);
        let cfg = SamplerConfig::new(3);
        assert!(DistributedSampler::new(
            g.clone(),
            h.clone(),
            cfg.clone(),
            DistributedConfig::das5(0)
        )
        .is_err());
        let full = cfg.clone().with_layout(StateLayout::FullPhi);
        assert!(DistributedSampler::new(g.clone(), h.clone(), full, DistributedConfig::das5(2))
            .is_err());
        let mut bad = DistributedConfig::das5(2);
        bad.chunk_vertices = 0;
        assert!(DistributedSampler::new(g, h, cfg, bad).is_err());
    }

    #[test]
    fn dedup_reads_cannot_be_slower_and_do_not_change_values() {
        let (g, h) = setup(7);
        let cfg = SamplerConfig::new(4).with_seed(6);
        let mut plain = DistributedSampler::new(
            g.clone(),
            h.clone(),
            cfg.clone(),
            DistributedConfig::das5(4),
        )
        .unwrap();
        let mut dedup = DistributedSampler::new(
            g,
            h,
            cfg,
            DistributedConfig::das5(4).with_dedup_reads(true),
        )
        .unwrap();
        plain.run(6);
        dedup.run(6);
        for a in 0..plain.state().n() {
            assert_eq!(plain.state().pi_row(a), dedup.state().pi_row(a));
        }
        let lp = plain.report().phases.total(mmsb_netsim::Phase::LoadPi);
        let ld = dedup.report().phases.total(mmsb_netsim::Phase::LoadPi);
        assert!(ld <= lp + 1e-12, "dedup load {ld} > plain {lp}");
    }

    #[test]
    fn more_workers_is_faster_for_fixed_problem() {
        // The strong-scaling sanity check behind Figure 1: with compute
        // dominated by per-worker shares, 8 workers should beat 2 workers
        // in virtual time for the same chain.
        let (g, h) = setup(6);
        let cfg = SamplerConfig::new(8)
            .with_seed(2)
            .with_neighbor_sample(48)
            .with_minibatch(mmsb_graph::minibatch::Strategy::RandomPair { size: 96 });
        let mut d2 =
            DistributedSampler::new(g.clone(), h.clone(), cfg.clone(), DistributedConfig::das5(2))
                .unwrap();
        let mut d8 = DistributedSampler::new(g, h, cfg, DistributedConfig::das5(8)).unwrap();
        d2.run(6);
        d8.run(6);
        assert!(
            d8.virtual_time() < d2.virtual_time(),
            "8 workers {} vs 2 workers {}",
            d8.virtual_time(),
            d2.virtual_time()
        );
    }
}
