//! The shared chunked step executed by the sequential and parallel
//! drivers.
//!
//! Both drivers run the *same* code over the *same* fixed chunk
//! boundaries; the only difference is whether the chunks of an iteration
//! execute on one thread or on a [`ThreadPool`]. Because every chunk
//! writes only to the buffer region owned by its chunk index, and the
//! theta chunks are combined by a fixed binary tree, the resulting chain
//! is bitwise-identical for any thread count — including one.

use crate::sampler::engine::{Engine, PHI_CHUNK};
use crate::workspace::Workspace;
use mmsb_netsim::obs_bridge;
use mmsb_netsim::Phase;
use mmsb_obs::id as obs_id;
use mmsb_pool::{tree_combine_f64, SharedSlice, ThreadPool};

/// Held-out pairs per perplexity chunk.
const PERPLEXITY_CHUNK: usize = 1024;

/// Phase-scoped instrumentation: opens the phase's span and (when metrics
/// are on) a stopwatch, and records the per-phase latency histogram on
/// drop. Everything it touches is a pre-sized atomic slot, so it is safe
/// on the zero-allocation hot path that `tests/zero_alloc.rs` gates.
struct PhaseObs {
    hist: usize,
    sw: Option<mmsb_obs::clock::Stopwatch>,
    _span: mmsb_obs::Span,
}

impl PhaseObs {
    fn open(phase: Phase) -> Self {
        Self {
            hist: obs_bridge::phase_hist_id(phase),
            sw: mmsb_obs::metrics_on().then(mmsb_obs::clock::Stopwatch::start),
            _span: mmsb_obs::span(obs_bridge::phase_span_id(phase)),
        }
    }
}

impl Drop for PhaseObs {
    fn drop(&mut self) {
        if let Some(sw) = self.sw {
            mmsb_obs::hist_record_ns(self.hist, sw.elapsed_ns());
        }
    }
}

/// Driver-owned per-iteration buffers, allocated once and reused.
pub(crate) struct StepBuffers {
    /// Flat phi updates: one `K`-row per mini-batch vertex.
    updates: Vec<f64>,
    /// Per-chunk theta gradients (`2K` each), combined in place.
    chunk_grads: Vec<f64>,
    /// Per-pair held-out probabilities.
    probs: Vec<f64>,
}

impl StepBuffers {
    // xlint: allow(hot-path-alloc) — setup-time construction: buffers are allocated once per engine and reused by every step
    pub fn new(engine: &Engine) -> Self {
        let k = engine.config.k;
        Self {
            updates: vec![0.0; engine.max_batch_vertices() * k],
            chunk_grads: vec![0.0; engine.max_theta_chunks() * 2 * k],
            probs: vec![0.0; engine.heldout.len()],
        }
    }
}

/// Grow `buf` to at least `len` elements. A no-op in the steady state —
/// the buffers are pre-sized from worst-case bounds — but keeps the
/// drivers correct if `replace_graph` raises those bounds.
fn ensure_len(buf: &mut Vec<f64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
}

/// One SG-MCMC iteration (Algorithm 1), chunked:
///
/// 1. draw the mini-batch (master RNG),
/// 2. per-vertex phi updates in [`PHI_CHUNK`]-vertex chunks, each chunk
///    writing its rows of the flat update buffer,
/// 3. apply the updates at the stage barrier,
/// 4. per-chunk theta gradients (`THETA_CHUNK` pairs each), combined by
///    a fixed binary tree, then the theta SGRLD step (theta RNG).
// xlint: allow(hot-path-panic) — updates/chunk_grads are sized in StepBuffers::new from the same engine maxima that bound every chunk range, so the disjoint per-chunk windows stay in bounds
pub(crate) fn step(
    engine: &mut Engine,
    pool: &ThreadPool,
    workspaces: &mut [Workspace],
    bufs: &mut StepBuffers,
) {
    let _step_span = mmsb_obs::span(obs_id::S_STEP);
    let step_sw = mmsb_obs::metrics_on().then(mmsb_obs::clock::Stopwatch::start);
    {
        let _p = PhaseObs::open(Phase::DrawMinibatch);
        engine.refresh_minibatch();
    }
    let k = engine.config.k;

    // Stage 2: phi updates.
    let nv = engine.mb_vertices.len();
    ensure_len(&mut bufs.updates, nv * k);
    {
        let _p = PhaseObs::open(Phase::UpdatePhi);
        let eng = &*engine;
        let out = SharedSlice::new(&mut bufs.updates[..nv * k]);
        pool.run_with(workspaces, nv.div_ceil(PHI_CHUNK), |ws, chunk| {
            let lo = chunk * PHI_CHUNK;
            let hi = ((chunk + 1) * PHI_CHUNK).min(nv);
            // SAFETY: chunk ranges [lo*k, hi*k) are pairwise disjoint.
            let chunk_out = unsafe { out.range(lo * k, hi * k) };
            for (j, idx) in (lo..hi).enumerate() {
                eng.compute_phi_update_into(
                    eng.mb_vertices[idx],
                    ws,
                    &mut chunk_out[j * k..(j + 1) * k],
                );
            }
        });
    }

    // Stage 3: barrier, then apply.
    {
        let _p = PhaseObs::open(Phase::UpdatePi);
        engine.apply_phi_updates_flat(&bufs.updates[..nv * k]);
    }

    // Stage 4: theta update against the fresh pi.
    let _p_theta = PhaseObs::open(Phase::UpdateBetaTheta);
    let n_chunks = engine.theta_chunk_count();
    ensure_len(&mut bufs.chunk_grads, n_chunks * 2 * k);
    {
        let eng = &*engine;
        let out = SharedSlice::new(&mut bufs.chunk_grads[..n_chunks * 2 * k]);
        pool.run_with(workspaces, n_chunks, |ws, chunk| {
            // SAFETY: one disjoint 2K row per chunk.
            let grad = unsafe { out.range(chunk * 2 * k, (chunk + 1) * 2 * k) };
            eng.theta_gradient_chunk(chunk, ws, grad);
        });
    }
    tree_combine_f64(&mut bufs.chunk_grads[..n_chunks * 2 * k], 2 * k, n_chunks);
    engine.apply_theta_update(&bufs.chunk_grads[..2 * k]);
    drop(_p_theta);

    engine.bump_iteration();
    mmsb_obs::counter_add(obs_id::C_SAMPLER_STEPS, 1);
    if let Some(sw) = step_sw {
        mmsb_obs::hist_record_ns(obs_id::H_STEP_NS, sw.elapsed_ns());
    }
}

/// Evaluate held-out perplexity: each chunk fills its disjoint slice of
/// one flat probability buffer (no per-chunk vectors), then the sample is
/// recorded in pair order.
// xlint: allow(hot-path-panic) — probs is sized to heldout.len() in StepBuffers::new and each chunk writes only its disjoint pair-range slice of it
pub(crate) fn evaluate_perplexity(
    engine: &mut Engine,
    pool: &ThreadPool,
    workspaces: &mut [Workspace],
    bufs: &mut StepBuffers,
) -> f64 {
    let _p = PhaseObs::open(Phase::Perplexity);
    let n = engine.heldout.len();
    ensure_len(&mut bufs.probs, n);
    {
        let eng = &*engine;
        let out = SharedSlice::new(&mut bufs.probs[..n]);
        pool.run_with(workspaces, n.div_ceil(PERPLEXITY_CHUNK), |_ws, chunk| {
            let lo = chunk * PERPLEXITY_CHUNK;
            let hi = ((chunk + 1) * PERPLEXITY_CHUNK).min(n);
            // SAFETY: chunk ranges are pairwise disjoint.
            let slice = unsafe { out.range(lo, hi) };
            eng.perplexity_probs_into(lo, hi, slice);
        });
    }
    engine.record_perplexity_sample(&bufs.probs[..n])
}
