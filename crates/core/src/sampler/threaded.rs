//! A *really concurrent* distributed driver: OS-thread workers, message
//! passing, shared one-sided state.
//!
//! The lockstep [`crate::DistributedSampler`] executes ranks serially so
//! per-rank compute can be measured cleanly; this driver runs the same
//! master–worker protocol with genuine concurrency, exactly the way the
//! paper's MPI processes do:
//!
//! * the master draws mini-batches and **scatters** each worker's vertex
//!   share *with the adjacency rows* (workers never hold the full edge
//!   set, paper §III-A) plus the current `beta`/`theta`, all through
//!   `mmsb-comm` messages,
//! * workers perform `update_phi` against the shared [`ShardedStore`]
//!   (shared memory standing in for RDMA: one-sided access, no remote
//!   CPU),
//! * stages are separated by real barriers; the `theta` gradient is
//!   combined with a real reduce; held-out probabilities are gathered.
//!
//! The chain it produces is **bit-identical** to the lockstep driver —
//! both are built from the same worker-side kernels and the same
//! `(seed, iteration, vertex)` randomness — which the integration tests
//! assert. Use this driver for functional/concurrency validation; use the
//! lockstep driver when you need cluster timing.

use super::engine::{phi_update_from_dkv_rows, Engine, WorkerParams};
use crate::config::{SamplerConfig, StateLayout};
use crate::kernels::theta::theta_gradient_pair;
use crate::kernels::RowView;
use crate::perplexity::link_probability;
use crate::{CoreError, ModelState};
use mmsb_comm::message::{MessageReader, MessageWriter};
use mmsb_comm::{collectives, Endpoint, LocalCluster};
use mmsb_dkv::pipeline::{ChunkedReader, PipelineMode, PrefetchingReader, ReaderScratch};
use mmsb_dkv::{DkvStore, Partition, ShardedStore};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::neighbor::NeighborSampler;
use mmsb_graph::{Graph, VertexId};
use mmsb_netsim::NetworkModel;
use mmsb_rand::Xoshiro256PlusPlus;
use std::sync::{Arc, RwLock};

/// Mini-batch vertices per load/compute chunk in the worker threads —
/// the granularity at which the prefetching reader overlaps store reads
/// with `update_phi` compute.
const CHUNK_VERTICES: usize = 16;

/// Result of a threaded training run.
#[derive(Debug)]
pub struct ThreadedOutcome {
    /// Final model state (pi synchronized back from the store; theta and
    /// beta from the master).
    pub state: ModelState,
    /// `(iteration, averaged perplexity)` at each evaluation point.
    pub perplexity_trace: Vec<(u64, f64)>,
    /// The final chain state as a restorable, servable
    /// [`crate::Checkpoint`] (the PR 4 format v1 artifact), captured after
    /// the pi sync-back.
    pub checkpoint: crate::Checkpoint,
}

/// One-shot threaded training run.
///
/// Spawns `workers` OS threads plus uses the calling thread as the
/// master; runs `iterations` iterations, evaluating held-out perplexity
/// every `perplexity_every` iterations (0 = never). `pipeline` selects
/// how each worker loads `pi`: [`PipelineMode::Single`] reads
/// synchronously; [`PipelineMode::Double`] overlaps the next chunk's
/// store read with the current chunk's compute on a per-worker
/// background thread — same chunks, same delivery order, bitwise-equal
/// chain.
pub fn train_threaded(
    graph: Graph,
    heldout: HeldOut,
    config: SamplerConfig,
    workers: usize,
    iterations: u64,
    perplexity_every: u64,
    pipeline: PipelineMode,
) -> Result<ThreadedOutcome, CoreError> {
    if workers == 0 {
        return Err(CoreError::InvalidConfig {
            reason: "threaded sampler needs at least one worker".into(),
        });
    }
    if config.layout != StateLayout::PiSumPhi {
        return Err(CoreError::InvalidConfig {
            reason: "threaded sampler requires the PiSumPhi layout".into(),
        });
    }
    let mut engine = Engine::new(graph, heldout, config)?;
    let n = engine.graph.num_vertices();
    let k = engine.config.k;

    // Populate the shared store from the initial state.
    let store = {
        let mut s = ShardedStore::new(Partition::new(n, workers), k + 1);
        let mut row = vec![0.0f32; k + 1];
        for a in 0..n {
            engine.state.encode_dkv_row(a, &mut row);
            s.write_batch(&[a], &row)?;
        }
        Arc::new(RwLock::new(s))
    };

    let mut endpoints = LocalCluster::spawn(workers + 1);
    let master_ep = endpoints.remove(0);
    let heldout_shared = Arc::new(engine.heldout.clone());

    // ---------------- worker threads ----------------
    let mut handles = Vec::with_capacity(workers);
    for ep in endpoints {
        let store = Arc::clone(&store);
        let heldout = Arc::clone(&heldout_shared);
        let cfg = engine.config.clone();
        handles.push(std::thread::spawn(move || {
            worker_loop(ep, store, heldout, cfg, n, workers, iterations, pipeline)
        }));
    }

    // ---------------- master loop ----------------
    let mut trace = Vec::new();
    for t in 0..iterations {
        let mb = engine.draw_minibatch();
        let vertices = mb.vertices();
        let do_perplexity = perplexity_every > 0 && (t + 1) % perplexity_every == 0;

        // Scatter shares: vertex ids + adjacency rows + pair share +
        // weights + the current global parameters.
        let v_shares = split(&vertices, workers);
        let p_shares = split(&mb.pairs, workers);
        let w_shares = split(&mb.weights, workers);
        for w in 0..workers {
            let mut msg = MessageWriter::new();
            msg.put_f64_slice(engine.state.beta());
            msg.put_f64_slice(engine.state.theta());
            let ids: Vec<u32> = v_shares[w].iter().map(|v| v.0).collect();
            msg.put_u32_slice(&ids);
            for &v in v_shares[w] {
                msg.put_u32_slice(engine.neighbors_master(v));
            }
            let pair_words: Vec<u32> = p_shares[w]
                .iter()
                .flat_map(|&(e, y)| [e.lo().0, e.hi().0, u32::from(y)])
                .collect();
            msg.put_u32_slice(&pair_words);
            msg.put_f64_slice(w_shares[w]);
            msg.put_u32(u32::from(do_perplexity));
            master_ep
                .send(w + 1, msg.finish())
                .map_err(comm_error)?;
        }

        // Same barrier schedule as the workers.
        master_ep.barrier(); // after update_phi
        master_ep.barrier(); // after pi write-back

        // Reduce theta gradients (master contributes zeros).
        let zeros = vec![0.0f64; 2 * k];
        let grad = collectives::reduce_sum_f64(&master_ep, 0, &zeros)
            .map_err(comm_error)?
            .expect("master is the reduce root");
        engine.apply_theta_update(&grad);

        if do_perplexity {
            let gathered = collectives::gather_bytes(&master_ep, 0, Vec::new())
                .map_err(comm_error)?
                .expect("master is the gather root");
            let mut probs = Vec::with_capacity(engine.heldout.len());
            for payload in gathered.into_iter().skip(1) {
                let mut r = MessageReader::new(&payload);
                probs.extend(r.get_f64_slice().map_err(comm_error)?);
                r.finish().map_err(comm_error)?;
            }
            let perplexity = engine.record_perplexity_sample(&probs);
            trace.push((t + 1, perplexity));
        }
        engine.bump_iteration();
    }

    for h in handles {
        h.join().expect("worker thread panicked")?;
    }

    // Sync pi back from the store into the master's state.
    let store = store.read().expect("store lock poisoned");
    let mut row = vec![0.0f32; k + 1];
    for a in 0..n {
        store.read_batch(&[a], &mut row)?;
        engine.state.apply_dkv_row(a, &row);
    }
    let checkpoint = crate::Checkpoint::capture(&engine);
    Ok(ThreadedOutcome {
        state: engine.state,
        perplexity_trace: trace,
        checkpoint,
    })
}

fn comm_error(e: mmsb_comm::CommError) -> CoreError {
    CoreError::InvalidConfig {
        reason: format!("communicator failure: {e}"),
    }
}

/// Evenly split `items` into `parts` contiguous chunks.
fn split<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let nitems = items.len();
    let base = nitems / parts;
    let extra = nitems % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(&items[lo..lo + len]);
        lo += len;
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    ep: Endpoint,
    store: Arc<RwLock<ShardedStore>>,
    heldout: Arc<HeldOut>,
    config: SamplerConfig,
    n: u32,
    workers: usize,
    iterations: u64,
    pipeline: PipelineMode,
) -> Result<(), CoreError> {
    let k = config.k;
    let row_len = k + 1;
    let w = ep.rank() - 1; // worker index (0-based)
    let neighbor_sampler = NeighborSampler::new(n, config.neighbor_sample);

    // Chunked-load machinery, persistent across iterations: the reader
    // scratch (row ping-pong buffers, timing vectors), the key/segment
    // staging, and — in Double mode — the prefetching reader whose
    // background thread lives as long as this worker. The cost model fed
    // to the readers only prices the modeled makespan, which this driver
    // ignores (it measures real wall-clock); any model works.
    let net = NetworkModel::fdr_infiniband();
    let mut scratch = ReaderScratch::new();
    let sync_reader = ChunkedReader::new(CHUNK_VERTICES, PipelineMode::Single);
    let mut prefetch = match pipeline {
        PipelineMode::Single => None,
        PipelineMode::Double => Some(PrefetchingReader::new(CHUNK_VERTICES)),
    };
    let mut keys_buf: Vec<u32> = Vec::new();
    let mut seg_lens: Vec<usize> = Vec::new();
    let mut linked_buf: Vec<bool> = Vec::new();

    for t in 0..iterations {
        // ---- receive this iteration's share ----
        let payload = ep.recv(0).map_err(comm_error)?;
        let mut r = MessageReader::new(&payload);
        let beta = r.get_f64_slice().map_err(comm_error)?;
        let theta = r.get_f64_slice().map_err(comm_error)?;
        let ids = r.get_u32_slice().map_err(comm_error)?;
        let adjacency: Vec<Vec<u32>> = (0..ids.len())
            .map(|_| r.get_u32_slice())
            .collect::<Result<_, _>>()
            .map_err(comm_error)?;
        let pair_words = r.get_u32_slice().map_err(comm_error)?;
        let weights = r.get_f64_slice().map_err(comm_error)?;
        let do_perplexity = r.get_u32().map_err(comm_error)? != 0;
        r.finish().map_err(comm_error)?;

        let params = WorkerParams {
            k,
            n,
            alpha: config.alpha,
            delta: config.delta,
            eps: config.step.at(t),
            backend: config.backend(),
        };

        // ---- update_phi: one-sided chunked reads, local compute ----
        // Neighbor sets are sampled up front (each vertex owns its RNG
        // stream, so sampling order is immaterial); the rows for a whole
        // vertex chunk are then loaded in one batched read, optionally
        // prefetched a chunk ahead of the compute.
        let mut updates: Vec<(u32, Vec<f64>)> = Vec::with_capacity(ids.len());
        {
            let mut per_vertex: Vec<(u32, Vec<VertexId>, Xoshiro256PlusPlus)> = ids
                .iter()
                .map(|&v| {
                    let mut rng = crate::rngs::vertex_rng(config.seed, t, v);
                    let ns = neighbor_sampler.sample(VertexId(v), Some(&heldout), &mut rng);
                    (v, ns, rng)
                })
                .collect();
            keys_buf.clear();
            seg_lens.clear();
            for chunk in per_vertex.chunks(CHUNK_VERTICES) {
                // Keys: own row then neighbor rows, per vertex.
                let before = keys_buf.len();
                for (v, ns, _) in chunk.iter() {
                    keys_buf.push(*v);
                    keys_buf.extend(ns.iter().map(|b| b.0));
                }
                seg_lens.push(keys_buf.len() - before);
            }
            let store = store.read().expect("store lock poisoned");
            let mut vi = 0usize;
            let adjacency = &adjacency;
            let linked = &mut linked_buf;
            let on_chunk = |_start: usize, chunk_keys: &[u32], rows: &[f32]| {
                let mut offset = 0usize;
                while offset < chunk_keys.len() {
                    let (v, ns, rng) = &mut per_vertex[vi];
                    let own = &rows[offset * row_len..(offset + 1) * row_len];
                    let nrows =
                        &rows[(offset + 1) * row_len..(offset + 1 + ns.len()) * row_len];
                    linked.clear();
                    linked.extend(ns.iter().map(|b| adjacency[vi].binary_search(&b.0).is_ok()));
                    let (_, phi) = phi_update_from_dkv_rows(
                        &params,
                        &beta,
                        VertexId(*v),
                        own,
                        &RowView::new(nrows, row_len),
                        linked,
                        rng,
                    );
                    updates.push((*v, phi));
                    offset += 1 + ns.len();
                    vi += 1;
                }
            };
            match &mut prefetch {
                Some(reader) => {
                    reader.run_segments(&store, w, &keys_buf, &seg_lens, &net, &mut scratch, on_chunk)?;
                }
                None => {
                    sync_reader
                        .run_segments(&store, w, &keys_buf, &seg_lens, &net, &mut scratch, on_chunk)?;
                }
            }
        }
        ep.barrier(); // memory-consistency barrier before update_pi

        // ---- update_pi: write fresh rows through the store ----
        {
            let keys: Vec<u32> = updates.iter().map(|(v, _)| *v).collect();
            let mut vals = vec![0.0f32; keys.len() * row_len];
            for (i, (_, phi)) in updates.iter().enumerate() {
                let sum: f64 = phi.iter().sum();
                let out = &mut vals[i * row_len..(i + 1) * row_len];
                for (o, &x) in out[..k].iter_mut().zip(phi) {
                    *o = (x / sum) as f32;
                }
                out[k] = sum as f32;
            }
            let mut store = store.write().expect("store lock poisoned");
            store.write_batch(&keys, &vals)?;
        }
        ep.barrier(); // fresh pi everywhere before update_beta

        // ---- update_beta_theta: local gradient, global reduce ----
        let mut grad = vec![0.0f64; 2 * k];
        {
            let store = store.read().expect("store lock poisoned");
            let mut row_a = vec![0.0f32; row_len];
            let mut row_b = vec![0.0f32; row_len];
            if params.backend == mmsb_simd::Backend::Scalar {
                let mut f_diag = vec![0.0f64; k];
                for (chunk, &weight) in pair_words.chunks_exact(3).zip(weights.iter()) {
                    let (lo, hi, y) = (chunk[0], chunk[1], chunk[2] != 0);
                    store.read_batch(&[lo], &mut row_a)?;
                    store.read_batch(&[hi], &mut row_b)?;
                    theta_gradient_pair(
                        &row_a[..k],
                        &row_b[..k],
                        y,
                        weight,
                        &beta,
                        &theta,
                        config.delta,
                        &mut f_diag,
                        &mut grad,
                    );
                }
            } else {
                // Same begin/accumulate/finish sequence as the lockstep
                // driver's `theta_gradient_slice`, so both drivers produce
                // identical bytes under any backend.
                let mut scratch = mmsb_simd::ThetaScratch::new(k);
                mmsb_simd::theta_chunk_begin(&beta, &theta, config.delta, &mut scratch);
                for (chunk, &weight) in pair_words.chunks_exact(3).zip(weights.iter()) {
                    let (lo, hi, y) = (chunk[0], chunk[1], chunk[2] != 0);
                    store.read_batch(&[lo], &mut row_a)?;
                    store.read_batch(&[hi], &mut row_b)?;
                    mmsb_simd::theta_accumulate_pair(
                        params.backend,
                        &mut scratch,
                        &row_a[..k],
                        &row_b[..k],
                        y,
                        weight,
                    );
                }
                mmsb_simd::theta_chunk_finish(&scratch, &mut grad);
            }
        }
        collectives::reduce_sum_f64(&ep, 0, &grad).map_err(comm_error)?;

        // ---- perplexity (gathered at the master) ----
        if do_perplexity {
            let share = heldout.partition(w, workers);
            let mut probs = Vec::with_capacity(share.len());
            {
                let store = store.read().expect("store lock poisoned");
                let mut row_a = vec![0.0f32; row_len];
                let mut row_b = vec![0.0f32; row_len];
                for &(e, y) in share {
                    store.read_batch(&[e.lo().0], &mut row_a)?;
                    store.read_batch(&[e.hi().0], &mut row_b)?;
                    probs.push(link_probability(
                        &row_a[..k],
                        &row_b[..k],
                        &beta,
                        config.delta,
                        y,
                    ));
                }
            }
            let mut msg = MessageWriter::with_capacity(8 + probs.len() * 8);
            msg.put_f64_slice(&probs);
            collectives::gather_bytes(&ep, 0, msg.finish()).map_err(comm_error)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DistributedConfig, DistributedSampler};
    use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
    use mmsb_rand::Xoshiro256PlusPlus;

    fn setup(seed: u64) -> (Graph, HeldOut) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let generated = generate_planted(
            &PlantedConfig {
                num_vertices: 150,
                num_communities: 3,
                mean_community_size: 55.0,
                memberships_per_vertex: 1.1,
                internal_degree: 8.0,
                background_degree: 0.5,
            },
            &mut rng,
        );
        HeldOut::split(&generated.graph, 50, &mut rng)
    }

    fn config() -> SamplerConfig {
        SamplerConfig::new(3)
            .with_seed(21)
            .with_minibatch(mmsb_graph::minibatch::Strategy::StratifiedNode {
                partitions: 8,
                anchors: 4,
            })
    }

    #[test]
    fn matches_lockstep_driver_bitwise() {
        let (g, h) = setup(1);
        let mut lockstep =
            DistributedSampler::new(g.clone(), h.clone(), config(), DistributedConfig::das5(3))
                .unwrap();
        lockstep.run(8);
        let threaded = train_threaded(g, h, config(), 3, 8, 0, PipelineMode::Double).unwrap();
        for a in 0..threaded.state.n() {
            assert_eq!(
                lockstep.state().pi_row(a),
                threaded.state.pi_row(a),
                "pi diverged at vertex {a}"
            );
        }
        assert_eq!(
            lockstep.state().theta(),
            threaded.state.theta(),
            "theta diverged"
        );
    }

    #[test]
    fn worker_count_does_not_change_threaded_numerics() {
        let (g, h) = setup(2);
        let a = train_threaded(g.clone(), h.clone(), config(), 2, 6, 0, PipelineMode::Single).unwrap();
        let b = train_threaded(g, h, config(), 5, 6, 0, PipelineMode::Double).unwrap();
        for v in 0..a.state.n() {
            assert_eq!(a.state.pi_row(v), b.state.pi_row(v), "vertex {v}");
        }
        // Theta matches up to the association order of the distributed
        // reduction (the per-worker partial sums differ with the count).
        for (x, y) in a.state.theta().iter().zip(b.state.theta()) {
            assert!(
                (x - y).abs() / x.abs().max(1e-12) < 1e-9,
                "theta diverged beyond reduction tolerance: {x} vs {y}"
            );
        }
    }

    #[test]
    fn perplexity_trace_is_recorded_and_finite() {
        let (g, h) = setup(3);
        let out = train_threaded(g, h, config(), 3, 9, 3, PipelineMode::Double).unwrap();
        assert_eq!(out.perplexity_trace.len(), 3);
        assert_eq!(out.perplexity_trace[0].0, 3);
        assert_eq!(out.perplexity_trace[2].0, 9);
        for (_, p) in out.perplexity_trace {
            assert!(p.is_finite() && p > 1.0);
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let (g, h) = setup(4);
        assert!(train_threaded(g.clone(), h.clone(), config(), 0, 1, 0, PipelineMode::Single).is_err());
        let full = config().with_layout(StateLayout::FullPhi);
        assert!(train_threaded(g, h, full, 2, 1, 0, PipelineMode::Single).is_err());
    }
}
