//! The sequential reference driver (Algorithm 1, staged form).

use super::driver::{self, StepBuffers};
use super::Engine;
use crate::communities::Communities;
use crate::config::SamplerConfig;
use crate::workspace::Workspace;
use crate::{CoreError, ModelState};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::Graph;
use mmsb_ooc::GraphBackend;
use mmsb_pool::ThreadPool;

/// Single-threaded SG-MCMC sampler — the reference every other driver is
/// tested against.
///
/// Runs the shared chunked driver on a one-thread [`ThreadPool`], which
/// executes every chunk inline on the calling thread in chunk order. The
/// multi-threaded [`crate::ParallelSampler`] runs the *same* driver code,
/// so their chains are bitwise-identical by construction.
pub struct SequentialSampler {
    engine: Engine,
    pool: ThreadPool,
    workspaces: Vec<Workspace>,
    bufs: StepBuffers,
}

impl SequentialSampler {
    /// Build a sampler over a training graph and held-out set.
    pub fn new(graph: Graph, heldout: HeldOut, config: SamplerConfig) -> Result<Self, CoreError> {
        Self::with_backend(graph.into(), heldout, config)
    }

    /// Build a sampler over either graph backend (resident CSR or the
    /// out-of-core block-cached format). The chain is bitwise identical
    /// across backends.
    pub fn with_backend(
        graph: GraphBackend,
        heldout: HeldOut,
        config: SamplerConfig,
    ) -> Result<Self, CoreError> {
        let engine = Engine::with_backend(graph, heldout, config)?;
        let bufs = StepBuffers::new(&engine);
        let cache = engine
            .graph
            .new_cache(engine.config.graph_cache_blocks, engine.config.seed ^ 1);
        let workspaces = vec![
            Workspace::new(engine.config.k, engine.config.neighbor_sample)
                .with_graph_cache(cache),
        ];
        Ok(Self {
            engine,
            pool: ThreadPool::new(1),
            workspaces,
            bufs,
        })
    }

    /// Run one full iteration (mini-batch, `phi` updates, `theta` update).
    pub fn step(&mut self) {
        driver::step(
            &mut self.engine,
            &self.pool,
            &mut self.workspaces,
            &mut self.bufs,
        );
    }

    /// Run `iterations` steps.
    pub fn run(&mut self, iterations: u64) {
        for _ in 0..iterations {
            self.step();
        }
    }

    /// Evaluate held-out perplexity, folding the current state into the
    /// running posterior average (Eq. 7).
    pub fn evaluate_perplexity(&mut self) -> f64 {
        driver::evaluate_perplexity(
            &mut self.engine,
            &self.pool,
            &mut self.workspaces,
            &mut self.bufs,
        )
    }

    /// Advance to a new training snapshot (same vertex set, evolved edge
    /// set) without discarding the learned state — streaming-data usage.
    pub fn advance_to_snapshot(
        &mut self,
        graph: Graph,
        heldout: HeldOut,
    ) -> Result<(), CoreError> {
        self.engine.replace_graph(graph, heldout)
    }

    /// Completed iterations.
    pub fn iteration(&self) -> u64 {
        self.engine.iteration
    }

    /// The current model state.
    pub fn state(&self) -> &ModelState {
        &self.engine.state
    }

    /// Threshold-extract the inferred communities.
    pub fn communities(&self, threshold: f32) -> Communities {
        Communities::from_state(&self.engine.state, threshold)
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.engine.config
    }

    /// Capture the full chain state as a restorable, servable
    /// [`crate::Checkpoint`] (the PR 4 format v1 artifact).
    pub fn checkpoint(&self) -> crate::Checkpoint {
        crate::Checkpoint::capture(&self.engine)
    }

    /// The training graph backend.
    pub fn graph(&self) -> &GraphBackend {
        &self.engine.graph
    }

    /// The held-out evaluation set.
    pub fn heldout(&self) -> &HeldOut {
        &self.engine.heldout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
    use mmsb_rand::Xoshiro256PlusPlus;

    fn setup(seed: u64) -> (Graph, HeldOut) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let gen = generate_planted(
            &PlantedConfig {
                num_vertices: 200,
                num_communities: 4,
                mean_community_size: 55.0,
                memberships_per_vertex: 1.1,
                internal_degree: 10.0,
                background_degree: 0.5,
            },
            &mut rng,
        );
        HeldOut::split(&gen.graph, 60, &mut rng)
    }

    #[test]
    fn steps_advance_and_stay_finite() {
        let (g, h) = setup(1);
        let mut s = SequentialSampler::new(g, h, SamplerConfig::new(4).with_seed(2)).unwrap();
        s.run(20);
        assert_eq!(s.iteration(), 20);
        for a in 0..s.state().n() {
            let sum: f32 = s.state().pi_row(a).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "vertex {a} pi sum {sum}");
        }
        assert!(s.state().beta().iter().all(|&b| b > 0.0 && b < 1.0));
    }

    #[test]
    fn perplexity_decreases_with_training() {
        let (g, h) = setup(3);
        let mut s = SequentialSampler::new(g, h, SamplerConfig::new(4).with_seed(4)).unwrap();
        let before = s.evaluate_perplexity();
        // Fresh accumulator for the "after" measurement: rebuild sampler
        // state by training further and measuring on a new sampler clone of
        // the trained state is overkill; instead run long and compare the
        // running average, which still must drop markedly from random init.
        s.run(400);
        let mut after = 0.0;
        for _ in 0..3 {
            after = s.evaluate_perplexity();
        }
        assert!(
            after < before,
            "perplexity should improve: before {before}, after {after}"
        );
    }

    #[test]
    fn same_seed_same_chain() {
        let (g, h) = setup(5);
        let cfg = SamplerConfig::new(3).with_seed(11);
        let mut s1 = SequentialSampler::new(g.clone(), h.clone(), cfg.clone()).unwrap();
        let mut s2 = SequentialSampler::new(g, h, cfg).unwrap();
        s1.run(15);
        s2.run(15);
        assert_eq!(s1.state().theta(), s2.state().theta());
        for a in 0..s1.state().n() {
            assert_eq!(s1.state().pi_row(a), s2.state().pi_row(a), "vertex {a}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (g, h) = setup(6);
        let mut s1 =
            SequentialSampler::new(g.clone(), h.clone(), SamplerConfig::new(3).with_seed(1))
                .unwrap();
        let mut s2 = SequentialSampler::new(g, h, SamplerConfig::new(3).with_seed(2)).unwrap();
        s1.run(5);
        s2.run(5);
        assert_ne!(s1.state().theta(), s2.state().theta());
    }

    #[test]
    fn rejects_invalid_config() {
        let (g, h) = setup(7);
        assert!(SequentialSampler::new(g, h, SamplerConfig::new(0)).is_err());
    }

    #[test]
    fn communities_extractable_after_training() {
        let (g, h) = setup(8);
        let mut s = SequentialSampler::new(g, h, SamplerConfig::new(4).with_seed(3)).unwrap();
        s.run(50);
        let c = s.communities(0.25);
        assert_eq!(c.num_communities(), 4);
    }
}
