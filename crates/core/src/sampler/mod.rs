//! The three sampler drivers and their shared engine.
//!
//! All drivers execute the *staged* algorithm: within one iteration, every
//! `phi` update reads the state as of the iteration's start, updates are
//! applied together at the stage boundary, and the `theta` update then
//! reads the fresh `pi` (the barrier structure of paper §III-C). The
//! sequential driver is the reference; the parallel and distributed
//! drivers must reproduce its chain.

pub mod distributed;
pub mod parallel;
pub mod sequential;
pub mod threaded;

mod driver;
mod engine;

pub(crate) use engine::Engine;
