//! The node-level parallel driver (the paper's OpenMP layer).
//!
//! `update_phi` is data-parallel over mini-batch vertices and the held-out
//! perplexity is data-parallel over pairs; both fan out over rayon. Every
//! random draw is keyed by `(seed, iteration, vertex)`, so the chain is
//! **bitwise identical** to [`crate::SequentialSampler`] regardless of the
//! number of threads or the scheduler — the property the equivalence tests
//! pin down.

use super::Engine;
use crate::communities::Communities;
use crate::config::SamplerConfig;
use crate::{CoreError, ModelState};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::Graph;
use rayon::prelude::*;

/// Multi-threaded SG-MCMC sampler.
pub struct ParallelSampler {
    engine: Engine,
}

impl ParallelSampler {
    /// Build a sampler over a training graph and held-out set. Uses the
    /// global rayon pool.
    pub fn new(graph: Graph, heldout: HeldOut, config: SamplerConfig) -> Result<Self, CoreError> {
        Ok(Self {
            engine: Engine::new(graph, heldout, config)?,
        })
    }

    /// Run one full iteration.
    pub fn step(&mut self) {
        let mb = self.engine.draw_minibatch();
        let vertices = mb.vertices();
        // Parallel phase: pure per-vertex computation; results arrive in
        // vertex order because par_iter preserves indexed order on collect.
        let updates: Vec<_> = vertices
            .par_iter()
            .map(|&a| self.engine.compute_phi_update(a))
            .collect();
        self.engine.apply_phi_updates(&updates);
        // Theta gradient: summed serially in mini-batch order so the
        // floating-point reduction order matches the sequential driver.
        let grad = self.engine.theta_gradient_slice(&mb.pairs, &mb.weights);
        self.engine.apply_theta_update(&grad);
        self.engine.bump_iteration();
    }

    /// Run `iterations` steps.
    pub fn run(&mut self, iterations: u64) {
        for _ in 0..iterations {
            self.step();
        }
    }

    /// Evaluate held-out perplexity (parallel over fixed-boundary chunks,
    /// combined in chunk order — deterministic).
    pub fn evaluate_perplexity(&mut self) -> f64 {
        let n = self.engine.heldout.len();
        let chunk = 1024;
        let bounds: Vec<(usize, usize)> = (0..n.div_ceil(chunk))
            .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
            .collect();
        let chunks: Vec<Vec<f64>> = bounds
            .par_iter()
            .map(|&(lo, hi)| self.engine.perplexity_probs(lo, hi))
            .collect();
        let probs: Vec<f64> = chunks.into_iter().flatten().collect();
        self.engine.record_perplexity_sample(&probs)
    }

    /// Advance to a new training snapshot (same vertex set, evolved edge
    /// set) without discarding the learned state — streaming-data usage.
    pub fn advance_to_snapshot(
        &mut self,
        graph: Graph,
        heldout: HeldOut,
    ) -> Result<(), CoreError> {
        self.engine.replace_graph(graph, heldout)
    }

    /// Completed iterations.
    pub fn iteration(&self) -> u64 {
        self.engine.iteration
    }

    /// The current model state.
    pub fn state(&self) -> &ModelState {
        &self.engine.state
    }

    /// Threshold-extract the inferred communities.
    pub fn communities(&self, threshold: f32) -> Communities {
        Communities::from_state(&self.engine.state, threshold)
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.engine.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialSampler;
    use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
    use mmsb_rand::Xoshiro256PlusPlus;

    fn setup(seed: u64) -> (Graph, HeldOut) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let gen = generate_planted(
            &PlantedConfig {
                num_vertices: 150,
                num_communities: 3,
                mean_community_size: 55.0,
                memberships_per_vertex: 1.1,
                internal_degree: 9.0,
                background_degree: 0.5,
            },
            &mut rng,
        );
        HeldOut::split(&gen.graph, 50, &mut rng)
    }

    #[test]
    fn matches_sequential_chain_bitwise() {
        let (g, h) = setup(1);
        let cfg = SamplerConfig::new(3).with_seed(9);
        let mut seq = SequentialSampler::new(g.clone(), h.clone(), cfg.clone()).unwrap();
        let mut par = ParallelSampler::new(g, h, cfg).unwrap();
        seq.run(12);
        par.run(12);
        assert_eq!(seq.state().theta(), par.state().theta());
        for a in 0..seq.state().n() {
            assert_eq!(seq.state().pi_row(a), par.state().pi_row(a), "vertex {a}");
        }
    }

    #[test]
    fn perplexity_matches_sequential() {
        let (g, h) = setup(2);
        let cfg = SamplerConfig::new(3).with_seed(4);
        let mut seq = SequentialSampler::new(g.clone(), h.clone(), cfg.clone()).unwrap();
        let mut par = ParallelSampler::new(g, h, cfg).unwrap();
        seq.run(5);
        par.run(5);
        let ps = seq.evaluate_perplexity();
        let pp = par.evaluate_perplexity();
        assert_eq!(ps, pp, "perplexity diverged: {ps} vs {pp}");
    }

    #[test]
    fn runs_and_extracts_communities() {
        let (g, h) = setup(3);
        let mut s = ParallelSampler::new(g, h, SamplerConfig::new(3).with_seed(5)).unwrap();
        s.run(30);
        assert_eq!(s.iteration(), 30);
        assert_eq!(s.communities(0.3).num_communities(), 3);
        assert_eq!(s.config().k, 3);
    }
}
