//! The node-level parallel driver (the paper's OpenMP layer).
//!
//! `update_phi` is data-parallel over mini-batch vertices and the held-out
//! perplexity is data-parallel over pairs; both fan out over the
//! from-scratch `mmsb-pool` fork-join pool. Every random draw is keyed by
//! `(seed, iteration, vertex)`, chunk boundaries are fixed, and the theta
//! reduction is a fixed binary tree over chunk partials — so the chain is
//! **bitwise identical** to [`crate::SequentialSampler`] regardless of the
//! number of threads or the scheduler — the property the equivalence tests
//! pin down.

use super::driver::{self, StepBuffers};
use super::Engine;
use crate::communities::Communities;
use crate::config::SamplerConfig;
use crate::workspace::Workspace;
use crate::{CoreError, ModelState};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::Graph;
use mmsb_ooc::GraphBackend;
use mmsb_pool::ThreadPool;

/// Multi-threaded SG-MCMC sampler.
pub struct ParallelSampler {
    engine: Engine,
    pool: ThreadPool,
    workspaces: Vec<Workspace>,
    bufs: StepBuffers,
}

impl ParallelSampler {
    /// Build a sampler over a training graph and held-out set, using one
    /// pool thread per available CPU.
    pub fn new(graph: Graph, heldout: HeldOut, config: SamplerConfig) -> Result<Self, CoreError> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(graph, heldout, config, threads)
    }

    /// Build a sampler with an explicit pool size. `threads == 1` degrades
    /// to inline execution (no worker threads are spawned) and produces the
    /// same chain as any other pool size.
    pub fn with_threads(
        graph: Graph,
        heldout: HeldOut,
        config: SamplerConfig,
        threads: usize,
    ) -> Result<Self, CoreError> {
        Self::with_backend_threads(graph.into(), heldout, config, threads)
    }

    /// Build a sampler over either graph backend (resident CSR or the
    /// out-of-core block-cached format) with an explicit pool size. Each
    /// worker owns its own block cache; cache state is pure scratch, so
    /// the chain is bitwise identical across backends, cache sizes, and
    /// thread counts.
    pub fn with_backend_threads(
        graph: GraphBackend,
        heldout: HeldOut,
        config: SamplerConfig,
        threads: usize,
    ) -> Result<Self, CoreError> {
        if threads == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "thread count must be at least 1".into(),
            });
        }
        let engine = Engine::with_backend(graph, heldout, config)?;
        let bufs = StepBuffers::new(&engine);
        let workspaces = (0..threads)
            .map(|w| {
                let cache = engine.graph.new_cache(
                    engine.config.graph_cache_blocks,
                    engine.config.seed ^ (w as u64 + 1),
                );
                Workspace::new(engine.config.k, engine.config.neighbor_sample)
                    .with_graph_cache(cache)
            })
            .collect();
        Ok(Self {
            engine,
            pool: ThreadPool::new(threads),
            workspaces,
            bufs,
        })
    }

    /// The pool size this sampler fans out over.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Run one full iteration.
    pub fn step(&mut self) {
        driver::step(
            &mut self.engine,
            &self.pool,
            &mut self.workspaces,
            &mut self.bufs,
        );
    }

    /// Run `iterations` steps.
    pub fn run(&mut self, iterations: u64) {
        for _ in 0..iterations {
            self.step();
        }
    }

    /// Evaluate held-out perplexity (parallel over fixed-boundary chunks
    /// writing disjoint ranges of one flat buffer — deterministic).
    pub fn evaluate_perplexity(&mut self) -> f64 {
        driver::evaluate_perplexity(
            &mut self.engine,
            &self.pool,
            &mut self.workspaces,
            &mut self.bufs,
        )
    }

    /// Advance to a new training snapshot (same vertex set, evolved edge
    /// set) without discarding the learned state — streaming-data usage.
    pub fn advance_to_snapshot(
        &mut self,
        graph: Graph,
        heldout: HeldOut,
    ) -> Result<(), CoreError> {
        self.engine.replace_graph(graph, heldout)
    }

    /// Completed iterations.
    pub fn iteration(&self) -> u64 {
        self.engine.iteration
    }

    /// The current model state.
    pub fn state(&self) -> &ModelState {
        &self.engine.state
    }

    /// Threshold-extract the inferred communities.
    pub fn communities(&self, threshold: f32) -> Communities {
        Communities::from_state(&self.engine.state, threshold)
    }

    /// The sampler's configuration.
    pub fn config(&self) -> &SamplerConfig {
        &self.engine.config
    }

    /// Capture the full chain state as a restorable, servable
    /// [`crate::Checkpoint`] (the PR 4 format v1 artifact).
    pub fn checkpoint(&self) -> crate::Checkpoint {
        crate::Checkpoint::capture(&self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialSampler;
    use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
    use mmsb_rand::Xoshiro256PlusPlus;

    fn setup(seed: u64) -> (Graph, HeldOut) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let gen = generate_planted(
            &PlantedConfig {
                num_vertices: 150,
                num_communities: 3,
                mean_community_size: 55.0,
                memberships_per_vertex: 1.1,
                internal_degree: 9.0,
                background_degree: 0.5,
            },
            &mut rng,
        );
        HeldOut::split(&gen.graph, 50, &mut rng)
    }

    #[test]
    fn matches_sequential_chain_bitwise() {
        let (g, h) = setup(1);
        let cfg = SamplerConfig::new(3).with_seed(9);
        let mut seq = SequentialSampler::new(g.clone(), h.clone(), cfg.clone()).unwrap();
        let mut par = ParallelSampler::new(g, h, cfg).unwrap();
        seq.run(12);
        par.run(12);
        assert_eq!(seq.state().theta(), par.state().theta());
        for a in 0..seq.state().n() {
            assert_eq!(seq.state().pi_row(a), par.state().pi_row(a), "vertex {a}");
        }
    }

    #[test]
    fn perplexity_matches_sequential() {
        let (g, h) = setup(2);
        let cfg = SamplerConfig::new(3).with_seed(4);
        let mut seq = SequentialSampler::new(g.clone(), h.clone(), cfg.clone()).unwrap();
        let mut par = ParallelSampler::new(g, h, cfg).unwrap();
        seq.run(5);
        par.run(5);
        let ps = seq.evaluate_perplexity();
        let pp = par.evaluate_perplexity();
        assert_eq!(ps, pp, "perplexity diverged: {ps} vs {pp}");
    }

    #[test]
    fn runs_and_extracts_communities() {
        let (g, h) = setup(3);
        let mut s = ParallelSampler::new(g, h, SamplerConfig::new(3).with_seed(5)).unwrap();
        s.run(30);
        assert_eq!(s.iteration(), 30);
        assert_eq!(s.communities(0.3).num_communities(), 3);
        assert_eq!(s.config().k, 3);
    }
}
