//! Shared iteration machinery.

use crate::config::SamplerConfig;
use crate::kernels::phi::{update_phi_row, PhiParams};
use crate::kernels::theta::{theta_gradient_pair, update_theta};
use crate::perplexity::{link_probability, PerplexityAccumulator};
use crate::rngs;
use crate::state::ModelState;
use crate::workspace::Workspace;
use crate::CoreError;
use mmsb_graph::minibatch::{BatchKind, MiniBatch, MinibatchSampler, Strategy};
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::neighbor::NeighborSampler;
use mmsb_graph::{Graph, GraphAccess, VertexId};
use mmsb_ooc::{BlockCache, GraphBackend};
use mmsb_rand::dist::Normal;
use mmsb_rand::Xoshiro256PlusPlus;
use mmsb_simd::Backend;

/// Pairs per theta-gradient chunk. One chunk accumulates its pairs
/// serially (matching the historical serial sum for batches that fit in a
/// single chunk); chunks are combined by a fixed binary tree.
pub(crate) const THETA_CHUNK: usize = 1024;

/// Mini-batch vertices per phi-update chunk.
pub(crate) const PHI_CHUNK: usize = 8;

/// Shared sampler state and per-stage operations.
///
/// Drivers compose these operations; none of them consults thread or rank
/// identity, which is what keeps chains identical across drivers.
pub(crate) struct Engine {
    pub graph: GraphBackend,
    /// The master's block cache for out-of-core adjacency reads (`None`
    /// for resident backends). Mini-batch drawing and the threaded
    /// master's neighbor scatter read through it.
    pub master_cache: Option<BlockCache>,
    pub heldout: HeldOut,
    pub config: SamplerConfig,
    pub state: ModelState,
    pub master_rng: Xoshiro256PlusPlus,
    pub theta_rng: Xoshiro256PlusPlus,
    pub minibatch: MinibatchSampler,
    pub neighbors: NeighborSampler,
    pub perplexity: PerplexityAccumulator,
    /// Kernel backend resolved from [`SamplerConfig::simd`] at
    /// construction. `Scalar` routes through the legacy kernels
    /// (bitwise-identical to pre-SIMD chains); everything else runs the
    /// `mmsb-simd` kernels under their per-backend numeric contract.
    pub backend: Backend,
    /// Scratch for the SIMD perplexity log (2 x held-out pairs).
    perp_scratch: Vec<f64>,
    pub iteration: u64,
    /// Current mini-batch, reused across iterations by
    /// [`Engine::refresh_minibatch`] so the steady state never allocates.
    pub mb: MiniBatch,
    /// Distinct vertices of `mb`, kept alongside it.
    pub mb_vertices: Vec<VertexId>,
}

/// One vertex's pending `phi` update.
pub(crate) type PhiUpdate = (VertexId, Vec<f64>);

impl Engine {
    pub fn new(graph: Graph, heldout: HeldOut, config: SamplerConfig) -> Result<Self, CoreError> {
        Self::with_backend(GraphBackend::Resident(graph), heldout, config)
    }

    /// Build an engine over either graph backend. The chain is bitwise
    /// identical across backends: adjacency reads return the same values
    /// whether they come from the resident CSR or CRC-verified disk
    /// blocks, and every random draw is keyed independently of the read
    /// path.
    pub fn with_backend(
        graph: GraphBackend,
        heldout: HeldOut,
        config: SamplerConfig,
    ) -> Result<Self, CoreError> {
        config.validate(graph.num_vertices())?;
        let mut init = rngs::init_rng(config.seed);
        let state = ModelState::init(
            graph.num_vertices(),
            config.k,
            config.layout,
            config.alpha,
            config.eta,
            &mut init,
        )?;
        let max_pairs = max_batch_pairs(graph.num_vertices(), graph.max_degree(), config.minibatch);
        let master_cache = graph.new_cache(config.graph_cache_blocks, config.seed);
        let strata_cap = match config.minibatch {
            Strategy::StratifiedNode { anchors, .. } => anchors,
            Strategy::RandomPair { .. } => 0,
        };
        let mb = MiniBatch {
            pairs: Vec::with_capacity(max_pairs),
            weights: Vec::with_capacity(max_pairs),
            kind: BatchKind::Strata(Vec::with_capacity(strata_cap)),
        };
        // Sized for the pre-dedup extend in `vertices_into` (2 entries per
        // pair), not the post-dedup bound `max_batch_vertices` returns.
        let mb_vertices = Vec::with_capacity(2 * max_pairs);
        Ok(Self {
            master_rng: rngs::master_rng(config.seed),
            theta_rng: rngs::theta_rng(config.seed),
            minibatch: MinibatchSampler::new(config.minibatch),
            neighbors: NeighborSampler::new(graph.num_vertices(), config.neighbor_sample),
            perplexity: PerplexityAccumulator::new(heldout.len()),
            backend: config.backend(),
            perp_scratch: vec![0.0; 2 * heldout.len()],
            graph,
            master_cache,
            heldout,
            config,
            state,
            iteration: 0,
            mb,
            mb_vertices,
        })
    }

    /// Hard upper bound on the number of vertices any mini-batch can touch
    /// — sizes the drivers' flat update buffer once, up front.
    pub fn max_batch_vertices(&self) -> usize {
        let pairs = max_batch_pairs(
            self.graph.num_vertices(),
            self.graph.max_degree(),
            self.config.minibatch,
        );
        (2 * pairs).min(self.graph.num_vertices() as usize)
    }

    /// Hard upper bound on theta chunks per iteration.
    pub fn max_theta_chunks(&self) -> usize {
        max_batch_pairs(
            self.graph.num_vertices(),
            self.graph.max_degree(),
            self.config.minibatch,
        )
        .div_ceil(THETA_CHUNK)
        .max(1)
    }

    /// Swap in a new training snapshot (same vertex set, evolved edges)
    /// and its held-out set, keeping the learned state — the streaming
    /// setting the paper's introduction motivates (SG-MCMC only ever
    /// touches mini-batches, so the data source may change under it).
    /// The perplexity average restarts because the held-out set changed.
    pub fn replace_graph(&mut self, graph: Graph, heldout: HeldOut) -> Result<(), CoreError> {
        if graph.num_vertices() != self.graph.num_vertices() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "snapshot has {} vertices, expected {}",
                    graph.num_vertices(),
                    self.graph.num_vertices()
                ),
            });
        }
        self.config.validate(graph.num_vertices())?;
        self.perplexity = PerplexityAccumulator::new(heldout.len());
        self.perp_scratch = vec![0.0; 2 * heldout.len()];
        self.graph = GraphBackend::Resident(graph);
        self.master_cache = None;
        self.heldout = heldout;
        Ok(())
    }

    /// Stage 1: the master draws a mini-batch (consumes master RNG).
    pub fn draw_minibatch(&mut self) -> MiniBatch {
        let reader = self.graph.reader(self.master_cache.as_mut());
        self.minibatch
            .sample(reader, Some(&self.heldout), &mut self.master_rng)
    }

    /// Stage 1, allocation-free variant: draw the next mini-batch into the
    /// engine's reusable [`Engine::mb`]/[`Engine::mb_vertices`] buffers.
    /// Consumes the master RNG exactly like [`Engine::draw_minibatch`].
    pub fn refresh_minibatch(&mut self) {
        let reader = self.graph.reader(self.master_cache.as_mut());
        self.minibatch.sample_into(
            reader,
            Some(&self.heldout),
            &mut self.master_rng,
            &mut self.mb,
        );
        self.mb.vertices_into(&mut self.mb_vertices);
    }

    /// The neighbor list of `v`, read through the master's cache — the
    /// threaded master scatters adjacency to workers with this.
    pub fn neighbors_master(&mut self, v: VertexId) -> &[u32] {
        self.graph.reader(self.master_cache.as_mut()).into_neighbors(v)
    }

    /// The step size for the current iteration.
    pub fn eps(&self) -> f64 {
        self.config.step.at(self.iteration)
    }

    /// Stage 2 (per mini-batch vertex, pure): sample the neighbor set and
    /// compute the vertex's `phi` update against the *current* state,
    /// writing the new row into `out` (length `K`). All scratch comes from
    /// `ws`, so the steady state performs no heap allocation.
    ///
    /// All randomness comes from the `(seed, iteration, vertex)` stream —
    /// the result is independent of which thread (and which workspace)
    /// performs the computation.
    pub fn compute_phi_update_into(&self, a: VertexId, ws: &mut Workspace, out: &mut [f64]) {
        let k = self.config.k;
        let mut rng = rngs::vertex_rng(self.config.seed, self.iteration, a.0);
        self.neighbors.sample_into(
            a,
            Some(&self.heldout),
            &mut rng,
            &mut ws.neighbors,
            &mut ws.seen,
        );

        // Gather neighbor pi rows and observations.
        let nn = ws.neighbors.len();
        ws.rows.clear();
        ws.rows.resize(nn * k, 0.0);
        ws.linked.clear();
        ws.linked.resize(nn, false);
        // The reader borrows only `ws.graph_cache`; the loop writes the
        // disjoint `ws.rows` / `ws.linked` fields.
        let mut reader = self.graph.reader(ws.graph_cache.as_mut());
        for (i, &b) in ws.neighbors.iter().enumerate() {
            ws.rows[i * k..(i + 1) * k].copy_from_slice(self.state.pi_row(b.0));
            ws.linked[i] = reader.has_edge(a, b);
        }

        self.state.phi_row(a.0, &mut ws.phi_a);
        let params = PhiParams {
            alpha: self.config.alpha,
            delta: self.config.delta,
            eps: self.eps(),
            grad_scale: self.graph.num_vertices() as f64 / nn.max(1) as f64,
        };
        if self.backend == Backend::Scalar {
            update_phi_row(
                &ws.phi_a,
                self.state.beta(),
                &crate::kernels::RowView::new(&ws.rows, k),
                &ws.linked,
                &params,
                &mut rng,
                &mut ws.f,
                out,
            );
        } else {
            // SIMD path: same gradient-then-noise order as the scalar
            // kernel — the K accepted polar pairs are drawn in
            // coordinate order, so the per-vertex RNG stream is
            // consumed identically; the transcendental finish then runs
            // vectorized over the whole batch.
            mmsb_simd::phi_gradient(
                self.backend,
                &ws.phi_a,
                self.state.beta(),
                &ws.rows,
                k,
                &ws.linked,
                params.delta,
                &mut ws.phi_scratch,
                out,
            );
            ws.noise_u.clear();
            ws.noise_s.clear();
            for _ in 0..k {
                let (u, s) = Normal::standard_accept(&mut rng);
                ws.noise_u.push(u);
                ws.noise_s.push(s);
            }
            ws.noise.clear();
            ws.noise.resize(k, 0.0);
            mmsb_simd::polar_normal(self.backend, &ws.noise_u, &ws.noise_s, &mut ws.noise);
            mmsb_simd::sgrld_step(
                self.backend,
                &ws.phi_a,
                &ws.noise,
                params.alpha,
                0.5 * params.eps,
                params.grad_scale,
                params.eps.sqrt(),
                crate::state::PHI_MIN,
                out,
            );
        }
    }

    /// Distributed variant of [`Engine::compute_phi_update`]: the vertex's
    /// own DKV row and its neighbors' rows were already loaded from the
    /// store (stride `k + 1`: `pi ++ sum(phi)`), and the neighbor set was
    /// sampled earlier from `rng` (which must be passed back in so the
    /// noise draws continue the same per-vertex stream).
    ///
    /// Produces bit-identical results to the local variant because the
    /// store rows are the same f32 values held in [`ModelState`].
    pub fn compute_phi_update_from_rows(
        &self,
        a: VertexId,
        own_row: &[f32],
        neighbor_rows: &crate::kernels::RowView<'_>,
        linked: &[bool],
        rng: &mut Xoshiro256PlusPlus,
    ) -> PhiUpdate {
        phi_update_from_dkv_rows(
            &WorkerParams {
                k: self.config.k,
                n: self.graph.num_vertices(),
                alpha: self.config.alpha,
                delta: self.config.delta,
                eps: self.eps(),
                backend: self.backend,
            },
            self.state.beta(),
            a,
            own_row,
            neighbor_rows,
            linked,
            rng,
        )
    }

    /// Stage 3: apply all `phi` updates (the `update_pi` barrier stage).
    pub fn apply_phi_updates(&mut self, updates: &[PhiUpdate]) {
        for (a, phi) in updates {
            self.state.set_phi_row(a.0, phi);
        }
    }

    /// Stage 3, allocation-free variant: `updates` holds one `K`-row per
    /// entry of [`Engine::mb_vertices`], in order.
    pub fn apply_phi_updates_flat(&mut self, updates: &[f64]) {
        let k = self.config.k;
        assert_eq!(
            updates.len(),
            self.mb_vertices.len() * k,
            "flat update buffer must hold one row per mini-batch vertex"
        );
        for (i, &a) in self.mb_vertices.iter().enumerate() {
            self.state.set_phi_row(a.0, &updates[i * k..(i + 1) * k]);
        }
    }

    /// Number of theta-gradient chunks the current mini-batch splits into
    /// (at least one, so an empty batch still drives the theta noise).
    pub fn theta_chunk_count(&self) -> usize {
        self.mb.pairs.len().div_ceil(THETA_CHUNK).max(1)
    }

    /// Accumulate chunk `chunk` of the current mini-batch's weighted theta
    /// gradient into `out` (length `2K`, overwritten). Pairs within a
    /// chunk are accumulated serially in batch order; chunk boundaries are
    /// fixed multiples of `THETA_CHUNK`, so the result depends only on the
    /// batch, never on thread count.
    pub fn theta_gradient_chunk(&self, chunk: usize, ws: &mut Workspace, out: &mut [f64]) {
        let lo = chunk * THETA_CHUNK;
        let hi = ((chunk + 1) * THETA_CHUNK).min(self.mb.pairs.len());
        let pairs = self.mb.pairs[lo..hi].iter().zip(&self.mb.weights[lo..hi]);
        if self.backend == Backend::Scalar {
            out.fill(0.0);
            for (&(e, y), &w) in pairs {
                theta_gradient_pair(
                    self.state.pi_row(e.lo().0),
                    self.state.pi_row(e.hi().0),
                    y,
                    w,
                    self.state.beta(),
                    self.state.theta(),
                    self.config.delta,
                    &mut ws.grad,
                    out,
                );
            }
        } else {
            mmsb_simd::theta_chunk_begin(
                self.state.beta(),
                self.state.theta(),
                self.config.delta,
                &mut ws.theta_scratch,
            );
            for (&(e, y), &w) in pairs {
                mmsb_simd::theta_accumulate_pair(
                    self.backend,
                    &mut ws.theta_scratch,
                    self.state.pi_row(e.lo().0),
                    self.state.pi_row(e.hi().0),
                    y,
                    w,
                );
            }
            mmsb_simd::theta_chunk_finish(&ws.theta_scratch, out);
        }
    }

    /// Compute the weighted `theta` gradient contribution of a slice of
    /// mini-batch pairs against the current (fresh) `pi`. Pure; used by
    /// workers. `weights` must align with `pairs`.
    pub fn theta_gradient_slice(
        &self,
        pairs: &[(mmsb_graph::Edge, bool)],
        weights: &[f64],
    ) -> Vec<f64> {
        assert_eq!(pairs.len(), weights.len(), "weights must align with pairs");
        let mut grad = vec![0.0f64; 2 * self.config.k];
        if self.backend == Backend::Scalar {
            let mut f_diag = vec![0.0f64; self.config.k];
            for (&(e, y), &w) in pairs.iter().zip(weights) {
                theta_gradient_pair(
                    self.state.pi_row(e.lo().0),
                    self.state.pi_row(e.hi().0),
                    y,
                    w,
                    self.state.beta(),
                    self.state.theta(),
                    self.config.delta,
                    &mut f_diag,
                    &mut grad,
                );
            }
        } else {
            let mut scratch = mmsb_simd::ThetaScratch::new(self.config.k);
            mmsb_simd::theta_chunk_begin(
                self.state.beta(),
                self.state.theta(),
                self.config.delta,
                &mut scratch,
            );
            for (&(e, y), &w) in pairs.iter().zip(weights) {
                mmsb_simd::theta_accumulate_pair(
                    self.backend,
                    &mut scratch,
                    self.state.pi_row(e.lo().0),
                    self.state.pi_row(e.hi().0),
                    y,
                    w,
                );
            }
            mmsb_simd::theta_chunk_finish(&scratch, &mut grad);
        }
        grad
    }

    /// Stage 4 (master): apply the `theta` SGRLD step from an accumulated
    /// *weighted* gradient (the per-pair mini-batch weights already encode
    /// `h(E_n)`; consumes the dedicated theta-noise RNG stream) and
    /// refresh `beta`.
    pub fn apply_theta_update(&mut self, grad: &[f64]) {
        let eps = self.eps();
        update_theta(
            self.state.theta_mut(),
            grad,
            1.0,
            self.config.eta,
            eps,
            &mut self.theta_rng,
        );
        self.state.recompute_beta();
    }

    /// Per-pair probabilities for a contiguous held-out range (pure).
    pub fn perplexity_probs(&self, lo: usize, hi: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; hi - lo];
        self.perplexity_probs_into(lo, hi, &mut out);
        out
    }

    /// Allocation-free variant of [`Engine::perplexity_probs`]: fill `out`
    /// (length `hi - lo`) with the per-pair probabilities of the held-out
    /// range `[lo, hi)`.
    pub fn perplexity_probs_into(&self, lo: usize, hi: usize, out: &mut [f64]) {
        assert_eq!(out.len(), hi - lo, "output must match the held-out range");
        for (slot, &(e, y)) in out.iter_mut().zip(&self.heldout.pairs()[lo..hi]) {
            *slot = link_probability(
                self.state.pi_row(e.lo().0),
                self.state.pi_row(e.hi().0),
                self.state.beta(),
                self.config.delta,
                y,
            );
        }
    }

    /// Record one posterior sample into the running perplexity average and
    /// return the current averaged perplexity.
    pub fn record_perplexity_sample(&mut self, probs: &[f64]) -> f64 {
        self.perplexity.record(probs);
        self.perplexity
            .value_with(self.backend, &mut self.perp_scratch)
            .expect("record() guarantees at least one sample")
    }

    /// Advance the iteration counter.
    pub fn bump_iteration(&mut self) {
        self.iteration += 1;
    }
}

/// Per-iteration scalar parameters a worker needs for its `phi` updates.
pub(crate) struct WorkerParams {
    pub k: usize,
    pub n: u32,
    pub alpha: f64,
    pub delta: f64,
    pub eps: f64,
    pub backend: Backend,
}

/// Worker-side `phi` update from DKV rows — shared by the lockstep and
/// threaded distributed drivers so their numerics are identical by
/// construction.
pub(crate) fn phi_update_from_dkv_rows(
    params: &WorkerParams,
    beta: &[f64],
    a: VertexId,
    own_row: &[f32],
    neighbor_rows: &crate::kernels::RowView<'_>,
    linked: &[bool],
    rng: &mut Xoshiro256PlusPlus,
) -> PhiUpdate {
    let k = params.k;
    assert_eq!(own_row.len(), k + 1, "own DKV row must be K + 1 floats");
    let sum = own_row[k] as f64;
    let phi_a: Vec<f64> = own_row[..k]
        .iter()
        .map(|&p| (p as f64 * sum).max(crate::state::PHI_MIN))
        .collect();
    let kernel_params = PhiParams {
        alpha: params.alpha,
        delta: params.delta,
        eps: params.eps,
        grad_scale: params.n as f64 / linked.len().max(1) as f64,
    };
    let mut out = vec![0.0f64; k];
    if params.backend == Backend::Scalar {
        let mut f = vec![0.0f64; 2 * k];
        update_phi_row(
            &phi_a,
            beta,
            neighbor_rows,
            linked,
            &kernel_params,
            rng,
            &mut f,
            &mut out,
        );
    } else {
        // The strided SIMD kernel reads K floats per DKV row directly
        // (stride `k + 1`), so the numbers — and the coordinate-order
        // noise draws — match the local in-memory variant exactly.
        let mut scratch = mmsb_simd::PhiScratch::new(k);
        mmsb_simd::phi_gradient(
            params.backend,
            &phi_a,
            beta,
            neighbor_rows.flat(),
            neighbor_rows.stride(),
            linked,
            kernel_params.delta,
            &mut scratch,
            &mut out,
        );
        let mut noise_u = Vec::with_capacity(k);
        let mut noise_s = Vec::with_capacity(k);
        for _ in 0..k {
            let (u, s) = Normal::standard_accept(rng);
            noise_u.push(u);
            noise_s.push(s);
        }
        let mut noise = vec![0.0; k];
        mmsb_simd::polar_normal(params.backend, &noise_u, &noise_s, &mut noise);
        mmsb_simd::sgrld_step(
            params.backend,
            &phi_a,
            &noise,
            kernel_params.alpha,
            0.5 * kernel_params.eps,
            kernel_params.grad_scale,
            kernel_params.eps.sqrt(),
            crate::state::PHI_MIN,
            &mut out,
        );
    }
    (a, out)
}

/// Worst-case pair count of one mini-batch under `strategy` on a graph
/// with `num_vertices` vertices and maximum degree `max_degree`: the
/// stratified batch is bounded by `anchors` strata, each at most
/// `max(max_degree, ceil(N / partitions))` pairs; a random-pair batch by
/// its configured size. Used to pre-reserve every per-iteration buffer.
pub(crate) fn max_batch_pairs(num_vertices: u32, max_degree: u32, strategy: Strategy) -> usize {
    match strategy {
        Strategy::RandomPair { size } => size,
        Strategy::StratifiedNode {
            partitions,
            anchors,
        } => {
            let n = num_vertices as usize;
            let stratum = (max_degree as usize).max(n.div_ceil(partitions));
            anchors * stratum
        }
    }
}
