//! Shared iteration machinery.

use crate::config::SamplerConfig;
use crate::kernels::phi::{update_phi_row, PhiParams};
use crate::kernels::theta::{theta_gradient_pair, update_theta};
use crate::perplexity::{link_probability, PerplexityAccumulator};
use crate::rngs;
use crate::state::ModelState;
use crate::CoreError;
use mmsb_graph::heldout::HeldOut;
use mmsb_graph::minibatch::{MiniBatch, MinibatchSampler};
use mmsb_graph::neighbor::NeighborSampler;
use mmsb_graph::{Graph, VertexId};
use mmsb_rand::Xoshiro256PlusPlus;

/// Shared sampler state and per-stage operations.
///
/// Drivers compose these operations; none of them consults thread or rank
/// identity, which is what keeps chains identical across drivers.
pub(crate) struct Engine {
    pub graph: Graph,
    pub heldout: HeldOut,
    pub config: SamplerConfig,
    pub state: ModelState,
    pub master_rng: Xoshiro256PlusPlus,
    pub theta_rng: Xoshiro256PlusPlus,
    pub minibatch: MinibatchSampler,
    pub neighbors: NeighborSampler,
    pub perplexity: PerplexityAccumulator,
    pub iteration: u64,
}

/// One vertex's pending `phi` update.
pub(crate) type PhiUpdate = (VertexId, Vec<f64>);

impl Engine {
    pub fn new(graph: Graph, heldout: HeldOut, config: SamplerConfig) -> Result<Self, CoreError> {
        config.validate(graph.num_vertices())?;
        let mut init = rngs::init_rng(config.seed);
        let state = ModelState::init(
            graph.num_vertices(),
            config.k,
            config.layout,
            config.alpha,
            config.eta,
            &mut init,
        )?;
        Ok(Self {
            master_rng: rngs::master_rng(config.seed),
            theta_rng: rngs::theta_rng(config.seed),
            minibatch: MinibatchSampler::new(config.minibatch),
            neighbors: NeighborSampler::new(graph.num_vertices(), config.neighbor_sample),
            perplexity: PerplexityAccumulator::new(heldout.len()),
            graph,
            heldout,
            config,
            state,
            iteration: 0,
        })
    }

    /// Swap in a new training snapshot (same vertex set, evolved edges)
    /// and its held-out set, keeping the learned state — the streaming
    /// setting the paper's introduction motivates (SG-MCMC only ever
    /// touches mini-batches, so the data source may change under it).
    /// The perplexity average restarts because the held-out set changed.
    pub fn replace_graph(&mut self, graph: Graph, heldout: HeldOut) -> Result<(), CoreError> {
        if graph.num_vertices() != self.graph.num_vertices() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "snapshot has {} vertices, expected {}",
                    graph.num_vertices(),
                    self.graph.num_vertices()
                ),
            });
        }
        self.config.validate(graph.num_vertices())?;
        self.perplexity = PerplexityAccumulator::new(heldout.len());
        self.graph = graph;
        self.heldout = heldout;
        Ok(())
    }

    /// Stage 1: the master draws a mini-batch (consumes master RNG).
    pub fn draw_minibatch(&mut self) -> MiniBatch {
        self.minibatch
            .sample(&self.graph, Some(&self.heldout), &mut self.master_rng)
    }

    /// The step size for the current iteration.
    pub fn eps(&self) -> f64 {
        self.config.step.at(self.iteration)
    }

    /// Stage 2 (per mini-batch vertex, pure): sample the neighbor set and
    /// compute the vertex's `phi` update against the *current* state.
    ///
    /// All randomness comes from the `(seed, iteration, vertex)` stream.
    pub fn compute_phi_update(&self, a: VertexId) -> PhiUpdate {
        let k = self.config.k;
        let mut rng = rngs::vertex_rng(self.config.seed, self.iteration, a.0);
        let neighbors = self.neighbors.sample(a, Some(&self.heldout), &mut rng);

        // Gather neighbor pi rows and observations.
        let mut rows = vec![0.0f32; neighbors.len() * k];
        let mut linked = vec![false; neighbors.len()];
        for (i, &b) in neighbors.iter().enumerate() {
            rows[i * k..(i + 1) * k].copy_from_slice(self.state.pi_row(b.0));
            linked[i] = self.graph.has_edge(a, b);
        }

        let mut phi_a = vec![0.0f64; k];
        self.state.phi_row(a.0, &mut phi_a);
        let params = PhiParams {
            alpha: self.config.alpha,
            delta: self.config.delta,
            eps: self.eps(),
            grad_scale: self.graph.num_vertices() as f64 / neighbors.len().max(1) as f64,
        };
        let mut out = vec![0.0f64; k];
        update_phi_row(
            &phi_a,
            self.state.beta(),
            &crate::kernels::RowView::new(&rows, k),
            &linked,
            &params,
            &mut rng,
            &mut out,
        );
        (a, out)
    }

    /// Distributed variant of [`Engine::compute_phi_update`]: the vertex's
    /// own DKV row and its neighbors' rows were already loaded from the
    /// store (stride `k + 1`: `pi ++ sum(phi)`), and the neighbor set was
    /// sampled earlier from `rng` (which must be passed back in so the
    /// noise draws continue the same per-vertex stream).
    ///
    /// Produces bit-identical results to the local variant because the
    /// store rows are the same f32 values held in [`ModelState`].
    pub fn compute_phi_update_from_rows(
        &self,
        a: VertexId,
        own_row: &[f32],
        neighbor_rows: &crate::kernels::RowView<'_>,
        linked: &[bool],
        rng: &mut Xoshiro256PlusPlus,
    ) -> PhiUpdate {
        phi_update_from_dkv_rows(
            &WorkerParams {
                k: self.config.k,
                n: self.graph.num_vertices(),
                alpha: self.config.alpha,
                delta: self.config.delta,
                eps: self.eps(),
            },
            self.state.beta(),
            a,
            own_row,
            neighbor_rows,
            linked,
            rng,
        )
    }

    /// Stage 3: apply all `phi` updates (the `update_pi` barrier stage).
    pub fn apply_phi_updates(&mut self, updates: &[PhiUpdate]) {
        for (a, phi) in updates {
            self.state.set_phi_row(a.0, phi);
        }
    }

    /// Compute the weighted `theta` gradient contribution of a slice of
    /// mini-batch pairs against the current (fresh) `pi`. Pure; used by
    /// workers. `weights` must align with `pairs`.
    pub fn theta_gradient_slice(
        &self,
        pairs: &[(mmsb_graph::Edge, bool)],
        weights: &[f64],
    ) -> Vec<f64> {
        assert_eq!(pairs.len(), weights.len(), "weights must align with pairs");
        let mut grad = vec![0.0f64; 2 * self.config.k];
        for (&(e, y), &w) in pairs.iter().zip(weights) {
            theta_gradient_pair(
                self.state.pi_row(e.lo().0),
                self.state.pi_row(e.hi().0),
                y,
                w,
                self.state.beta(),
                self.state.theta(),
                self.config.delta,
                &mut grad,
            );
        }
        grad
    }

    /// Stage 4 (master): apply the `theta` SGRLD step from an accumulated
    /// *weighted* gradient (the per-pair mini-batch weights already encode
    /// `h(E_n)`; consumes the dedicated theta-noise RNG stream) and
    /// refresh `beta`.
    pub fn apply_theta_update(&mut self, grad: &[f64]) {
        let eps = self.eps();
        update_theta(
            self.state.theta_mut(),
            grad,
            1.0,
            self.config.eta,
            eps,
            &mut self.theta_rng,
        );
        self.state.recompute_beta();
    }

    /// Per-pair probabilities for a contiguous held-out range (pure).
    pub fn perplexity_probs(&self, lo: usize, hi: usize) -> Vec<f64> {
        self.heldout.pairs()[lo..hi]
            .iter()
            .map(|&(e, y)| {
                link_probability(
                    self.state.pi_row(e.lo().0),
                    self.state.pi_row(e.hi().0),
                    self.state.beta(),
                    self.config.delta,
                    y,
                )
            })
            .collect()
    }

    /// Record one posterior sample into the running perplexity average and
    /// return the current averaged perplexity.
    pub fn record_perplexity_sample(&mut self, probs: &[f64]) -> f64 {
        self.perplexity.record(probs);
        self.perplexity
            .value()
            .expect("record() guarantees at least one sample")
    }

    /// Advance the iteration counter.
    pub fn bump_iteration(&mut self) {
        self.iteration += 1;
    }
}

/// Per-iteration scalar parameters a worker needs for its `phi` updates.
pub(crate) struct WorkerParams {
    pub k: usize,
    pub n: u32,
    pub alpha: f64,
    pub delta: f64,
    pub eps: f64,
}

/// Worker-side `phi` update from DKV rows — shared by the lockstep and
/// threaded distributed drivers so their numerics are identical by
/// construction.
pub(crate) fn phi_update_from_dkv_rows(
    params: &WorkerParams,
    beta: &[f64],
    a: VertexId,
    own_row: &[f32],
    neighbor_rows: &crate::kernels::RowView<'_>,
    linked: &[bool],
    rng: &mut Xoshiro256PlusPlus,
) -> PhiUpdate {
    let k = params.k;
    assert_eq!(own_row.len(), k + 1, "own DKV row must be K + 1 floats");
    let sum = own_row[k] as f64;
    let phi_a: Vec<f64> = own_row[..k]
        .iter()
        .map(|&p| (p as f64 * sum).max(crate::state::PHI_MIN))
        .collect();
    let kernel_params = PhiParams {
        alpha: params.alpha,
        delta: params.delta,
        eps: params.eps,
        grad_scale: params.n as f64 / linked.len().max(1) as f64,
    };
    let mut out = vec![0.0f64; k];
    update_phi_row(
        &phi_a,
        beta,
        neighbor_rows,
        linked,
        &kernel_params,
        rng,
        &mut out,
    );
    (a, out)
}
