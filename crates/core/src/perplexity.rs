//! Held-out perplexity (Eq. 7).
//!
//! The metric the paper's convergence plots (Figure 6) track: the
//! exponential of the negative average log-likelihood of the held-out
//! pairs, where the per-pair probability is *averaged over posterior
//! samples before* taking the log.

/// Marginal probability of observation `y` for a pair under the current
/// parameters — [`crate::eval::edge_likelihood`] (Eq. 7) for `y = true`,
/// its complement for `y = false`.
#[inline]
pub fn link_probability(pi_a: &[f32], pi_b: &[f32], beta: &[f64], delta: f64, y: bool) -> f64 {
    let p1 = crate::eval::edge_likelihood(pi_a, pi_b, beta, delta);
    if y {
        p1
    } else {
        1.0 - p1
    }
}

/// Accumulates per-pair probabilities across posterior samples and
/// reports the averaged perplexity of Eq. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct PerplexityAccumulator {
    /// `sum_t p_t(y_i)` per held-out pair `i`.
    prob_sums: Vec<f64>,
    /// Number of samples `T` recorded so far.
    samples: u64,
}

impl PerplexityAccumulator {
    /// Create an accumulator for `num_pairs` held-out pairs.
    pub fn new(num_pairs: usize) -> Self {
        Self {
            prob_sums: vec![0.0; num_pairs],
            samples: 0,
        }
    }

    /// Number of held-out pairs tracked.
    pub fn num_pairs(&self) -> usize {
        self.prob_sums.len()
    }

    /// Number of posterior samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Record one posterior sample's per-pair probabilities (in the fixed
    /// held-out pair order).
    ///
    /// # Panics
    /// Panics if `probs.len()` differs from the accumulator size or any
    /// probability is outside `[0, 1]`.
    pub fn record(&mut self, probs: &[f64]) {
        assert_eq!(
            probs.len(),
            self.prob_sums.len(),
            "probability vector length mismatch"
        );
        for (s, &p) in self.prob_sums.iter_mut().zip(probs) {
            assert!((0.0..=1.0).contains(&p) && !p.is_nan(), "bad probability {p}");
            *s += p;
        }
        self.samples += 1;
    }

    /// Snapshot the internals for checkpointing: the per-pair probability
    /// sums and the sample count.
    pub fn snapshot(&self) -> (&[f64], u64) {
        (&self.prob_sums, self.samples)
    }

    /// Rebuild an accumulator from a checkpoint snapshot.
    pub fn from_snapshot(prob_sums: Vec<f64>, samples: u64) -> Self {
        Self { prob_sums, samples }
    }

    /// The averaged perplexity over everything recorded so far:
    /// `exp(-(1/|E_h|) sum_i log((1/T) sum_t p_t(y_i)))`.
    ///
    /// Returns `None` until at least one sample was recorded or if there
    /// are no pairs.
    pub fn value(&self) -> Option<f64> {
        if self.samples == 0 || self.prob_sums.is_empty() {
            return None;
        }
        let t = self.samples as f64;
        let mut log_sum = 0.0;
        for &s in &self.prob_sums {
            // Clamp: a pair the model finds impossible would otherwise
            // produce -inf and poison the whole metric.
            log_sum += (s / t).max(1e-300).ln();
        }
        Some((-log_sum / self.prob_sums.len() as f64).exp())
    }

    /// [`Self::value`] with the per-pair log taken by the vectorized
    /// `mmsb-simd` log on `backend` (`Scalar` delegates to [`Self::value`],
    /// keeping legacy chains bit-identical). Each log is within the
    /// documented ulp bound of `f64::ln`, so the metric agrees with the
    /// scalar form to ~1e-15 relative. `scratch` must hold at least
    /// `2 * num_pairs` slots; it is pure scratch, letting hot loops avoid
    /// per-call allocation.
    pub fn value_with(&self, backend: mmsb_simd::Backend, scratch: &mut [f64]) -> Option<f64> {
        if backend == mmsb_simd::Backend::Scalar {
            return self.value();
        }
        if self.samples == 0 || self.prob_sums.is_empty() {
            return None;
        }
        let n = self.prob_sums.len();
        assert!(scratch.len() >= 2 * n, "scratch needs 2 slots per pair");
        let t = self.samples as f64;
        let (ratios, logs) = scratch[..2 * n].split_at_mut(n);
        for (r, &s) in ratios.iter_mut().zip(&self.prob_sums) {
            // Same clamp as the scalar path: no pair may poison the
            // metric with -inf.
            *r = (s / t).max(1e-300);
        }
        mmsb_simd::vln(backend, ratios, logs);
        let log_sum: f64 = logs.iter().sum();
        Some((-log_sum / n as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_probability_known_values() {
        // Both vertices fully in community 0 with beta_0 = 0.8.
        let pi = [1.0f32, 0.0];
        let beta = [0.8, 0.5];
        let p1 = link_probability(&pi, &pi, &beta, 0.01, true);
        assert!((p1 - 0.8).abs() < 1e-12);
        let p0 = link_probability(&pi, &pi, &beta, 0.01, false);
        assert!((p0 - 0.2).abs() < 1e-12);
        // Disjoint communities: only delta remains.
        let pi_b = [0.0f32, 1.0];
        let p1 = link_probability(&pi, &pi_b, &beta, 0.01, true);
        assert!((p1 - 0.01).abs() < 1e-12);
    }

    #[test]
    fn link_probability_is_a_probability() {
        let pi_a = [0.3f32, 0.5, 0.2];
        let pi_b = [0.1f32, 0.1, 0.8];
        let beta = [0.9, 0.2, 0.6];
        for delta in [1e-8, 0.01, 0.5] {
            let p1 = link_probability(&pi_a, &pi_b, &beta, delta, true);
            let p0 = link_probability(&pi_a, &pi_b, &beta, delta, false);
            assert!((0.0..=1.0).contains(&p1));
            assert!((p1 + p0 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulator_averages_before_log() {
        let mut acc = PerplexityAccumulator::new(2);
        acc.record(&[0.2, 0.8]);
        acc.record(&[0.4, 0.6]);
        // avg = [0.3, 0.7]; perp = exp(-(ln .3 + ln .7)/2).
        let expected = (-(0.3f64.ln() + 0.7f64.ln()) / 2.0).exp();
        assert!((acc.value().unwrap() - expected).abs() < 1e-12);
        assert_eq!(acc.samples(), 2);
    }

    #[test]
    fn perfect_predictions_give_perplexity_one() {
        let mut acc = PerplexityAccumulator::new(3);
        acc.record(&[1.0, 1.0, 1.0]);
        assert!((acc.value().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_unsampled_is_none() {
        assert_eq!(PerplexityAccumulator::new(0).value(), None);
        assert_eq!(PerplexityAccumulator::new(3).value(), None);
    }

    #[test]
    fn zero_probability_is_clamped_not_infinite() {
        let mut acc = PerplexityAccumulator::new(1);
        acc.record(&[0.0]);
        let v = acc.value().unwrap();
        assert!(v.is_finite() && v > 1e100);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn record_wrong_length_panics() {
        PerplexityAccumulator::new(2).record(&[0.5]);
    }

    #[test]
    #[should_panic(expected = "bad probability")]
    fn record_invalid_probability_panics() {
        PerplexityAccumulator::new(1).record(&[1.5]);
    }

    #[test]
    fn value_with_matches_scalar_value() {
        let mut acc = PerplexityAccumulator::new(64);
        let probs: Vec<f64> = (0..64).map(|i| 0.01 + 0.98 * (i as f64) / 63.0).collect();
        acc.record(&probs);
        acc.record(&probs.iter().map(|p| 1.0 - p * 0.5).collect::<Vec<_>>());
        let scalar = acc.value().unwrap();
        let mut scratch = vec![0.0; 128];
        for b in [
            mmsb_simd::Backend::Scalar,
            mmsb_simd::Backend::Sse2,
            mmsb_simd::Backend::Avx2,
            mmsb_simd::Backend::Neon,
        ] {
            if !b.available() {
                continue;
            }
            let got = acc.value_with(b, &mut scratch).unwrap();
            assert!(
                (got - scalar).abs() <= 1e-12 * scalar,
                "{b}: {got} vs {scalar}"
            );
        }
        // Scalar delegation is exact.
        assert_eq!(
            acc.value_with(mmsb_simd::Backend::Scalar, &mut scratch)
                .unwrap(),
            scalar
        );
    }

    #[test]
    fn better_predictions_lower_perplexity() {
        let mut good = PerplexityAccumulator::new(2);
        good.record(&[0.9, 0.9]);
        let mut bad = PerplexityAccumulator::new(2);
        bad.record(&[0.5, 0.5]);
        assert!(good.value().unwrap() < bad.value().unwrap());
    }
}
