//! Scoring recovered communities against planted ground truth.
//!
//! The SNAP datasets ship ground-truth communities, and the synthetic
//! stand-ins provide them too; the standard recovery score for overlapping
//! community detection is the average best-match F1 in both directions
//! (Yang & Leskovec 2013).

use mmsb_graph::generate::GroundTruth;
use mmsb_graph::VertexId;
use std::collections::BTreeSet;

/// The paper's Eq. 7 edge likelihood, the one shared implementation
/// behind held-out perplexity ([`crate::link_probability`]),
/// link-prediction evaluation, and the online serving layer
/// (`mmsb-serve`):
///
/// `p(y_ab = 1) = sum_k pi_ak pi_bk beta_k + (1 - sum_k pi_ak pi_bk) delta`
///
/// `pi` rows are the `f32` memberships the samplers store (derived from
/// `phi` by the exact `pi = phi / S` collapse); products are widened to
/// `f64` before accumulating. Because each row sums to 1 only up to
/// `f32` rounding, the common-community mass `sum_k pi_ak pi_bk` can
/// land a few ulps above 1 — it is clamped so the returned value is
/// always a probability.
///
/// # Panics
/// Panics (debug) if either `pi` row is shorter than `beta`.
#[inline]
pub fn edge_likelihood(pi_a: &[f32], pi_b: &[f32], beta: &[f64], delta: f64) -> f64 {
    let k = beta.len();
    debug_assert!(pi_a.len() >= k && pi_b.len() >= k);
    let mut same = 0.0f64; // sum_k pi_ak pi_bk
    let mut linked = 0.0f64; // sum_k pi_ak pi_bk beta_k
    for c in 0..k {
        let p = pi_a[c] as f64 * pi_b[c] as f64;
        same += p;
        linked += p * beta[c];
    }
    // Guard against f32 rounding pushing `same` past 1.
    let same = same.min(1.0);
    linked + (1.0 - same) * delta
}

/// F1 score of one detected set against one truth set.
pub fn f1_of_sets(detected: &[VertexId], truth: &[VertexId]) -> f64 {
    if detected.is_empty() && truth.is_empty() {
        return 1.0;
    }
    if detected.is_empty() || truth.is_empty() {
        return 0.0;
    }
    let t: BTreeSet<_> = truth.iter().collect();
    let hits = detected.iter().filter(|v| t.contains(v)).count() as f64;
    if hits == 0.0 {
        return 0.0;
    }
    let precision = hits / detected.len() as f64;
    let recall = hits / truth.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Jaccard similarity of two vertex sets.
pub fn jaccard_of_sets(a: &[VertexId], b: &[VertexId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: BTreeSet<_> = a.iter().collect();
    let sb: BTreeSet<_> = b.iter().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

fn best_match_average(
    from: &[Vec<VertexId>],
    to: &[Vec<VertexId>],
    score: fn(&[VertexId], &[VertexId]) -> f64,
) -> f64 {
    let nonempty: Vec<&Vec<VertexId>> = from.iter().filter(|c| !c.is_empty()).collect();
    if nonempty.is_empty() {
        return 0.0;
    }
    nonempty
        .iter()
        .map(|c| {
            to.iter()
                .map(|t| score(c, t))
                .fold(0.0, f64::max)
        })
        .sum::<f64>()
        / nonempty.len() as f64
}

/// Average bidirectional best-match F1 between detected communities and
/// ground truth: `0.5 * (avg_d max_t F1(d, t) + avg_t max_d F1(t, d))`.
/// 1.0 means perfect recovery; empty inputs score 0.
pub fn best_match_f1(detected: &[Vec<VertexId>], truth: &GroundTruth) -> f64 {
    let d_to_t = best_match_average(detected, &truth.communities, f1_of_sets);
    let t_to_d = best_match_average(&truth.communities, detected, f1_of_sets);
    0.5 * (d_to_t + t_to_d)
}

/// Average bidirectional best-match Jaccard (stricter than F1).
pub fn best_match_jaccard(detected: &[Vec<VertexId>], truth: &GroundTruth) -> f64 {
    let d_to_t = best_match_average(detected, &truth.communities, jaccard_of_sets);
    let t_to_d = best_match_average(&truth.communities, detected, jaccard_of_sets);
    0.5 * (d_to_t + t_to_d)
}

/// Binary entropy contribution `-p log p` (0 at `p = 0`).
fn h(p: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else {
        -p * p.ln()
    }
}

/// Entropy of a binary membership variable with positive rate `p`.
fn h2(p: f64) -> f64 {
    h(p) + h(1.0 - p)
}

/// Normalized conditional entropy `H(X|Y)_norm` of cover `x` given cover
/// `y` — one half of the overlapping NMI of Lancichinetti, Fortunato &
/// Kertész (2009).
fn conditional_entropy_norm(x: &[Vec<VertexId>], y: &[Vec<VertexId>], n: usize) -> f64 {
    let nf = n as f64;
    let y_sets: Vec<BTreeSet<&VertexId>> = y.iter().map(|c| c.iter().collect()).collect();
    let mut total = 0.0;
    let mut counted = 0usize;
    for xi in x {
        if xi.is_empty() {
            continue;
        }
        let px = xi.len() as f64 / nf;
        let hx = h2(px);
        if hx == 0.0 {
            continue;
        }
        let xi_set: BTreeSet<&VertexId> = xi.iter().collect();
        let mut best = hx; // fall back to H(X_i) when no admissible match
        for (yj, yj_set) in y.iter().zip(&y_sets) {
            if yj.is_empty() {
                continue;
            }
            let both = xi_set.intersection(yj_set).count() as f64 / nf;
            let only_x = px - both;
            let py = yj.len() as f64 / nf;
            let only_y = py - both;
            let neither = 1.0 - both - only_x - only_y;
            // LFK admissibility: reject complementary-looking matches.
            if h(both) + h(neither) < h(only_x) + h(only_y) {
                continue;
            }
            let joint = h(both) + h(only_x) + h(only_y) + h(neither);
            let cond = joint - h2(py); // H(X_i, Y_j) - H(Y_j)
            if cond < best {
                best = cond;
            }
        }
        total += best / hx;
        counted += 1;
    }
    if counted == 0 {
        1.0 // an empty cover carries no information about the other
    } else {
        total / counted as f64
    }
}

/// Overlapping normalized mutual information (LFK variant) between a
/// detected cover and the ground truth, over `num_vertices` vertices:
/// `1 - (H(X|Y)_norm + H(Y|X)_norm) / 2`. 1.0 means identical covers.
pub fn overlapping_nmi(
    detected: &[Vec<VertexId>],
    truth: &GroundTruth,
    num_vertices: u32,
) -> f64 {
    let n = num_vertices as usize;
    assert!(n > 0, "need at least one vertex");
    let hxy = conditional_entropy_norm(detected, &truth.communities, n);
    let hyx = conditional_entropy_norm(&truth.communities, detected, n);
    1.0 - 0.5 * (hxy + hyx)
}

/// Area under the ROC curve for held-out link prediction: `probs[i]` is
/// the model's `p(y = 1)` and `labels[i]` the observation. Ties are
/// handled with the midrank convention. Returns `None` if either class is
/// absent.
pub fn link_prediction_auc(probs: &[f64], labels: &[bool]) -> Option<f64> {
    assert_eq!(probs.len(), labels.len(), "probs/labels length mismatch");
    let positives = labels.iter().filter(|&&y| y).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&i, &j| probs[i].partial_cmp(&probs[j]).expect("finite probs"));
    // Midranks over ties.
    let mut rank_sum = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && probs[order[j + 1]] == probs[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum += midrank;
            }
        }
        i = j + 1;
    }
    let p = positives as f64;
    let n = negatives as f64;
    Some((rank_sum - p * (p + 1.0) / 2.0) / (p * n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    /// Naive O(K) reference for Eq. 7: two separate passes, no clamp
    /// tricks, accumulation order identical to reading the formula.
    fn naive_edge_likelihood(pi_a: &[f32], pi_b: &[f32], beta: &[f64], delta: f64) -> f64 {
        let same: f64 = (0..beta.len())
            .map(|c| pi_a[c] as f64 * pi_b[c] as f64)
            .sum();
        let linked: f64 = (0..beta.len())
            .map(|c| pi_a[c] as f64 * pi_b[c] as f64 * beta[c])
            .sum();
        linked + (1.0 - same.min(1.0)) * delta
    }

    /// Tiny xorshift for seeded test vectors (no dev-dependency needed).
    fn rng_stream(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A pi row built the way the samplers build them: positive phi
    /// scores collapsed by the exact `pi = phi / S` relation, stored f32.
    fn collapsed_pi_row(k: usize, next: &mut impl FnMut() -> f64) -> Vec<f32> {
        let phi: Vec<f64> = (0..k).map(|_| 1e-10 + next() * 3.0).collect();
        let s: f64 = phi.iter().sum();
        phi.iter().map(|&p| (p / s) as f32).collect()
    }

    #[test]
    fn edge_likelihood_matches_naive_reference_seeded() {
        for &k in &[1usize, 2, 3, 8, 33, 257] {
            let mut next = rng_stream(k as u64 + 101);
            for case in 0..8 {
                let pi_a = collapsed_pi_row(k, &mut next);
                let pi_b = collapsed_pi_row(k, &mut next);
                let beta: Vec<f64> = (0..k).map(|_| next()).collect();
                let delta = [1e-8, 1e-5, 0.01, 0.3][case % 4];
                let got = edge_likelihood(&pi_a, &pi_b, &beta, delta);
                let expect = naive_edge_likelihood(&pi_a, &pi_b, &beta, delta);
                assert!(
                    (got - expect).abs() <= 1e-14 * (1.0 + expect.abs()),
                    "k={k} case={case}: {got} vs {expect}"
                );
                assert!((0.0..=1.0).contains(&got), "k={k}: p = {got}");
            }
        }
    }

    #[test]
    fn edge_likelihood_collapse_edge_cases() {
        // Full overlap in one community: p = beta exactly.
        assert_eq!(edge_likelihood(&[1.0, 0.0], &[1.0, 0.0], &[0.8, 0.5], 0.01), 0.8);
        // Disjoint support: only the background rate remains.
        let p = edge_likelihood(&[1.0, 0.0], &[0.0, 1.0], &[0.8, 0.5], 0.01);
        assert!((p - 0.01).abs() < 1e-15);
        // K = 1 is total collapse: pi = phi/S = 1 for every vertex, so
        // the delta term vanishes identically.
        assert_eq!(edge_likelihood(&[1.0], &[1.0], &[0.37], 0.9), 0.37);
        // Rows whose f32 sum exceeds 1: `same` must clamp so p stays a
        // probability even with beta = 1 everywhere.
        let k = 3000;
        let w = (1.0f64 / k as f64) as f32;
        // nextafter(w) so the row sums slightly above 1.
        let w_up = f32::from_bits(w.to_bits() + 1);
        let row = vec![w_up; k];
        let beta = vec![1.0f64; k];
        let p = edge_likelihood(&row, &row, &beta, 1.0);
        assert!((0.0..=1.0).contains(&p), "clamped probability, got {p}");
        // And the identical-rows diagonal with beta = 1, delta = 0 is the
        // squared norm — strictly positive, at most 1.
        let p = edge_likelihood(&row, &row, &beta, 0.0);
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn edge_likelihood_agrees_with_link_probability() {
        let mut next = rng_stream(7);
        let pi_a = collapsed_pi_row(16, &mut next);
        let pi_b = collapsed_pi_row(16, &mut next);
        let beta: Vec<f64> = (0..16).map(|_| next()).collect();
        let p1 = edge_likelihood(&pi_a, &pi_b, &beta, 1e-5);
        assert_eq!(
            crate::link_probability(&pi_a, &pi_b, &beta, 1e-5, true),
            p1
        );
        assert_eq!(
            crate::link_probability(&pi_a, &pi_b, &beta, 1e-5, false),
            1.0 - p1
        );
    }

    #[test]
    fn f1_identical_sets() {
        assert_eq!(f1_of_sets(&v(&[1, 2, 3]), &v(&[3, 2, 1])), 1.0);
    }

    #[test]
    fn f1_disjoint_sets() {
        assert_eq!(f1_of_sets(&v(&[1, 2]), &v(&[3, 4])), 0.0);
    }

    #[test]
    fn f1_partial_overlap() {
        // detected {1,2}, truth {2,3}: p = r = 0.5 → F1 = 0.5.
        assert!((f1_of_sets(&v(&[1, 2]), &v(&[2, 3])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f1_empty_cases() {
        assert_eq!(f1_of_sets(&[], &[]), 1.0);
        assert_eq!(f1_of_sets(&v(&[1]), &[]), 0.0);
        assert_eq!(f1_of_sets(&[], &v(&[1])), 0.0);
    }

    #[test]
    fn jaccard_values() {
        assert_eq!(jaccard_of_sets(&v(&[1, 2]), &v(&[1, 2])), 1.0);
        assert!((jaccard_of_sets(&v(&[1, 2]), &v(&[2, 3])) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard_of_sets(&[], &[]), 1.0);
    }

    #[test]
    fn perfect_recovery_scores_one() {
        let truth = GroundTruth {
            communities: vec![v(&[0, 1, 2]), v(&[3, 4])],
        };
        let detected = vec![v(&[3, 4]), v(&[0, 1, 2])]; // order must not matter
        assert!((best_match_f1(&detected, &truth) - 1.0).abs() < 1e-12);
        assert!((best_match_jaccard(&detected, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spurious_detected_communities_lower_the_score() {
        let truth = GroundTruth {
            communities: vec![v(&[0, 1, 2])],
        };
        let perfect = vec![v(&[0, 1, 2])];
        let noisy = vec![v(&[0, 1, 2]), v(&[7, 8, 9])];
        assert!(best_match_f1(&noisy, &truth) < best_match_f1(&perfect, &truth));
    }

    #[test]
    fn missed_truth_communities_lower_the_score() {
        let truth = GroundTruth {
            communities: vec![v(&[0, 1, 2]), v(&[5, 6, 7])],
        };
        let partial = vec![v(&[0, 1, 2])];
        let s = best_match_f1(&partial, &truth);
        assert!(s < 0.8, "score {s}");
        assert!(s > 0.4, "score {s}");
    }

    #[test]
    fn onmi_identical_covers_is_one() {
        let truth = GroundTruth {
            communities: vec![v(&[0, 1, 2, 3]), v(&[4, 5, 6, 7]), v(&[2, 3, 4])],
        };
        let detected = vec![v(&[2, 3, 4]), v(&[0, 1, 2, 3]), v(&[4, 5, 6, 7])];
        let nmi = overlapping_nmi(&detected, &truth, 8);
        assert!((nmi - 1.0).abs() < 1e-12, "nmi = {nmi}");
    }

    #[test]
    fn onmi_unrelated_covers_is_low() {
        // Detected communities carved orthogonally to the truth.
        let truth = GroundTruth {
            communities: vec![v(&[0, 1, 2, 3]), v(&[4, 5, 6, 7])],
        };
        let detected = vec![v(&[0, 2, 4, 6]), v(&[1, 3, 5, 7])];
        let nmi = overlapping_nmi(&detected, &truth, 8);
        assert!(nmi < 0.2, "nmi = {nmi}");
    }

    #[test]
    fn onmi_partial_recovery_is_between() {
        let truth = GroundTruth {
            communities: vec![v(&[0, 1, 2, 3, 4]), v(&[5, 6, 7, 8, 9])],
        };
        let detected = vec![v(&[0, 1, 2, 3]), v(&[5, 6, 7, 9])];
        let nmi = overlapping_nmi(&detected, &truth, 10);
        assert!(nmi > 0.3 && nmi < 1.0, "nmi = {nmi}");
    }

    #[test]
    fn onmi_empty_detected_is_zero_ish() {
        let truth = GroundTruth {
            communities: vec![v(&[0, 1, 2, 3])],
        };
        // No information in either direction: conditional entropies fall
        // back to the marginals.
        let nmi = overlapping_nmi(&[], &truth, 8);
        assert!(nmi <= 0.0 + 1e-12, "nmi = {nmi}");
    }

    #[test]
    fn onmi_is_symmetric() {
        let a = vec![v(&[0, 1, 2]), v(&[3, 4, 5, 6])];
        let b = GroundTruth {
            communities: vec![v(&[0, 1, 2, 3]), v(&[4, 5, 6])],
        };
        let ab = overlapping_nmi(&a, &b, 8);
        let ba = overlapping_nmi(&b.communities, &GroundTruth { communities: a }, 8);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_separation_is_one() {
        let probs = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((link_prediction_auc(&probs, &labels).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_is_zero() {
        let probs = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(link_prediction_auc(&probs, &labels).unwrap() < 1e-12);
    }

    #[test]
    fn auc_random_is_half_with_ties() {
        // All probabilities equal: midranks give exactly 0.5.
        let probs = [0.5; 6];
        let labels = [true, false, true, false, true, false];
        assert!((link_prediction_auc(&probs, &labels).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_known_value() {
        // probs: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs: (0.8>0.6),(0.8>0.2),
        // (0.4<0.6),(0.4>0.2) => 3/4.
        let probs = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert!((link_prediction_auc(&probs, &labels).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_none() {
        assert!(link_prediction_auc(&[0.5, 0.6], &[true, true]).is_none());
        assert!(link_prediction_auc(&[], &[]).is_none());
    }

    #[test]
    fn empty_detected_scores_zero_forward() {
        let truth = GroundTruth {
            communities: vec![v(&[0, 1])],
        };
        // All-empty detected: forward average is over no sets → 0, reverse
        // best-match is 0 → total 0.
        assert_eq!(best_match_f1(&[vec![], vec![]], &truth), 0.0);
    }
}
