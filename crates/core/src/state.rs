//! The sampler's parameter state.
//!
//! Table I of the paper: `pi` and `phi` are `N x K` (the big state),
//! `theta` is `K x 2` and `beta` is `K` (the small, global state). For the
//! largest configuration the paper could not afford to keep both `pi` and
//! `phi`, storing `pi` plus `sum(phi)` instead and recomputing
//! `phi = pi * sum(phi)` (§III-A). [`ModelState`] implements both layouts
//! behind one accessor pair so the trade-off is benchmarkable.

use crate::config::StateLayout;
use crate::CoreError;
use mmsb_rand::dist::{Gamma, Sample};
use mmsb_rand::RngCore;

/// Smallest admissible `phi` entry; SGRLD's mirror trick (`|.|`) keeps
/// values positive, the clamp keeps them away from denormal/zero where the
/// `1/phi` gradient blows up.
pub const PHI_MIN: f64 = 1e-10;

/// Full parameter state of the a-MMSB sampler.
#[derive(Debug, Clone)]
pub struct ModelState {
    n: u32,
    k: usize,
    layout: StateLayout,
    /// `N x K` row-major, rows sum to 1 (f32, as in the paper's DKV rows).
    pi: Vec<f32>,
    /// `N` row sums of `phi` (PiSumPhi layout).
    phi_sum: Vec<f32>,
    /// `N x K` full phi (FullPhi layout; empty otherwise).
    phi: Vec<f64>,
    /// `K x 2` flat: `theta[2k]` is the non-link mass, `theta[2k + 1]` the
    /// link mass, so `beta_k = theta[2k+1] / (theta[2k] + theta[2k+1])`.
    theta: Vec<f64>,
    /// `K` community strengths, always kept consistent with `theta`.
    beta: Vec<f64>,
}

impl ModelState {
    /// Initialize from the priors: `phi_ak ~ Gamma(alpha, 1)` (so the
    /// initial `pi` rows are draws from the `Dirichlet(alpha)` membership
    /// prior — for `alpha < 1` they are peaked on random communities,
    /// which breaks the label symmetry that otherwise collapses all mass
    /// into one community), `theta_ki ~ Gamma(eta_i, 1)`.
    pub fn init<R: RngCore>(
        n: u32,
        k: usize,
        layout: StateLayout,
        alpha: f64,
        eta: (f64, f64),
        rng: &mut R,
    ) -> Result<Self, CoreError> {
        if k == 0 || n == 0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("state needs n > 0 and k > 0, got n={n} k={k}"),
            });
        }
        let g_alpha = Gamma::new(alpha, 1.0).map_err(|e| CoreError::InvalidConfig {
            reason: format!("alpha: {e}"),
        })?;
        let g_eta0 = Gamma::new(eta.0, 1.0).map_err(|e| CoreError::InvalidConfig {
            reason: format!("eta0: {e}"),
        })?;
        let g_eta1 = Gamma::new(eta.1, 1.0).map_err(|e| CoreError::InvalidConfig {
            reason: format!("eta1: {e}"),
        })?;

        let nk = n as usize * k;
        let mut pi = vec![0.0f32; nk];
        let mut phi_sum = vec![0.0f32; n as usize];
        let mut phi = match layout {
            StateLayout::FullPhi => vec![0.0f64; nk],
            StateLayout::PiSumPhi => Vec::new(),
        };
        let mut row = vec![0.0f64; k];
        for a in 0..n as usize {
            let mut sum = 0.0f64;
            for slot in row.iter_mut() {
                let x = g_alpha.sample(rng).max(PHI_MIN);
                *slot = x;
                sum += x;
            }
            phi_sum[a] = sum as f32;
            for (j, &x) in row.iter().enumerate() {
                pi[a * k + j] = (x / sum) as f32;
            }
            if layout == StateLayout::FullPhi {
                phi[a * k..(a + 1) * k].copy_from_slice(&row);
            }
        }

        let mut theta = vec![0.0f64; 2 * k];
        for c in 0..k {
            theta[2 * c] = g_eta0.sample(rng).max(PHI_MIN);
            theta[2 * c + 1] = g_eta1.sample(rng).max(PHI_MIN);
        }
        let mut state = Self {
            n,
            k,
            layout,
            pi,
            phi_sum,
            phi,
            theta,
            beta: vec![0.0; k],
        };
        state.recompute_beta();
        Ok(state)
    }

    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of communities.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured layout.
    pub fn layout(&self) -> StateLayout {
        self.layout
    }

    /// The normalized membership row of vertex `a`.
    #[inline]
    pub fn pi_row(&self, a: u32) -> &[f32] {
        let i = a as usize * self.k;
        &self.pi[i..i + self.k]
    }

    /// Reconstruct the `phi` row of vertex `a` into `out` (f64).
    ///
    /// # Panics
    /// Panics if `out.len() != k`.
    pub fn phi_row(&self, a: u32, out: &mut [f64]) {
        assert_eq!(out.len(), self.k, "phi row buffer has wrong length");
        match self.layout {
            StateLayout::PiSumPhi => {
                let sum = self.phi_sum[a as usize] as f64;
                for (o, &p) in out.iter_mut().zip(self.pi_row(a)) {
                    *o = (p as f64 * sum).max(PHI_MIN);
                }
            }
            StateLayout::FullPhi => {
                let i = a as usize * self.k;
                out.copy_from_slice(&self.phi[i..i + self.k]);
            }
        }
    }

    /// Install a new `phi` row for vertex `a`, updating `pi` (and
    /// `sum(phi)` / `phi` per layout).
    ///
    /// # Panics
    /// Panics if `new_phi.len() != k` or any entry is non-positive/NaN.
    pub fn set_phi_row(&mut self, a: u32, new_phi: &[f64]) {
        assert_eq!(new_phi.len(), self.k, "phi row has wrong length");
        let sum: f64 = new_phi.iter().sum();
        assert!(
            sum > 0.0 && sum.is_finite(),
            "phi row for vertex {a} has invalid sum {sum}"
        );
        let i = a as usize * self.k;
        for (j, &x) in new_phi.iter().enumerate() {
            debug_assert!(x > 0.0, "phi[{a}][{j}] = {x} not positive");
            self.pi[i + j] = (x / sum) as f32;
        }
        self.phi_sum[a as usize] = sum as f32;
        if self.layout == StateLayout::FullPhi {
            self.phi[i..i + self.k].copy_from_slice(new_phi);
        }
    }

    /// The flat `K x 2` theta vector.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Mutable access to theta; call [`ModelState::recompute_beta`] after
    /// changing it.
    pub fn theta_mut(&mut self) -> &mut [f64] {
        &mut self.theta
    }

    /// Community strengths `beta`.
    pub fn beta(&self) -> &[f64] {
        &self.beta
    }

    /// Overwrite `beta` directly (used by distributed workers receiving a
    /// broadcast; the master keeps theta).
    pub fn set_beta(&mut self, beta: &[f64]) {
        assert_eq!(beta.len(), self.k, "beta has wrong length");
        self.beta.copy_from_slice(beta);
    }

    /// Recompute `beta_k = theta_k1 / (theta_k0 + theta_k1)`.
    pub fn recompute_beta(&mut self) {
        for c in 0..self.k {
            let t0 = self.theta[2 * c];
            let t1 = self.theta[2 * c + 1];
            self.beta[c] = t1 / (t0 + t1);
        }
    }

    /// Number of f32 elements in one DKV row: `pi` plus `sum(phi)`.
    pub fn dkv_row_len(&self) -> usize {
        self.k + 1
    }

    /// Encode vertex `a`'s DKV row (`pi ++ sum(phi)`) into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != k + 1`.
    pub fn encode_dkv_row(&self, a: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.k + 1, "DKV row buffer has wrong length");
        out[..self.k].copy_from_slice(self.pi_row(a));
        out[self.k] = self.phi_sum[a as usize];
    }

    /// Decode a DKV row into vertex `a`'s state.
    pub fn apply_dkv_row(&mut self, a: u32, row: &[f32]) {
        assert_eq!(row.len(), self.k + 1, "DKV row has wrong length");
        let i = a as usize * self.k;
        self.pi[i..i + self.k].copy_from_slice(&row[..self.k]);
        self.phi_sum[a as usize] = row[self.k];
    }

    /// Approximate heap footprint of the per-vertex state in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.pi.len() * 4 + self.phi_sum.len() * 4 + self.phi.len() * 8
    }

    /// Flat views of the state arrays, in checkpoint order:
    /// `(pi, phi_sum, phi)`. `phi` is empty for [`StateLayout::PiSumPhi`].
    pub(crate) fn flat_arrays(&self) -> (&[f32], &[f32], &[f64]) {
        (&self.pi, &self.phi_sum, &self.phi)
    }

    /// Rebuild a state from checkpointed arrays. Dimensions are validated;
    /// values are trusted (the checkpoint layer checksums them).
    #[allow(clippy::too_many_arguments)] // mirrors the checkpoint record
    pub(crate) fn from_flat_arrays(
        n: u32,
        k: usize,
        layout: StateLayout,
        pi: Vec<f32>,
        phi_sum: Vec<f32>,
        phi: Vec<f64>,
        theta: Vec<f64>,
        beta: Vec<f64>,
    ) -> Result<Self, CoreError> {
        let nk = n as usize * k;
        let phi_expected = match layout {
            StateLayout::FullPhi => nk,
            StateLayout::PiSumPhi => 0,
        };
        if n == 0
            || k == 0
            || pi.len() != nk
            || phi_sum.len() != n as usize
            || phi.len() != phi_expected
            || theta.len() != 2 * k
            || beta.len() != k
        {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "checkpoint arrays do not match n={n} k={k} layout={layout:?}"
                ),
            });
        }
        Ok(Self {
            n,
            k,
            layout,
            pi,
            phi_sum,
            phi,
            theta,
            beta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::Xoshiro256PlusPlus;

    fn state(layout: StateLayout) -> ModelState {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        ModelState::init(50, 4, layout, 0.5, (1.0, 1.0), &mut rng).unwrap()
    }

    #[test]
    fn init_produces_normalized_pi() {
        for layout in [StateLayout::PiSumPhi, StateLayout::FullPhi] {
            let s = state(layout);
            for a in 0..50 {
                let sum: f32 = s.pi_row(a).iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "{layout:?} a={a} sum={sum}");
                assert!(s.pi_row(a).iter().all(|&p| p > 0.0));
            }
        }
    }

    #[test]
    fn beta_consistent_with_theta() {
        let mut s = state(StateLayout::PiSumPhi);
        for c in 0..4 {
            let t0 = s.theta()[2 * c];
            let t1 = s.theta()[2 * c + 1];
            assert!((s.beta()[c] - t1 / (t0 + t1)).abs() < 1e-15);
            assert!(s.beta()[c] > 0.0 && s.beta()[c] < 1.0);
        }
        s.theta_mut()[0] = 3.0;
        s.theta_mut()[1] = 1.0;
        s.recompute_beta();
        assert!((s.beta()[0] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn phi_roundtrip_full_layout_is_exact() {
        let mut s = state(StateLayout::FullPhi);
        let new_phi = vec![0.5, 1.5, 2.0, 4.0];
        s.set_phi_row(7, &new_phi);
        let mut got = vec![0.0; 4];
        s.phi_row(7, &mut got);
        assert_eq!(got, new_phi);
        assert!((s.pi_row(7)[3] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn phi_roundtrip_pisum_layout_is_close() {
        let mut s = state(StateLayout::PiSumPhi);
        let new_phi = vec![0.5, 1.5, 2.0, 4.0];
        s.set_phi_row(7, &new_phi);
        let mut got = vec![0.0; 4];
        s.phi_row(7, &mut got);
        for (g, e) in got.iter().zip(&new_phi) {
            assert!((g - e).abs() / e < 1e-5, "got {g} expected {e}");
        }
    }

    #[test]
    fn dkv_row_roundtrip() {
        let mut s = state(StateLayout::PiSumPhi);
        let mut row = vec![0.0f32; 5];
        s.encode_dkv_row(3, &mut row);
        let before: Vec<f32> = s.pi_row(3).to_vec();
        // Wipe and restore.
        s.apply_dkv_row(3, &[0.25f32, 0.25, 0.25, 0.25, 8.0]);
        assert_eq!(s.pi_row(3), &[0.25, 0.25, 0.25, 0.25]);
        s.apply_dkv_row(3, &row);
        assert_eq!(s.pi_row(3), &before[..]);
    }

    #[test]
    fn memory_accounting_reflects_layout() {
        let slim = state(StateLayout::PiSumPhi);
        let fat = state(StateLayout::FullPhi);
        assert!(fat.memory_bytes() > 2 * slim.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "invalid sum")]
    fn set_phi_rejects_nan() {
        let mut s = state(StateLayout::PiSumPhi);
        s.set_phi_row(0, &[f64::NAN, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn rejects_zero_dims() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        assert!(ModelState::init(0, 4, StateLayout::PiSumPhi, 0.5, (1.0, 1.0), &mut rng).is_err());
        assert!(ModelState::init(5, 0, StateLayout::PiSumPhi, 0.5, (1.0, 1.0), &mut rng).is_err());
        assert!(ModelState::init(5, 4, StateLayout::PiSumPhi, 0.5, (0.0, 1.0), &mut rng).is_err());
        assert!(ModelState::init(5, 4, StateLayout::PiSumPhi, 0.0, (1.0, 1.0), &mut rng).is_err());
    }

    #[test]
    fn init_is_deterministic() {
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(2);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(2);
        let a = ModelState::init(10, 3, StateLayout::PiSumPhi, 0.5, (1.0, 1.0), &mut r1).unwrap();
        let b = ModelState::init(10, 3, StateLayout::PiSumPhi, 0.5, (1.0, 1.0), &mut r2).unwrap();
        assert_eq!(a.pi_row(5), b.pi_row(5));
        assert_eq!(a.theta(), b.theta());
    }
}
