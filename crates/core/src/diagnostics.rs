//! MCMC chain diagnostics.
//!
//! The paper declares convergence by watching the perplexity trace
//! "reach a stable state" (Figure 6). These helpers make such judgements
//! quantitative: autocorrelation of a scalar trace, the effective sample
//! size of the post-burn-in samples, and the Geweke z-score comparing the
//! early and late segments of the chain.

/// Sample mean of a trace.
fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (denominator `n`), 0 for constant traces.
fn variance(xs: &[f64], m: f64) -> f64 {
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Autocorrelation of `trace` at the given lag.
///
/// Returns `None` for traces shorter than `lag + 2` or with zero
/// variance.
pub fn autocorrelation(trace: &[f64], lag: usize) -> Option<f64> {
    if trace.len() < lag + 2 {
        return None;
    }
    let m = mean(trace);
    let var = variance(trace, m);
    if var == 0.0 {
        return None;
    }
    let n = trace.len();
    let cov = (0..n - lag)
        .map(|i| (trace[i] - m) * (trace[i + lag] - m))
        .sum::<f64>()
        / n as f64;
    Some(cov / var)
}

/// Effective sample size via the initial-positive-sequence estimator:
/// `ESS = n / (1 + 2 * sum_l rho_l)`, truncating the sum at the first
/// non-positive autocorrelation (Geyer 1992, simplified).
///
/// Returns `None` for traces shorter than 4 samples or with zero variance.
pub fn effective_sample_size(trace: &[f64]) -> Option<f64> {
    let n = trace.len();
    if n < 4 {
        return None;
    }
    autocorrelation(trace, 1)?; // validates variance
    let mut rho_sum = 0.0;
    for lag in 1..n / 2 {
        match autocorrelation(trace, lag) {
            Some(rho) if rho > 0.0 => rho_sum += rho,
            _ => break,
        }
    }
    Some((n as f64 / (1.0 + 2.0 * rho_sum)).min(n as f64))
}

/// Geweke convergence z-score: compares the mean of the first
/// `first_frac` of the trace against the last `last_frac`, normalized by
/// their standard errors. |z| below ~2 is consistent with stationarity.
///
/// Returns `None` if either segment has fewer than 2 samples or both
/// segments are constant.
pub fn geweke_z(trace: &[f64], first_frac: f64, last_frac: f64) -> Option<f64> {
    assert!(
        first_frac > 0.0 && last_frac > 0.0 && first_frac + last_frac <= 1.0,
        "fractions must be positive and sum to at most 1"
    );
    let n = trace.len();
    let a_len = (n as f64 * first_frac) as usize;
    let b_len = (n as f64 * last_frac) as usize;
    if a_len < 2 || b_len < 2 {
        return None;
    }
    let a = &trace[..a_len];
    let b = &trace[n - b_len..];
    let (ma, mb) = (mean(a), mean(b));
    let se2 = variance(a, ma) / a_len as f64 + variance(b, mb) / b_len as f64;
    if se2 == 0.0 {
        return None;
    }
    Some((ma - mb) / se2.sqrt())
}

/// Summary of a scalar chain trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Lag-1 autocorrelation (if defined).
    pub rho1: Option<f64>,
    /// Effective sample size (if defined).
    pub ess: Option<f64>,
    /// Geweke z over the conventional (10%, 50%) split (if defined).
    pub geweke: Option<f64>,
}

/// Compute a [`TraceSummary`] for a trace.
///
/// # Panics
/// Panics on an empty trace.
pub fn summarize_trace(trace: &[f64]) -> TraceSummary {
    assert!(!trace.is_empty(), "cannot summarize an empty trace");
    let m = mean(trace);
    TraceSummary {
        n: trace.len(),
        mean: m,
        std_dev: variance(trace, m).sqrt(),
        rho1: autocorrelation(trace, 1),
        ess: effective_sample_size(trace),
        geweke: geweke_z(trace, 0.1, 0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsb_rand::{Rng, Xoshiro256PlusPlus};

    fn iid_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64()).collect()
    }

    #[test]
    fn autocorrelation_of_iid_noise_is_small() {
        let xs = iid_noise(5000, 1);
        let rho = autocorrelation(&xs, 1).unwrap();
        assert!(rho.abs() < 0.05, "rho1 = {rho}");
    }

    #[test]
    fn autocorrelation_of_persistent_chain_is_high() {
        // AR(1) with coefficient 0.95.
        let noise = iid_noise(5000, 2);
        let mut xs = vec![0.0];
        for e in noise {
            let prev = *xs.last().unwrap();
            xs.push(0.95 * prev + e);
        }
        let rho = autocorrelation(&xs, 1).unwrap();
        assert!(rho > 0.85, "rho1 = {rho}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert!(autocorrelation(&[1.0, 2.0], 1).is_none());
        assert!(autocorrelation(&[3.0; 10], 1).is_none()); // zero variance
        // Lag 0 is exactly 1 for any non-constant trace.
        let xs = iid_noise(100, 3);
        assert!((autocorrelation(&xs, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ess_of_iid_noise_is_near_n() {
        let xs = iid_noise(2000, 4);
        let ess = effective_sample_size(&xs).unwrap();
        assert!(ess > 1200.0, "ess = {ess}");
    }

    #[test]
    fn ess_of_correlated_chain_is_much_smaller() {
        let noise = iid_noise(2000, 5);
        let mut xs = vec![0.0];
        for e in noise {
            let prev = *xs.last().unwrap();
            xs.push(0.98 * prev + 0.02 * e);
        }
        let ess = effective_sample_size(&xs).unwrap();
        assert!(ess < 200.0, "ess = {ess}");
    }

    #[test]
    fn geweke_detects_drift() {
        // A strongly trending trace: early and late means differ.
        let xs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let z = geweke_z(&xs, 0.1, 0.5).unwrap();
        assert!(z.abs() > 5.0, "z = {z}");
        // A stationary trace: small z.
        let xs = iid_noise(2000, 6);
        let z = geweke_z(&xs, 0.1, 0.5).unwrap();
        assert!(z.abs() < 3.0, "z = {z}");
    }

    #[test]
    fn geweke_edge_cases() {
        assert!(geweke_z(&[1.0, 2.0, 3.0], 0.1, 0.5).is_none());
        assert!(geweke_z(&[5.0; 100], 0.1, 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn geweke_rejects_bad_fractions() {
        geweke_z(&[1.0; 10], 0.6, 0.6);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = iid_noise(500, 7);
        let s = summarize_trace(&xs);
        assert_eq!(s.n, 500);
        assert!((s.mean - 0.5).abs() < 0.1);
        assert!(s.std_dev > 0.2 && s.std_dev < 0.4);
        assert!(s.rho1.is_some() && s.ess.is_some() && s.geweke.is_some());
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn summary_rejects_empty() {
        summarize_trace(&[]);
    }
}
