//! Convergence (plateau) detection on the perplexity trace.
//!
//! Figure 6 runs each dataset "until the algorithm reached a stable
//! state". This module makes that operational: a window-based detector
//! that declares convergence when the relative improvement of the smoothed
//! perplexity over the last window falls below a tolerance.

/// Rolling plateau detector over a perplexity (or any loss) trace.
#[derive(Debug, Clone)]
pub struct PlateauDetector {
    window: usize,
    rel_tolerance: f64,
    history: Vec<f64>,
}

impl PlateauDetector {
    /// Create a detector: convergence is declared when the mean of the
    /// most recent `window` observations improves on the mean of the
    /// previous `window` by less than `rel_tolerance` (relative).
    ///
    /// # Panics
    /// Panics if `window == 0` or the tolerance is not positive.
    pub fn new(window: usize, rel_tolerance: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            rel_tolerance > 0.0 && rel_tolerance.is_finite(),
            "tolerance must be positive"
        );
        Self {
            window,
            rel_tolerance,
            history: Vec::new(),
        }
    }

    /// Record one observation; returns `true` once the trace has plateaued.
    pub fn record(&mut self, value: f64) -> bool {
        assert!(value.is_finite(), "non-finite observation {value}");
        self.history.push(value);
        self.converged()
    }

    /// Whether the currently recorded trace has plateaued.
    pub fn converged(&self) -> bool {
        let w = self.window;
        if self.history.len() < 2 * w {
            return false;
        }
        let n = self.history.len();
        let recent: f64 = self.history[n - w..].iter().sum::<f64>() / w as f64;
        let previous: f64 = self.history[n - 2 * w..n - w].iter().sum::<f64>() / w as f64;
        // Improvement means the metric went *down* (perplexity). A rising
        // trace also counts as plateaued (no further progress).
        let improvement = (previous - recent) / previous.abs().max(f64::MIN_POSITIVE);
        improvement < self.rel_tolerance
    }

    /// Observations recorded so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The recorded trace.
    pub fn history(&self) -> &[f64] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_windows_of_data() {
        let mut d = PlateauDetector::new(3, 0.01);
        for _ in 0..5 {
            assert!(!d.record(10.0));
        }
        // Sixth observation completes 2 windows of identical values.
        assert!(d.record(10.0));
    }

    #[test]
    fn steep_descent_is_not_converged() {
        let mut d = PlateauDetector::new(3, 0.01);
        let mut converged = false;
        for i in 0..10 {
            converged = d.record(100.0 / (i + 1) as f64);
        }
        assert!(!converged, "still halving every window");
    }

    #[test]
    fn plateau_after_descent_is_detected() {
        let mut d = PlateauDetector::new(3, 0.01);
        for i in 0..6 {
            d.record(100.0 - 10.0 * i as f64);
        }
        assert!(!d.converged());
        let mut fired = false;
        for _ in 0..6 {
            fired = d.record(40.0);
            if fired {
                break;
            }
        }
        assert!(fired, "flat tail should converge");
    }

    #[test]
    fn rising_trace_counts_as_plateaued() {
        let mut d = PlateauDetector::new(2, 0.01);
        let mut fired = false;
        for i in 0..8 {
            fired = d.record(10.0 + i as f64);
            if fired {
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn history_is_preserved() {
        let mut d = PlateauDetector::new(2, 0.1);
        d.record(3.0);
        d.record(2.0);
        assert_eq!(d.history(), &[3.0, 2.0]);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        PlateauDetector::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_observation_panics() {
        PlateauDetector::new(2, 0.1).record(f64::NAN);
    }
}
