//! SG-MCMC inference for assortative mixed-membership stochastic
//! blockmodels — the core contribution of El-Helw et al., *Scalable
//! Overlapping Community Detection* (IPDPS-W 2016), reimplemented in Rust.
//!
//! The model (paper §II): each vertex `a` has a membership distribution
//! `pi_a` over `K` communities; each community `k` has a strength
//! `beta_k`; a pair links with probability `beta_k` when both draw the
//! same community `k` and with a small `delta` otherwise. Inference uses
//! stochastic-gradient Riemannian Langevin dynamics (SGRLD) on the
//! expanded-mean parameterizations `phi` (for `pi`) and `theta` (for
//! `beta`), processing one mini-batch of vertex pairs per iteration.
//!
//! Three drivers share the same numerical kernels:
//!
//! * [`SequentialSampler`] — Algorithm 1 verbatim; the reference.
//! * [`ParallelSampler`] — node-level parallelism over mini-batch vertices
//!   (the paper's OpenMP layer, here a from-scratch `mmsb-pool` fork-join
//!   pool). Bitwise-identical chains to the sequential sampler: all
//!   per-vertex randomness is derived from `(seed, iteration, vertex)`,
//!   never from thread schedule, and reductions use fixed chunk
//!   boundaries combined by a fixed binary tree.
//! * [`DistributedSampler`] — the master–worker cluster execution
//!   (paper §III) over the `mmsb-dkv` sharded store, run in lockstep
//!   simulation: per-rank compute is executed for real and measured,
//!   communication and RDMA time are charged to virtual clocks from the
//!   `mmsb-netsim` cost models, and pipelining (double-buffered `pi`
//!   loads) can be toggled — reproducing Figures 1–4 and Table III.
//!
//! A fourth driver, [`train_threaded`], runs the same master–worker
//! protocol with real OS threads and `mmsb-comm` message passing (for
//! functional/concurrency validation; it produces the identical chain).
//!
//! # Quickstart
//!
//! ```
//! use mmsb_core::{SamplerConfig, SequentialSampler};
//! use mmsb_graph::generate::planted::{generate_planted, PlantedConfig};
//! use mmsb_graph::heldout::HeldOut;
//! use mmsb_rand::Xoshiro256PlusPlus;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
//! let gen = generate_planted(&PlantedConfig {
//!     num_vertices: 120, num_communities: 4, mean_community_size: 35.0,
//!     memberships_per_vertex: 1.2, internal_degree: 8.0, background_degree: 0.5,
//! }, &mut rng);
//! let (train, heldout) = HeldOut::split(&gen.graph, 40, &mut rng);
//!
//! let config = SamplerConfig::new(4).with_seed(1);
//! let mut sampler = SequentialSampler::new(train, heldout, config).unwrap();
//! sampler.run(50);
//! let perplexity = sampler.evaluate_perplexity();
//! assert!(perplexity.is_finite() && perplexity > 1.0);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod communities;
pub mod convergence;
pub mod diagnostics;
pub mod eval;
pub mod kernels;

mod checkpoint;
mod compute_model;
mod config;
mod perplexity;
mod posterior;
mod rngs;
mod sampler;
mod state;
mod workspace;

pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use compute_model::NodeComputeModel;
pub use config::{SamplerConfig, StateLayout, StepSize};
pub use perplexity::{link_probability, PerplexityAccumulator};
pub use posterior::PosteriorMean;
pub use sampler::distributed::{DistributedConfig, DistributedSampler};
pub use sampler::parallel::ParallelSampler;
pub use sampler::sequential::SequentialSampler;
pub use sampler::threaded::{train_threaded, ThreadedOutcome};
pub use state::{ModelState, PHI_MIN};

// Re-exported so downstream crates (CLI, benches) can name the kernel
// backend selection without depending on `mmsb-simd` directly.
pub use mmsb_simd::{Backend, PolicyError, SimdPolicy};

/// Errors from sampler construction and execution.
#[derive(Debug)]
pub enum CoreError {
    /// Configuration failed validation.
    InvalidConfig {
        /// Explanation of the failure.
        reason: String,
    },
    /// The graph is too small for the configured samplers.
    GraphTooSmall {
        /// Explanation of the failure.
        reason: String,
    },
    /// A distributed-store failure (propagated from `mmsb-dkv`).
    Store(mmsb_dkv::DkvError),
    /// A checkpoint failed to encode, decode, or match the sampler.
    Checkpoint(checkpoint::CheckpointError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid config: {reason}"),
            CoreError::GraphTooSmall { reason } => write!(f, "graph too small: {reason}"),
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            CoreError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mmsb_dkv::DkvError> for CoreError {
    fn from(e: mmsb_dkv::DkvError) -> Self {
        CoreError::Store(e)
    }
}

impl From<checkpoint::CheckpointError> for CoreError {
    fn from(e: checkpoint::CheckpointError) -> Self {
        CoreError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = CoreError::InvalidConfig {
            reason: "k = 0".into(),
        };
        assert!(e.to_string().contains("k = 0"));
        let e = CoreError::Store(mmsb_dkv::DkvError::KeyOutOfRange {
            key: 1,
            num_keys: 1,
        });
        assert!(e.to_string().contains("store"));
    }
}
