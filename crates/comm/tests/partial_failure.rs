//! Partial-failure behavior of the communicator: a rank dying
//! mid-collective must surface `CommError::Disconnected { peer }` with
//! the *correct* peer on every survivor — never a hang — and the
//! reliable layer must deliver exactly-once over a lossy fabric.

use mmsb_comm::{collectives, CommError, LocalCluster, ReliableEndpoint};
use mmsb_netsim::{FaultConfig, FaultPlan, RecoveryPolicy};
use std::thread;
use std::time::Duration;

#[test]
fn dead_contributor_fails_allreduce_on_all_survivors() {
    let eps = LocalCluster::spawn(4);
    let dead_rank = 2usize;
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            thread::spawn(move || {
                if ep.rank() == dead_rank {
                    // Dies before contributing; dropping the endpoint is
                    // the simulated crash.
                    return None;
                }
                Some(collectives::allreduce_sum_f64(&ep, &[ep.rank() as f64]))
            })
        })
        .collect();
    for (rank, h) in handles.into_iter().enumerate() {
        let result = h.join().unwrap();
        if rank == dead_rank {
            assert!(result.is_none());
        } else {
            assert_eq!(
                result.unwrap(),
                Err(CommError::Disconnected { peer: dead_rank }),
                "survivor rank {rank} must name the dead contributor"
            );
        }
    }
}

#[test]
fn contributor_dying_after_sending_still_aborts_cleanly() {
    // The dead rank's contribution *arrives* at the root, but the rank is
    // gone by broadcast time: the root must skip it (best-effort) and the
    // other survivors still get the sum.
    let eps = LocalCluster::spawn(3);
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            thread::spawn(move || {
                if ep.rank() == 1 {
                    // Contribute by hand, then die before the broadcast.
                    let mut w = mmsb_comm::message::MessageWriter::new();
                    w.put_f64_slice(&[1.0]);
                    ep.send(0, w.finish()).unwrap();
                    return None;
                }
                if ep.rank() == 0 {
                    // Give rank 1 time to send and die so the root's
                    // broadcast really faces a dead destination.
                    thread::sleep(Duration::from_millis(50));
                }
                Some(collectives::allreduce_sum_f64(&ep, &[ep.rank() as f64]))
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Root reduced 0 + 1 + 2 and must not have errored out.
    assert_eq!(results[0], Some(Ok(vec![3.0])));
    assert_eq!(results[1], None);
    assert_eq!(results[2], Some(Ok(vec![3.0])));
}

#[test]
fn dead_root_fails_scatter_on_all_survivors() {
    let eps = LocalCluster::spawn(3);
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            thread::spawn(move || {
                if ep.rank() == 0 {
                    return None; // the root dies before scattering
                }
                Some(collectives::scatter_bytes(&ep, 0, None))
            })
        })
        .collect();
    for (rank, h) in handles.into_iter().enumerate() {
        let result = h.join().unwrap();
        if rank == 0 {
            assert!(result.is_none());
        } else {
            assert_eq!(
                result.unwrap(),
                Err(CommError::Disconnected { peer: 0 }),
                "survivor rank {rank} must name the dead root"
            );
        }
    }
}

#[test]
fn recv_from_live_but_silent_peer_times_out() {
    let mut eps = LocalCluster::spawn(2);
    let b = eps.pop().unwrap();
    let a = eps.pop().unwrap();
    let t = thread::spawn(move || {
        // Stay alive and silent past b's deadline, then deliver.
        thread::sleep(Duration::from_millis(150));
        a.send(1, vec![5]).unwrap();
        // Hold the endpoint open until b confirms receipt.
        a.recv(1).unwrap();
    });
    b.set_timeout(Some(Duration::from_millis(30)));
    assert_eq!(b.recv(0), Err(CommError::Timeout { peer: 0 }));
    // Clearing the deadline lets the late message through.
    b.set_timeout(None);
    assert_eq!(b.recv(0), Ok(vec![5]));
    b.send(0, vec![]).unwrap();
    t.join().unwrap();
}

#[test]
fn reliable_exchange_over_lossy_fabric_is_exactly_once_in_order() {
    let mut eps = LocalCluster::spawn(2);
    let rx_ep = eps.pop().unwrap();
    let tx_ep = eps.pop().unwrap();
    // Heavy loss: drops, duplicates and delays on every link.
    let plan = FaultPlan::new(FaultConfig::transient(1234));
    let policy = RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    };
    let n = 40u64;
    let tx = thread::spawn(move || {
        let rep = ReliableEndpoint::new(tx_ep, plan, policy);
        let mut reports = Vec::new();
        for i in 0..n {
            reports.push(rep.send(1, &i.to_le_bytes()).unwrap());
        }
        // Stay alive until the receiver confirms it got everything.
        rep.endpoint().recv(1).unwrap();
        reports
    });
    let rep = ReliableEndpoint::new(rx_ep, plan, policy);
    let mut got = Vec::new();
    for _ in 0..n {
        let payload = rep.recv(0).unwrap();
        got.push(u64::from_le_bytes(payload.as_slice().try_into().unwrap()));
    }
    // Best-effort: the sender may already have seen a stale duplicate ack
    // and exited, which is fine — it has nothing left to deliver.
    let _ = rep.endpoint().send(0, Vec::new());
    let reports = tx.join().unwrap();
    assert_eq!(got, (0..n).collect::<Vec<u64>>(), "loss broke exactly-once");
    let retried = reports.iter().filter(|r| r.attempts > 1).count();
    assert!(retried > 0, "10% drop rate never forced a retry in {n} sends");
    assert!(reports.iter().any(|r| r.recovery_seconds > 0.0));
}
