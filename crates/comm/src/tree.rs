//! Binomial-tree collectives.
//!
//! The flat collectives in [`crate::collectives`] move every payload
//! through the root — `O(P)` serialized messages. These tree variants use
//! the textbook binomial-tree dataflow (`ceil(log2 P)` rounds), the same
//! algorithm family `mmsb-netsim` prices and MVAPICH2 uses at the paper's
//! message sizes. Semantics are identical to the flat versions; note that
//! tree reduction *associates the sums differently* (pairs at each tree
//! level), so floating-point results can differ from the flat reduce in
//! the last bits — callers that pin bitwise reproducibility (the threaded
//! sampler) use the flat rank-order reduce instead.

use crate::message::{MessageReader, MessageWriter};
use crate::{CommError, Endpoint};

/// Relative rank with `root` mapped to 0.
#[inline]
fn relative(rank: usize, root: usize, size: usize) -> usize {
    (rank + size - root) % size
}

/// Absolute rank for a relative rank.
#[inline]
fn absolute(rel: usize, root: usize, size: usize) -> usize {
    (rel + root) % size
}

/// Binomial-tree broadcast: `ceil(log2 P)` rounds instead of the flat
/// version's `P - 1` root messages.
pub fn broadcast_bytes_tree(
    ep: &Endpoint,
    root: usize,
    data: Vec<u8>,
) -> Result<Vec<u8>, CommError> {
    let size = ep.size();
    let rel = relative(ep.rank(), root, size);
    // Receive phase: a non-root rank receives from rel - lowbit(rel).
    let mut mask = 1usize;
    let mut payload = data;
    while mask < size {
        if rel & mask != 0 {
            let src = absolute(rel - mask, root, size);
            payload = ep.recv(src)?;
            break;
        }
        mask <<= 1;
    }
    // Forward phase: send to children rel + mask for descending masks.
    mask >>= 1;
    while mask > 0 {
        if rel & mask == 0 && rel + mask < size {
            let dst = absolute(rel + mask, root, size);
            ep.send(dst, payload.clone())?;
        }
        mask >>= 1;
    }
    Ok(payload)
}

/// Binomial-tree reduce of element-wise `f64` sums to `root`. Non-root
/// ranks return `None`.
pub fn reduce_sum_f64_tree(
    ep: &Endpoint,
    root: usize,
    data: &[f64],
) -> Result<Option<Vec<f64>>, CommError> {
    let size = ep.size();
    let rel = relative(ep.rank(), root, size);
    let mut acc = data.to_vec();
    let mut mask = 1usize;
    while mask < size {
        if rel & mask != 0 {
            // Send the partial sum up the tree and stop.
            let dst = absolute(rel - mask, root, size);
            let mut w = MessageWriter::with_capacity(8 + acc.len() * 8);
            w.put_f64_slice(&acc);
            ep.send(dst, w.finish())?;
            return Ok(None);
        }
        let src_rel = rel + mask;
        if src_rel < size {
            let bytes = ep.recv(absolute(src_rel, root, size))?;
            let mut r = MessageReader::new(&bytes);
            let contrib = r.get_f64_slice()?;
            r.finish()?;
            if contrib.len() != acc.len() {
                return Err(CommError::Malformed {
                    reason: format!(
                        "tree reduce length mismatch: have {}, received {}",
                        acc.len(),
                        contrib.len()
                    ),
                });
            }
            for (a, c) in acc.iter_mut().zip(&contrib) {
                *a += c;
            }
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// Tree all-reduce: tree reduce to rank 0 followed by tree broadcast.
pub fn allreduce_sum_f64_tree(ep: &Endpoint, data: &[f64]) -> Result<Vec<f64>, CommError> {
    let reduced = reduce_sum_f64_tree(ep, 0, data)?;
    let bytes = if ep.rank() == 0 {
        let mut w = MessageWriter::new();
        w.put_f64_slice(&reduced.expect("rank 0 holds the reduction"));
        broadcast_bytes_tree(ep, 0, w.finish())?
    } else {
        broadcast_bytes_tree(ep, 0, Vec::new())?
    };
    let mut r = MessageReader::new(&bytes);
    let out = r.get_f64_slice()?;
    r.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalCluster;
    use std::sync::Arc;
    use std::thread;

    fn run_spmd<T: Send + 'static>(
        ranks: usize,
        f: impl Fn(&Endpoint) -> T + Send + Sync + 'static,
    ) -> Vec<T> {
        let f = Arc::new(f);
        let handles: Vec<_> = LocalCluster::spawn(ranks)
            .into_iter()
            .map(|ep| {
                let f = Arc::clone(&f);
                thread::spawn(move || f(&ep))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn tree_broadcast_matches_flat_for_many_shapes() {
        for ranks in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, ranks - 1, ranks / 2] {
                let results = run_spmd(ranks, move |ep| {
                    let data = if ep.rank() == root {
                        vec![7, 7, 7, root as u8]
                    } else {
                        vec![]
                    };
                    broadcast_bytes_tree(ep, root, data).unwrap()
                });
                for (r, payload) in results.into_iter().enumerate() {
                    assert_eq!(
                        payload,
                        vec![7, 7, 7, root as u8],
                        "ranks={ranks} root={root} rank={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn tree_reduce_sums_for_many_shapes() {
        for ranks in [1usize, 2, 3, 6, 9, 16] {
            for root in [0, ranks - 1] {
                let results = run_spmd(ranks, move |ep| {
                    let mine = vec![ep.rank() as f64, 1.0];
                    reduce_sum_f64_tree(ep, root, &mine).unwrap()
                });
                let expected_first = (0..ranks).sum::<usize>() as f64;
                for (r, res) in results.into_iter().enumerate() {
                    if r == root {
                        let v = res.expect("root gets the sum");
                        assert!((v[0] - expected_first).abs() < 1e-12);
                        assert!((v[1] - ranks as f64).abs() < 1e-12);
                    } else {
                        assert!(res.is_none(), "non-root rank {r} returned a value");
                    }
                }
            }
        }
    }

    #[test]
    fn tree_allreduce_gives_everyone_the_sum() {
        let results = run_spmd(7, |ep| {
            allreduce_sum_f64_tree(ep, &[(ep.rank() + 1) as f64]).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![28.0]); // 1+2+...+7
        }
    }

    #[test]
    fn tree_reduce_detects_length_mismatch() {
        let results = run_spmd(2, |ep| {
            let mine = vec![0.0; 2 + ep.rank()];
            reduce_sum_f64_tree(ep, 0, &mine)
        });
        assert!(matches!(&results[0], Err(CommError::Malformed { .. })));
    }
}
