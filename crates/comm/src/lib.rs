//! In-process message-passing: the workspace's MPI analogue.
//!
//! The paper composes its distributed runtime from MPI point-to-point
//! messages, barriers, reduce, broadcast and scatter (§III). This crate
//! provides the same primitives with identical semantics, implemented over
//! OS threads and lock-free channels:
//!
//! * [`LocalCluster::spawn`] creates `R` connected [`Endpoint`]s, one per
//!   rank, that can be moved into worker threads,
//! * [`collectives`] implements broadcast / reduce / all-reduce / scatter /
//!   gather over the point-to-point layer, mirroring how MPI libraries are
//!   layered internally (root-centric dataflow; [`tree`] provides the
//!   binomial-tree variants with `ceil(log2 P)` rounds),
//! * [`message`] provides a compact, alignment-safe wire encoding for the
//!   float and index vectors the sampler exchanges.
//!
//! Timing of these operations on the *simulated* cluster is modeled
//! separately by `mmsb-netsim`; this crate is about transport semantics
//! and is fully functional (the integration tests run real multi-threaded
//! exchanges).
//!
//! # Example
//!
//! ```
//! use mmsb_comm::{LocalCluster, collectives};
//!
//! let endpoints = LocalCluster::spawn(3);
//! let handles: Vec<_> = endpoints
//!     .into_iter()
//!     .map(|ep| {
//!         std::thread::spawn(move || {
//!             let mine = vec![ep.rank() as f64];
//!             collectives::allreduce_sum_f64(&ep, &mine).unwrap()[0]
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     assert_eq!(h.join().unwrap(), 0.0 + 1.0 + 2.0);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod collectives;
pub mod message;
pub mod tree;

mod local;
mod reliable;

pub use local::{Endpoint, LocalCluster};
pub use reliable::{ReliableEndpoint, SendReport};

/// Errors surfaced by communicator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer's endpoint was dropped (its thread exited or panicked).
    Disconnected {
        /// The rank whose channel broke.
        peer: usize,
    },
    /// A rank argument was `>= size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Cluster size.
        size: usize,
    },
    /// A decoded message did not have the expected shape.
    Malformed {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// A `recv` with a per-stage deadline elapsed while the peer was
    /// still alive but silent.
    Timeout {
        /// The rank that failed to deliver in time.
        peer: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Disconnected { peer } => write!(f, "rank {peer} disconnected"),
            CommError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for cluster of {size}")
            }
            CommError::Malformed { reason } => write!(f, "malformed message: {reason}"),
            CommError::Timeout { peer } => {
                write!(f, "timed out waiting for rank {peer}")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(CommError::Disconnected { peer: 3 }.to_string().contains('3'));
        assert!(CommError::RankOutOfRange { rank: 9, size: 4 }
            .to_string()
            .contains('9'));
        assert!(CommError::Malformed {
            reason: "short".into()
        }
        .to_string()
        .contains("short"));
    }
}
