//! Collective operations layered over point-to-point messages.
//!
//! Every collective here is *root-centric* (the root exchanges with each
//! peer directly). That is the simplest correct dataflow; the latency an
//! MPI library's tree algorithms would achieve is what `mmsb-netsim`
//! models for the simulated cluster, so there is no reason to complicate
//! the functional layer. All collectives must be called by **every** rank
//! of the cluster with consistent arguments, like their MPI counterparts.

use crate::message::{MessageReader, MessageWriter};
use crate::{CommError, Endpoint};
use mmsb_obs::id as obs_id;

/// Per-collective instrumentation: bumps the collective counter at open
/// and records the wall time (histogram + span) when dropped, so every
/// return path of a collective is covered.
struct CollectiveObs {
    sw: Option<mmsb_obs::clock::Stopwatch>,
    _span: mmsb_obs::Span,
}

impl CollectiveObs {
    fn open() -> Self {
        mmsb_obs::counter_add(obs_id::C_COMM_COLLECTIVES, 1);
        Self {
            sw: mmsb_obs::metrics_on().then(mmsb_obs::clock::Stopwatch::start),
            _span: mmsb_obs::span(obs_id::S_COMM_COLLECTIVE),
        }
    }
}

impl Drop for CollectiveObs {
    fn drop(&mut self) {
        if let Some(sw) = self.sw {
            mmsb_obs::hist_record_ns(obs_id::H_COMM_COLLECTIVE_NS, sw.elapsed_ns());
        }
    }
}

/// Broadcast `data` from `root` to all ranks; every rank returns the
/// root's payload.
pub fn broadcast_bytes(
    ep: &Endpoint,
    root: usize,
    data: Vec<u8>,
) -> Result<Vec<u8>, CommError> {
    let _obs = CollectiveObs::open();
    if ep.rank() == root {
        for r in 0..ep.size() {
            if r != root {
                ep.send(r, data.clone())?;
            }
        }
        Ok(data)
    } else {
        ep.recv(root)
    }
}

/// Reduce element-wise sums of `f64` vectors to `root`. Non-root ranks
/// return `None`.
pub fn reduce_sum_f64(
    ep: &Endpoint,
    root: usize,
    data: &[f64],
) -> Result<Option<Vec<f64>>, CommError> {
    let _obs = CollectiveObs::open();
    if ep.rank() == root {
        let mut acc = data.to_vec();
        for r in 0..ep.size() {
            if r == root {
                continue;
            }
            let bytes = ep.recv(r)?;
            let mut reader = MessageReader::new(&bytes);
            let contrib = reader.get_f64_slice()?;
            reader.finish()?;
            if contrib.len() != acc.len() {
                return Err(CommError::Malformed {
                    reason: format!(
                        "reduce length mismatch: root has {}, rank {r} sent {}",
                        acc.len(),
                        contrib.len()
                    ),
                });
            }
            for (a, c) in acc.iter_mut().zip(&contrib) {
                *a += c;
            }
        }
        Ok(Some(acc))
    } else {
        let mut w = MessageWriter::with_capacity(8 + data.len() * 8);
        w.put_f64_slice(data);
        ep.send(root, w.finish())?;
        Ok(None)
    }
}

/// First byte of an all-reduce result frame: the payload is the sum.
const TAG_DATA: u8 = 0;
/// First byte of an all-reduce result frame: a contributor died; the
/// payload is its rank as a little-endian `u64`.
const TAG_ABORT: u8 = 1;

/// All-reduce: every rank returns the element-wise sum.
///
/// Partial-failure contract: if a contributor's endpoint is gone, the
/// root detects it, broadcasts an abort frame naming the dead rank to
/// the remaining live ranks, and *every* survivor (root included)
/// returns `CommError::Disconnected { peer: dead }` — no rank hangs.
pub fn allreduce_sum_f64(ep: &Endpoint, data: &[f64]) -> Result<Vec<f64>, CommError> {
    let _obs = CollectiveObs::open();
    let root = 0;
    if ep.rank() == root {
        let mut acc = data.to_vec();
        let mut dead: Option<usize> = None;
        for r in 1..ep.size() {
            match ep.recv(r) {
                Ok(bytes) => {
                    let mut reader = MessageReader::new(&bytes);
                    let contrib = reader.get_f64_slice()?;
                    reader.finish()?;
                    if contrib.len() != acc.len() {
                        return Err(CommError::Malformed {
                            reason: format!(
                                "allreduce length mismatch: root has {}, rank {r} sent {}",
                                acc.len(),
                                contrib.len()
                            ),
                        });
                    }
                    for (a, c) in acc.iter_mut().zip(&contrib) {
                        *a += c;
                    }
                }
                Err(CommError::Disconnected { peer }) => {
                    dead = Some(peer);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        let frame = match dead {
            None => {
                let mut w = MessageWriter::with_capacity(1 + 8 + acc.len() * 8);
                let mut bytes = vec![TAG_DATA];
                w.put_f64_slice(&acc);
                bytes.extend_from_slice(&w.finish());
                bytes
            }
            Some(d) => {
                mmsb_obs::counter_add(obs_id::C_COMM_ABORTS, 1);
                let mut bytes = vec![TAG_ABORT];
                bytes.extend_from_slice(&(d as u64).to_le_bytes());
                bytes
            }
        };
        // Best-effort delivery to whoever is still there: a rank that
        // died mid-collective must not strand the others.
        for r in 1..ep.size() {
            if ep.is_alive(r) {
                let _ = ep.send(r, frame.clone());
            }
        }
        match dead {
            None => Ok(acc),
            Some(d) => Err(CommError::Disconnected { peer: d }),
        }
    } else {
        let mut w = MessageWriter::with_capacity(8 + data.len() * 8);
        w.put_f64_slice(data);
        ep.send(root, w.finish())?;
        let bytes = ep.recv(root)?;
        match bytes.split_first() {
            Some((&TAG_DATA, rest)) => {
                let mut reader = MessageReader::new(rest);
                let out = reader.get_f64_slice()?;
                reader.finish()?;
                Ok(out)
            }
            Some((&TAG_ABORT, rest)) => {
                let d: [u8; 8] = rest.try_into().map_err(|_| CommError::Malformed {
                    reason: "short abort frame".into(),
                })?;
                Err(CommError::Disconnected {
                    peer: u64::from_le_bytes(d) as usize,
                })
            }
            _ => Err(CommError::Malformed {
                reason: "allreduce frame missing tag".into(),
            }),
        }
    }
}

/// Scatter per-rank byte payloads from `root`; every rank (including the
/// root) returns its own slice. `parts` is only inspected at the root and
/// must contain exactly `size` entries there.
pub fn scatter_bytes(
    ep: &Endpoint,
    root: usize,
    parts: Option<Vec<Vec<u8>>>,
) -> Result<Vec<u8>, CommError> {
    let _obs = CollectiveObs::open();
    if ep.rank() == root {
        let parts = parts.ok_or_else(|| CommError::Malformed {
            reason: "scatter root called without parts".into(),
        })?;
        if parts.len() != ep.size() {
            return Err(CommError::Malformed {
                reason: format!("scatter needs {} parts, got {}", ep.size(), parts.len()),
            });
        }
        let mut mine = Vec::new();
        for (r, part) in parts.into_iter().enumerate() {
            if r == root {
                mine = part;
            } else {
                ep.send(r, part)?;
            }
        }
        Ok(mine)
    } else {
        ep.recv(root)
    }
}

/// Gather per-rank byte payloads at `root`; the root returns all payloads
/// indexed by rank, others return `None`.
pub fn gather_bytes(
    ep: &Endpoint,
    root: usize,
    data: Vec<u8>,
) -> Result<Option<Vec<Vec<u8>>>, CommError> {
    let _obs = CollectiveObs::open();
    if ep.rank() == root {
        let mut all: Vec<Vec<u8>> = vec![Vec::new(); ep.size()];
        all[root] = data;
        for (r, slot) in all.iter_mut().enumerate() {
            if r != root {
                *slot = ep.recv(r)?;
            }
        }
        Ok(Some(all))
    } else {
        ep.send(root, data)?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocalCluster;
    use std::thread;

    /// Run `f` on every rank of a fresh cluster and collect results by rank.
    fn run_spmd<T: Send + 'static>(
        ranks: usize,
        f: impl Fn(&Endpoint) -> T + Send + Sync + 'static,
    ) -> Vec<T> {
        let f = std::sync::Arc::new(f);
        let handles: Vec<_> = LocalCluster::spawn(ranks)
            .into_iter()
            .map(|ep| {
                let f = std::sync::Arc::clone(&f);
                thread::spawn(move || f(&ep))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let results = run_spmd(4, |ep| {
            let data = if ep.rank() == 1 { vec![9, 9, 9] } else { vec![] };
            broadcast_bytes(ep, 1, data).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![9, 9, 9]);
        }
    }

    #[test]
    fn reduce_sums_elementwise() {
        let results = run_spmd(5, |ep| {
            let mine = vec![ep.rank() as f64, 1.0];
            reduce_sum_f64(ep, 0, &mine).unwrap()
        });
        assert_eq!(results[0], Some(vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]));
        for r in &results[1..] {
            assert!(r.is_none());
        }
    }

    #[test]
    fn allreduce_gives_everyone_the_sum() {
        let results = run_spmd(3, |ep| {
            allreduce_sum_f64(ep, &[(ep.rank() + 1) as f64]).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![6.0]);
        }
    }

    #[test]
    fn scatter_routes_parts() {
        let results = run_spmd(3, |ep| {
            let parts = if ep.rank() == 0 {
                Some(vec![vec![0], vec![1], vec![2]])
            } else {
                None
            };
            scatter_bytes(ep, 0, parts).unwrap()
        });
        for (rank, part) in results.into_iter().enumerate() {
            assert_eq!(part, vec![rank as u8]);
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = run_spmd(4, |ep| {
            gather_bytes(ep, 2, vec![ep.rank() as u8; 2]).unwrap()
        });
        let at_root = results[2].as_ref().unwrap();
        for (rank, payload) in at_root.iter().enumerate() {
            assert_eq!(payload, &vec![rank as u8; 2]);
        }
        assert!(results[0].is_none());
    }

    #[test]
    fn reduce_length_mismatch_is_detected() {
        let results = run_spmd(2, |ep| {
            let mine = vec![0.0; 2 + ep.rank()]; // rank 1 sends longer vector
            reduce_sum_f64(ep, 0, &mine)
        });
        assert!(matches!(
            &results[0],
            Err(CommError::Malformed { .. })
        ));
    }

    #[test]
    fn single_rank_collectives_degenerate() {
        let results = run_spmd(1, |ep| {
            let b = broadcast_bytes(ep, 0, vec![1]).unwrap();
            let r = reduce_sum_f64(ep, 0, &[2.0]).unwrap().unwrap();
            let a = allreduce_sum_f64(ep, &[3.0]).unwrap();
            let s = scatter_bytes(ep, 0, Some(vec![vec![4]])).unwrap();
            (b, r, a, s)
        });
        let (b, r, a, s) = &results[0];
        assert_eq!(b, &vec![1]);
        assert_eq!(r, &vec![2.0]);
        assert_eq!(a, &vec![3.0]);
        assert_eq!(s, &vec![4]);
    }
}
