//! Threaded in-process communicator.
//!
//! [`LocalCluster::spawn`] wires up `R` endpoints with a full mesh of
//! unbounded channels plus a shared barrier — the transport the distributed
//! sampler's *functional* tests run on. Each endpoint is `Send` and is
//! meant to be moved into its rank's thread.

use crate::CommError;
use mmsb_obs::clock::Stopwatch;
use mmsb_obs::id as obs_id;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// How often a blocked `recv` re-checks peer liveness and its deadline.
const LIVENESS_POLL: Duration = Duration::from_millis(1);

/// One rank's handle to the cluster.
pub struct Endpoint {
    rank: usize,
    size: usize,
    /// `senders[to]` transmits to rank `to` (index `rank` sends to self —
    /// allowed, and used by root-centric collectives for uniformity). The
    /// source rank is stamped on each payload at send time.
    senders: Vec<Sender<(usize, Vec<u8>)>>,
    receiver: Receiver<(usize, Vec<u8>)>,
    barrier: Arc<Barrier>,
    /// Out-of-order messages parked until a matching `recv` asks for them.
    pending: std::cell::RefCell<Vec<(usize, Vec<u8>)>>,
    /// `alive[r]` is cleared when rank `r`'s endpoint drops. Because every
    /// endpoint holds sender clones for the whole mesh, a dead peer's
    /// channel never disconnects on its own — this registry is how a
    /// blocked `recv` learns its peer is gone instead of hanging forever.
    alive: Arc<Vec<AtomicBool>>,
    /// Optional per-`recv` deadline (a collective's per-stage timeout).
    /// `None` waits until the peer delivers or dies.
    deadline: std::cell::Cell<Option<Duration>>,
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.alive[self.rank].store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

/// Factory for connected endpoint sets.
pub struct LocalCluster;

impl LocalCluster {
    /// Create `ranks` fully connected endpoints.
    ///
    /// # Panics
    /// Panics if `ranks == 0`.
    pub fn spawn(ranks: usize) -> Vec<Endpoint> {
        assert!(ranks > 0, "cluster needs at least one rank");
        // Per-destination channel carrying (source, payload).
        let mut senders_by_dest: Vec<Sender<(usize, Vec<u8>)>> = Vec::with_capacity(ranks);
        let mut receivers: Vec<Receiver<(usize, Vec<u8>)>> = Vec::with_capacity(ranks);
        for _ in 0..ranks {
            let (tx, rx) = channel();
            senders_by_dest.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(Barrier::new(ranks));
        let alive: Arc<Vec<AtomicBool>> =
            Arc::new((0..ranks).map(|_| AtomicBool::new(true)).collect());
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Endpoint {
                rank,
                size: ranks,
                senders: senders_by_dest.clone(),
                receiver,
                barrier: Arc::clone(&barrier),
                pending: std::cell::RefCell::new(Vec::new()),
                alive: Arc::clone(&alive),
                deadline: std::cell::Cell::new(None),
            })
            .collect()
    }
}

impl Endpoint {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Cluster size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to rank `to`.
    pub fn send(&self, to: usize, payload: Vec<u8>) -> Result<(), CommError> {
        let sender = self
            .senders
            .get(to)
            .ok_or(CommError::RankOutOfRange {
                rank: to,
                size: self.size,
            })?;
        sender
            .send((self.rank, payload))
            .map_err(|_| CommError::Disconnected { peer: to })?;
        mmsb_obs::counter_add(obs_id::C_COMM_SENDS, 1);
        Ok(())
    }

    /// Whether rank `r`'s endpoint is still alive (not yet dropped).
    pub fn is_alive(&self, r: usize) -> bool {
        r < self.size && self.alive[r].load(Ordering::Acquire)
    }

    /// Set the per-`recv` deadline. `Some(d)`: a `recv` that waits longer
    /// than `d` on a *live* peer fails with [`CommError::Timeout`] (the
    /// collective layer's per-stage timeout). `None` (the default): wait
    /// until the peer delivers or dies.
    pub fn set_timeout(&self, deadline: Option<Duration>) {
        self.deadline.set(deadline);
    }

    /// Receive the next message *from rank `from`*, blocking. Messages from
    /// other ranks that arrive first are buffered for later matching
    /// `recv` calls (MPI source-matching semantics).
    ///
    /// A wait on a dead peer fails with [`CommError::Disconnected`] once
    /// everything the peer sent before dying has been consumed — it never
    /// hangs. With a deadline set ([`Endpoint::set_timeout`]), a wait on a
    /// live-but-silent peer fails with [`CommError::Timeout`].
    pub fn recv(&self, from: usize) -> Result<Vec<u8>, CommError> {
        if from >= self.size {
            return Err(CommError::RankOutOfRange {
                rank: from,
                size: self.size,
            });
        }
        // Check the park buffer first. `remove` (not `swap_remove`):
        // per-source FIFO order must survive parking, otherwise a fast
        // sender's later message can overtake its earlier one.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(i) = pending.iter().position(|(src, _)| *src == from) {
                mmsb_obs::counter_add(obs_id::C_COMM_RECVS, 1);
                return Ok(pending.remove(i).1);
            }
        }
        let start = Stopwatch::start();
        loop {
            match self.receiver.recv_timeout(LIVENESS_POLL) {
                Ok((src, payload)) => {
                    if src == from {
                        mmsb_obs::counter_add(obs_id::C_COMM_RECVS, 1);
                        return Ok(payload);
                    }
                    self.pending.borrow_mut().push((src, payload));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { peer: from });
                }
                Err(RecvTimeoutError::Timeout) => {
                    if !self.alive[from].load(Ordering::Acquire) {
                        // The peer died — but it may have delivered the
                        // message between our poll and the liveness read,
                        // so drain the channel before giving up.
                        while let Ok((src, payload)) = self.receiver.try_recv() {
                            if src == from {
                                mmsb_obs::counter_add(obs_id::C_COMM_RECVS, 1);
                                return Ok(payload);
                            }
                            self.pending.borrow_mut().push((src, payload));
                        }
                        return Err(CommError::Disconnected { peer: from });
                    }
                    if let Some(d) = self.deadline.get() {
                        if start.elapsed_secs() >= d.as_secs_f64() {
                            mmsb_obs::counter_add(obs_id::C_COMM_TIMEOUTS, 1);
                            return Err(CommError::Timeout { peer: from });
                        }
                    }
                }
            }
        }
    }

    /// Receive from any rank, returning `(source, payload)`.
    pub fn recv_any(&self) -> Result<(usize, Vec<u8>), CommError> {
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(item) = pending.pop() {
                return Ok(item);
            }
        }
        self.receiver
            .recv()
            .map_err(|_| CommError::Disconnected { peer: self.size })
    }

    /// Block until every rank has entered the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_roundtrip() {
        let mut eps = LocalCluster::spawn(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let t = thread::spawn(move || {
            a.send(1, vec![42, 43]).unwrap();
            a.recv(1).unwrap()
        });
        let got = b.recv(0).unwrap();
        assert_eq!(got, vec![42, 43]);
        b.send(0, vec![7]).unwrap();
        assert_eq!(t.join().unwrap(), vec![7]);
    }

    #[test]
    fn source_matching_buffers_out_of_order() {
        let mut eps = LocalCluster::spawn(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let ta = thread::spawn(move || a.send(2, vec![0xA]).unwrap());
        let tb = thread::spawn(move || b.send(2, vec![0xB]).unwrap());
        ta.join().unwrap();
        tb.join().unwrap();
        // Ask for rank 1's message first even if rank 0's arrived earlier.
        assert_eq!(c.recv(1).unwrap(), vec![0xB]);
        assert_eq!(c.recv(0).unwrap(), vec![0xA]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let eps = LocalCluster::spawn(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    ep.barrier();
                    // After the barrier everyone must observe all 4 arrivals.
                    counter.load(Ordering::SeqCst)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
    }

    #[test]
    fn send_to_bad_rank_errors() {
        let eps = LocalCluster::spawn(2);
        assert!(matches!(
            eps[0].send(5, vec![]),
            Err(CommError::RankOutOfRange { rank: 5, size: 2 })
        ));
        assert!(matches!(
            eps[0].recv(9),
            Err(CommError::RankOutOfRange { rank: 9, .. })
        ));
    }

    #[test]
    fn self_send_works() {
        let eps = LocalCluster::spawn(1);
        eps[0].send(0, vec![1, 2, 3]).unwrap();
        assert_eq!(eps[0].recv(0).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn per_source_fifo_survives_parking() {
        // Regression: with >= 3 messages from one source parked behind a
        // message from another source, swap_remove-based buffering used to
        // invert the order of the same-source messages.
        let mut eps = LocalCluster::spawn(3);
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let ta = thread::spawn(move || {
            for i in 0..5u8 {
                a.send(2, vec![i]).unwrap();
            }
        });
        let tb = thread::spawn(move || b.send(2, vec![0xBB]).unwrap());
        ta.join().unwrap();
        tb.join().unwrap();
        // Park everything by asking for rank 1 first.
        assert_eq!(c.recv(1).unwrap(), vec![0xBB]);
        for i in 0..5u8 {
            assert_eq!(c.recv(0).unwrap(), vec![i], "message {i} out of order");
        }
    }

    #[test]
    fn recv_any_returns_something() {
        let mut eps = LocalCluster::spawn(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        thread::spawn(move || a.send(1, vec![9]).unwrap())
            .join()
            .unwrap();
        let (src, payload) = b.recv_any().unwrap();
        assert_eq!(src, 0);
        assert_eq!(payload, vec![9]);
    }
}
