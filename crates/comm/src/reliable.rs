//! Reliable delivery over a lossy fabric: stop-and-wait ARQ.
//!
//! [`ReliableEndpoint`] wraps an [`Endpoint`] and a [`FaultPlan`]: every
//! point-to-point send is stamped with a per-destination sequence number
//! and retransmitted until the receiver acknowledges it, and the receiver
//! de-duplicates by a per-source high-water mark — so the application
//! sees exactly-once, in-order delivery even when the plan drops,
//! duplicates, or delays frames. The concurrency core of this protocol
//! (the ack/timeout race, duplicate suppression) is the
//! `mmsb_pool::retry::ReliableLinkIn` handshake, which `mmsb-check`
//! model-checks on its deterministic scheduler; this module is the wire
//! instantiation of the same design.
//!
//! Injected faults are *modeled* at the send site: a "dropped" frame is
//! simply never put on the channel, a "duplicated" frame is sent twice,
//! and a "delayed" frame is sent once with its extra in-flight time
//! accumulated into the [`SendReport`] — the caller charges that to the
//! virtual clocks, keeping wall-clock test time independent of the
//! modeled delay.

use crate::{CommError, Endpoint};
use mmsb_netsim::{FaultPlan, MsgFault, RecoveryPolicy};
use std::cell::RefCell;
use std::time::Duration;

/// Frame tag: an application payload.
const TAG_MSG: u8 = 2;
/// Frame tag: an acknowledgment.
const TAG_ACK: u8 = 3;

/// What one reliable send cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendReport {
    /// Transmissions performed (1 = delivered first try).
    pub attempts: u32,
    /// Modeled extra seconds: retransmission timeouts, backoff, and
    /// injected delivery delays.
    pub recovery_seconds: f64,
}

/// An [`Endpoint`] with at-least-once retransmission and receive-side
/// de-duplication, yielding exactly-once in-order payload delivery.
pub struct ReliableEndpoint {
    ep: Endpoint,
    plan: FaultPlan,
    policy: RecoveryPolicy,
    /// Next sequence number per destination (starts at 1).
    next_seq: RefCell<Vec<u64>>,
    /// Highest delivered sequence number per source.
    watermark: RefCell<Vec<u64>>,
    /// Payload frames that arrived while we were waiting for an ack.
    parked: RefCell<Vec<(usize, u64, Vec<u8>)>>,
    /// Real wall-clock the sender waits for an ack before retransmitting.
    ack_wait: Duration,
}

impl ReliableEndpoint {
    /// Wrap `ep`. The plan decides which transmissions the fabric loses;
    /// the policy bounds retries and prices the backoff.
    pub fn new(ep: Endpoint, plan: FaultPlan, policy: RecoveryPolicy) -> Self {
        let size = ep.size();
        Self {
            ep,
            plan,
            policy,
            next_seq: RefCell::new(vec![1; size]),
            watermark: RefCell::new(vec![0; size]),
            parked: RefCell::new(Vec::new()),
            ack_wait: Duration::from_millis(20),
        }
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.ep
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.ep.rank()
    }

    /// Cluster size.
    pub fn size(&self) -> usize {
        self.ep.size()
    }

    fn frame_msg(seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::with_capacity(9 + payload.len());
        f.push(TAG_MSG);
        f.extend_from_slice(&seq.to_le_bytes());
        f.extend_from_slice(payload);
        f
    }

    fn parse(bytes: &[u8]) -> Result<(u8, u64, &[u8]), CommError> {
        let (&tag, rest) = bytes.split_first().ok_or_else(|| CommError::Malformed {
            reason: "empty frame".into(),
        })?;
        if rest.len() < 8 {
            return Err(CommError::Malformed {
                reason: "frame missing sequence number".into(),
            });
        }
        let (seq, payload) = rest.split_at(8);
        let seq = u64::from_le_bytes(seq.try_into().expect("8 bytes"));
        Ok((tag, seq, payload))
    }

    /// One transmission of `(seq, payload)` to `to`, with the plan's
    /// fabric fault applied. Returns the modeled extra seconds.
    fn transmit(&self, to: usize, seq: u64, payload: &[u8], attempt: u32) -> f64 {
        // The attempt folds into the fault coordinate so a retransmission
        // draws a fresh fate instead of inheriting the original drop.
        let coord = seq.wrapping_mul(64).wrapping_add(attempt as u64);
        match self.plan.message_fault(self.ep.rank(), to, coord) {
            Some(MsgFault::Drop) => 0.0, // the fabric ate it
            Some(MsgFault::Duplicate) => {
                let frame = Self::frame_msg(seq, payload);
                let _ = self.ep.send(to, frame.clone());
                let _ = self.ep.send(to, frame);
                0.0
            }
            Some(MsgFault::Delay(secs)) => {
                let _ = self.ep.send(to, Self::frame_msg(seq, payload));
                secs
            }
            None => {
                let _ = self.ep.send(to, Self::frame_msg(seq, payload));
                0.0
            }
        }
    }

    /// Send `payload` to `to` reliably: transmit, await the ack for up to
    /// [`Self::ack_wait`], retransmit up to the policy's retry budget.
    ///
    /// Payload frames from `to` that arrive while waiting are parked for
    /// a later [`ReliableEndpoint::recv`] — two ranks may send to each
    /// other concurrently without deadlocking.
    pub fn send(&self, to: usize, payload: &[u8]) -> Result<SendReport, CommError> {
        let seq = {
            let mut seqs = self.next_seq.borrow_mut();
            let s = seqs[to];
            seqs[to] += 1;
            s
        };
        let site = ((self.ep.rank() as u64) << 32) ^ (to as u64) ^ seq.rotate_left(17);
        let mut recovery = 0.0;
        for attempt in 0..=self.policy.max_retries {
            recovery += self.transmit(to, seq, payload, attempt);
            if self.await_ack(to, seq)? {
                return Ok(SendReport {
                    attempts: attempt + 1,
                    recovery_seconds: recovery,
                });
            }
            // Timed out: model the wait plus the backoff before retrying.
            recovery += self.policy.stage_timeout + self.policy.backoff(&self.plan, site, attempt);
        }
        Err(CommError::Timeout { peer: to })
    }

    /// Wait up to `ack_wait` for the ack of `(to, seq)`, parking payload
    /// frames and re-acking duplicates as they arrive. `Ok(false)` means
    /// the wait timed out and the caller should retransmit.
    fn await_ack(&self, to: usize, seq: u64) -> Result<bool, CommError> {
        self.ep.set_timeout(Some(self.ack_wait));
        let acked = loop {
            match self.ep.recv(to) {
                Ok(bytes) => {
                    let (tag, got_seq, payload) = Self::parse(&bytes)?;
                    match tag {
                        TAG_ACK if got_seq >= seq => break true,
                        TAG_ACK => {} // stale ack of an earlier message
                        TAG_MSG => self.park_or_ack(to, got_seq, payload),
                        t => {
                            self.ep.set_timeout(None);
                            return Err(CommError::Malformed {
                                reason: format!("unknown frame tag {t}"),
                            });
                        }
                    }
                }
                Err(CommError::Timeout { .. }) => break false,
                Err(e) => {
                    self.ep.set_timeout(None);
                    return Err(e);
                }
            }
        };
        self.ep.set_timeout(None);
        Ok(acked)
    }

    /// Handle an incoming payload frame from `from`: ack it, and park it
    /// for `recv` unless it is a duplicate of something already consumed.
    fn park_or_ack(&self, from: usize, seq: u64, payload: &[u8]) {
        let wm = self.watermark.borrow_mut();
        let duplicate = seq <= wm[from]
            || self
                .parked
                .borrow()
                .iter()
                .any(|&(src, s, _)| src == from && s == seq);
        let mut ack = Vec::with_capacity(9);
        ack.push(TAG_ACK);
        ack.extend_from_slice(&seq.to_le_bytes());
        let _ = self.ep.send(from, ack);
        if !duplicate {
            // Parking, not consuming: the watermark advances in `recv`.
            drop(wm);
            self.parked.borrow_mut().push((from, seq, payload.to_vec()));
        }
    }

    /// Receive the next payload from `from` — exactly once, in order.
    pub fn recv(&self, from: usize) -> Result<Vec<u8>, CommError> {
        let expected = self.watermark.borrow()[from] + 1;
        loop {
            // A frame parked during an ack wait may already be the one.
            {
                let mut parked = self.parked.borrow_mut();
                if let Some(i) = parked
                    .iter()
                    .position(|&(src, seq, _)| src == from && seq == expected)
                {
                    let (_, seq, payload) = parked.remove(i);
                    drop(parked);
                    self.watermark.borrow_mut()[from] = seq;
                    return Ok(payload);
                }
            }
            let bytes = self.ep.recv(from)?;
            let (tag, seq, payload) = Self::parse(&bytes)?;
            match tag {
                TAG_MSG => {
                    let mut ack = Vec::with_capacity(9);
                    ack.push(TAG_ACK);
                    ack.extend_from_slice(&seq.to_le_bytes());
                    let _ = self.ep.send(from, ack);
                    if seq == expected {
                        self.watermark.borrow_mut()[from] = seq;
                        return Ok(payload.to_vec());
                    }
                    // Duplicate (or stale) frame: acked above, dropped here.
                }
                TAG_ACK => {} // ack for a send of ours that already gave up waiting
                t => {
                    return Err(CommError::Malformed {
                        reason: format!("unknown frame tag {t}"),
                    })
                }
            }
        }
    }
}

impl std::fmt::Debug for ReliableEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReliableEndpoint")
            .field("rank", &self.ep.rank())
            .field("size", &self.ep.size())
            .finish()
    }
}
