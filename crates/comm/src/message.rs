//! Wire encoding for sampler payloads.
//!
//! Messages are flat byte vectors with little-endian scalar encoding — the
//! same layout an RDMA NIC would DMA. A [`MessageWriter`] appends typed
//! sections; a [`MessageReader`] consumes them in order, validating
//! lengths so a malformed (truncated, reordered) message surfaces as a
//! [`CommError::Malformed`] instead of garbage floats.

use crate::CommError;

/// Append-only message encoder.
#[derive(Debug, Default, Clone)]
pub struct MessageWriter {
    buf: Vec<u8>,
}

impl MessageWriter {
    /// Start an empty message.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start with a capacity hint (bytes).
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
        }
    }

    /// Append one `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append one `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append one `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) -> &mut Self {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, vs: &[f32]) -> &mut Self {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, vs: &[f64]) -> &mut Self {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Finish, yielding the wire bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Sequential message decoder.
#[derive(Debug)]
pub struct MessageReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> MessageReader<'a> {
    /// Wrap received bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CommError> {
        if self.pos + n > self.buf.len() {
            return Err(CommError::Malformed {
                reason: format!(
                    "need {n} bytes at offset {}, message is {} bytes",
                    self.pos,
                    self.buf.len()
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CommError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read one `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CommError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read one `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CommError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_len(&mut self) -> Result<usize, CommError> {
        let len = self.get_u64()?;
        usize::try_from(len).map_err(|_| CommError::Malformed {
            reason: format!("slice length {len} exceeds usize"),
        })
    }

    /// Read a length-prefixed `u32` slice.
    pub fn get_u32_slice(&mut self) -> Result<Vec<u32>, CommError> {
        let len = self.get_len()?;
        let bytes = self.take(len * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a length-prefixed `f32` slice.
    pub fn get_f32_slice(&mut self) -> Result<Vec<f32>, CommError> {
        let len = self.get_len()?;
        let bytes = self.take(len * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a length-prefixed `f64` slice.
    pub fn get_f64_slice(&mut self) -> Result<Vec<f64>, CommError> {
        let len = self.get_len()?;
        let bytes = self.take(len * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Assert the whole message was consumed.
    pub fn finish(self) -> Result<(), CommError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CommError::Malformed {
                reason: format!("{} trailing bytes", self.buf.len() - self.pos),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = MessageWriter::new();
        w.put_u32(7)
            .put_u64(1 << 40)
            .put_f64(std::f64::consts::PI)
            .put_u32_slice(&[1, 2, 3])
            .put_f32_slice(&[0.5, -0.25])
            .put_f64_slice(&[1e300]);
        let bytes = w.finish();

        let mut r = MessageReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_u32_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_f32_slice().unwrap(), vec![0.5, -0.25]);
        assert_eq!(r.get_f64_slice().unwrap(), vec![1e300]);
        r.finish().unwrap();
    }

    #[test]
    fn empty_slices_roundtrip() {
        let mut w = MessageWriter::new();
        w.put_f32_slice(&[]);
        let bytes = w.finish();
        let mut r = MessageReader::new(&bytes);
        assert!(r.get_f32_slice().unwrap().is_empty());
        r.finish().unwrap();
    }

    #[test]
    fn truncated_message_errors() {
        let mut w = MessageWriter::new();
        w.put_f64_slice(&[1.0, 2.0]);
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 3);
        let mut r = MessageReader::new(&bytes);
        assert!(matches!(
            r.get_f64_slice(),
            Err(CommError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = MessageWriter::new();
        w.put_u32(1).put_u32(2);
        let bytes = w.finish();
        let mut r = MessageReader::new(&bytes);
        r.get_u32().unwrap();
        assert!(matches!(r.finish(), Err(CommError::Malformed { .. })));
    }

    #[test]
    fn reading_past_end_errors() {
        let mut r = MessageReader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
    }

    #[test]
    fn capacity_and_len() {
        let mut w = MessageWriter::with_capacity(64);
        assert!(w.is_empty());
        w.put_u32(5);
        assert_eq!(w.len(), 4);
    }
}
