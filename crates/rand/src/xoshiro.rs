//! xoshiro256++ 1.0 — the workspace's workhorse generator.
//!
//! Reference implementation by David Blackman and Sebastiano Vigna
//! (public domain, <https://prng.di.unimi.it/xoshiro256plusplus.c>).
//! 256 bits of state, period 2^256 − 1, passes BigCrush.

use crate::{RngCore, SplitMix64};

/// xoshiro256++ generator.
///
/// Supports `jump()` (advance by 2^128 steps) and `long_jump()` (2^192
/// steps) so that each rank / thread of the distributed sampler can own a
/// provably non-overlapping substream derived from one master seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seed from a single `u64` by expanding it through [`SplitMix64`],
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros for any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Seed directly from raw state words.
    ///
    /// # Panics
    /// Panics if all four words are zero (the single invalid state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256++ state must not be all zero");
        Self { s }
    }

    /// The raw state words. `from_state(state())` reproduces the
    /// generator exactly — the checkpoint/restore path relies on this.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// A generator for stream `stream` of a master `seed`: seeds once, then
    /// applies `jump()` `stream` times. Streams are guaranteed disjoint for
    /// fewer than 2^128 draws each.
    pub fn stream(seed: u64, stream: u64) -> Self {
        let mut rng = Self::seed_from_u64(seed);
        for _ in 0..stream {
            rng.jump();
        }
        rng
    }

    #[inline]
    fn advance(&mut self, table: [u64; 4]) {
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for jump in table {
            for b in 0..64 {
                if jump & (1u64 << b) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Advance the state by 2^128 steps (equivalent to that many
    /// `next_u64` calls).
    pub fn jump(&mut self) {
        self.advance([
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_6F18_4428_0FDE,
            0x3982_0797_44A7_F215,
        ]);
    }

    /// Advance the state by 2^192 steps.
    pub fn long_jump(&mut self) {
        self.advance([
            0x7674_3CAC_D2ED_1B4C,
            0x0B1A_F97F_7C7B_712E,
            0x8F71_3369_9B6F_05E3,
            0x4FBF_1A4A_0424_A2B6,
        ]);
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn matches_reference_vectors() {
        // First outputs for state {1,2,3,4} from the reference C code.
        let mut r = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected = [41943041u64, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn zero_state_rejected() {
        Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let base = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut a = base.clone();
        let mut b = base.clone();
        b.jump();
        let xs: Vec<u64> = (0..1000).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..1000).map(|_| b.next_u64()).collect();
        let overlap = xs.iter().filter(|x| ys.contains(x)).count();
        assert_eq!(overlap, 0, "jumped stream overlaps base stream");
    }

    #[test]
    fn streams_are_distinct_and_reproducible() {
        let mut s0 = Xoshiro256PlusPlus::stream(5, 0);
        let mut s1 = Xoshiro256PlusPlus::stream(5, 1);
        let mut s1b = Xoshiro256PlusPlus::stream(5, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        assert_eq!(s1.next_u64(), {
            s1b.next_u64();
            s1b.next_u64()
        });
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256PlusPlus::seed_from_u64(3);
        let mut a = base.clone();
        let mut b = base.clone();
        a.jump();
        b.long_jump();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..17 {
            r.next_u64();
        }
        let mut resumed = Xoshiro256PlusPlus::from_state(r.state());
        for _ in 0..100 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
    }
}
