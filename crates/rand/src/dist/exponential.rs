//! Exponential distribution via inverse-CDF sampling.

use super::{check_positive, DistError, Sample};
use crate::{Rng, RngCore};

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used by the network simulator to draw message-service jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Construct with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        check_positive("lambda", lambda)?;
        Ok(Self { lambda })
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Sample for Exponential {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -rng.next_f64_open().ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{moments, rng};
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-2.0).is_err());
    }

    #[test]
    fn positive_and_finite() {
        let mut r = rng();
        let d = Exponential::new(3.0).unwrap();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn moments_match() {
        let mut r = rng();
        let d = Exponential::new(2.0).unwrap();
        let xs = d.sample_n(&mut r, 200_000);
        let (mean, var) = moments(&xs);
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        assert!((var - 0.25).abs() < 0.01, "var={var}");
    }

    #[test]
    fn memoryless_median() {
        let mut r = rng();
        let d = Exponential::new(1.0).unwrap();
        let below = (0..100_000)
            .filter(|_| d.sample(&mut r) < std::f64::consts::LN_2)
            .count();
        assert!((48_500..51_500).contains(&below), "below={below}");
    }
}
