//! Dirichlet distribution over the probability simplex.

use super::{check_positive, DistError, Gamma, Sample};
use crate::RngCore;

/// Dirichlet distribution with concentration vector `alpha`.
///
/// Samples a point on the `K`-simplex by normalizing `K` independent Gamma
/// draws — the same expanded-mean re-parameterization SGRLD exploits
/// (`pi_k = theta_k / sum_j theta_j` with `theta_k ~ Gamma(alpha_k, 1)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    gammas: Vec<Gamma>,
}

impl Dirichlet {
    /// Construct from a full concentration vector (all entries `> 0`).
    pub fn new(alpha: &[f64]) -> Result<Self, DistError> {
        if alpha.is_empty() {
            return Err(DistError::EmptyConcentration);
        }
        let gammas = alpha
            .iter()
            .map(|&a| {
                check_positive("alpha[i]", a)?;
                Gamma::new(a, 1.0)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { gammas })
    }

    /// Symmetric Dirichlet with `k` components all equal to `alpha` — the
    /// paper's `Dirichlet(alpha)` membership prior.
    pub fn symmetric(alpha: f64, k: usize) -> Result<Self, DistError> {
        if k == 0 {
            return Err(DistError::EmptyConcentration);
        }
        check_positive("alpha", alpha)?;
        let g = Gamma::new(alpha, 1.0)?;
        Ok(Self {
            gammas: vec![g; k],
        })
    }

    /// Dimensionality of the simplex.
    pub fn k(&self) -> usize {
        self.gammas.len()
    }

    /// Draw one point on the simplex.
    pub fn sample_simplex<R: RngCore + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        loop {
            let mut draws: Vec<f64> = self.gammas.iter().map(|g| g.sample(rng)).collect();
            let sum: f64 = draws.iter().sum();
            if sum > 0.0 && sum.is_finite() {
                for d in &mut draws {
                    *d /= sum;
                }
                return draws;
            }
        }
    }

    /// Draw one point into a preallocated buffer (hot-path variant).
    ///
    /// # Panics
    /// Panics if `out.len() != self.k()`.
    pub fn sample_into<R: RngCore + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        assert_eq!(out.len(), self.k(), "output buffer has wrong dimension");
        loop {
            let mut sum = 0.0;
            for (slot, g) in out.iter_mut().zip(&self.gammas) {
                let x = g.sample(rng);
                *slot = x;
                sum += x;
            }
            if sum > 0.0 && sum.is_finite() {
                for slot in out.iter_mut() {
                    *slot /= sum;
                }
                return;
            }
        }
    }
}

impl Sample for Dirichlet {
    /// Marginal sample: the first coordinate of a simplex draw
    /// (distributed `Beta(alpha_1, sum_{j>1} alpha_j)`).
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_simplex(rng)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::rng;
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Dirichlet::new(&[]).is_err());
        assert!(Dirichlet::new(&[1.0, 0.0]).is_err());
        assert!(Dirichlet::symmetric(1.0, 0).is_err());
        assert!(Dirichlet::symmetric(-1.0, 3).is_err());
    }

    #[test]
    fn samples_lie_on_simplex() {
        let mut r = rng();
        let d = Dirichlet::symmetric(0.5, 8).unwrap();
        for _ in 0..1000 {
            let p = d.sample_simplex(&mut r);
            assert_eq!(p.len(), 8);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "sum={sum}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn marginal_means_match_concentration() {
        let mut r = rng();
        let alpha = [1.0, 2.0, 7.0];
        let d = Dirichlet::new(&alpha).unwrap();
        let n = 100_000;
        let mut acc = [0.0f64; 3];
        for _ in 0..n {
            let p = d.sample_simplex(&mut r);
            for (a, x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
        }
        let total: f64 = alpha.iter().sum();
        for (i, a) in acc.iter().enumerate() {
            let mean = a / n as f64;
            let expected = alpha[i] / total;
            assert!((mean - expected).abs() < 0.005, "i={i} mean={mean}");
        }
    }

    #[test]
    fn sample_into_matches_dimension() {
        let mut r = rng();
        let d = Dirichlet::symmetric(1.0, 4).unwrap();
        let mut buf = [0.0; 4];
        d.sample_into(&mut r, &mut buf);
        assert!((buf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn sample_into_wrong_len_panics() {
        let mut r = rng();
        let d = Dirichlet::symmetric(1.0, 4).unwrap();
        let mut buf = [0.0; 3];
        d.sample_into(&mut r, &mut buf);
    }

    #[test]
    fn small_alpha_concentrates_on_corners() {
        // With alpha << 1 most mass sits in one coordinate.
        let mut r = rng();
        let d = Dirichlet::symmetric(0.05, 5).unwrap();
        let mut peaked = 0;
        for _ in 0..1000 {
            let p = d.sample_simplex(&mut r);
            if p.iter().cloned().fold(0.0, f64::max) > 0.9 {
                peaked += 1;
            }
        }
        assert!(peaked > 500, "peaked={peaked}");
    }
}
