//! Gamma distribution via the Marsaglia–Tsang squeeze method.

use super::{check_positive, DistError, Normal, Sample};
use crate::{Rng, RngCore};

/// Gamma distribution with shape `alpha` and scale `theta`
/// (mean `alpha * theta`, variance `alpha * theta^2`).
///
/// Sampling uses Marsaglia & Tsang (2000) for `alpha >= 1` and the
/// `alpha < 1` boost `Gamma(alpha) = Gamma(alpha+1) * U^{1/alpha}`.
/// This is the sampler the a-MMSB code uses to initialize `phi` and
/// `theta` (expanded-mean Dirichlet re-parameterization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    alpha: f64,
    theta: f64,
    // Cached Marsaglia-Tsang constants for the (possibly boosted) shape.
    d: f64,
    c: f64,
    boost: bool,
}

impl Gamma {
    /// Construct with shape `alpha > 0` and scale `theta > 0`.
    pub fn new(alpha: f64, theta: f64) -> Result<Self, DistError> {
        check_positive("alpha", alpha)?;
        check_positive("theta", theta)?;
        let boost = alpha < 1.0;
        let shape = if boost { alpha + 1.0 } else { alpha };
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        Ok(Self {
            alpha,
            theta,
            d,
            c,
            boost,
        })
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Scale parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    #[inline]
    fn sample_shape_ge1<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let (x, v) = loop {
                let x = Normal::standard_sample(rng);
                let v = 1.0 + self.c * x;
                if v > 0.0 {
                    break (x, v * v * v);
                }
            };
            let u = rng.next_f64_open();
            // Squeeze check avoids the log most of the time.
            if u < 1.0 - 0.0331 * x * x * x * x {
                return self.d * v;
            }
            if u.ln() < 0.5 * x * x + self.d * (1.0 - v + v.ln()) {
                return self.d * v;
            }
        }
    }
}

impl Sample for Gamma {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let g = self.sample_shape_ge1(rng);
        let g = if self.boost {
            let u = rng.next_f64_open();
            g * u.powf(1.0 / self.alpha)
        } else {
            g
        };
        g * self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{moments, rng};
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-1.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn samples_are_positive() {
        let mut r = rng();
        for alpha in [0.1, 0.5, 1.0, 2.0, 100.0] {
            let g = Gamma::new(alpha, 1.0).unwrap();
            for _ in 0..2000 {
                let x = g.sample(&mut r);
                assert!(x > 0.0 && x.is_finite(), "alpha={alpha} x={x}");
            }
        }
    }

    #[test]
    fn tiny_shape_may_underflow_but_never_goes_negative() {
        // For alpha << 1 the boost factor u^(1/alpha) underflows f64 for
        // most u; the sampler then returns exactly 0.0, which callers
        // (e.g. phi initialization) must clamp. Verify it never produces
        // negative or non-finite values.
        let mut r = rng();
        let g = Gamma::new(0.01, 1.0).unwrap();
        for _ in 0..2000 {
            let x = g.sample(&mut r);
            assert!(x >= 0.0 && x.is_finite(), "x={x}");
        }
    }

    #[test]
    fn moments_shape_ge_1() {
        let mut r = rng();
        for (alpha, theta) in [(1.0, 1.0), (2.5, 1.0), (10.0, 0.5)] {
            let g = Gamma::new(alpha, theta).unwrap();
            let xs = g.sample_n(&mut r, 200_000);
            let (mean, var) = moments(&xs);
            let (em, ev) = (alpha * theta, alpha * theta * theta);
            assert!((mean - em).abs() / em < 0.02, "alpha={alpha} mean={mean}");
            assert!((var - ev).abs() / ev < 0.06, "alpha={alpha} var={var}");
        }
    }

    #[test]
    fn moments_shape_lt_1() {
        let mut r = rng();
        let g = Gamma::new(0.3, 2.0).unwrap();
        let xs = g.sample_n(&mut r, 300_000);
        let (mean, var) = moments(&xs);
        assert!((mean - 0.6).abs() < 0.02, "mean={mean}");
        assert!((var - 1.2).abs() < 0.08, "var={var}");
    }

    #[test]
    fn exponential_special_case() {
        // Gamma(1, theta) is Exponential(1/theta): median = theta * ln 2.
        let mut r = rng();
        let g = Gamma::new(1.0, 1.0).unwrap();
        let mut xs = g.sample_n(&mut r, 100_001);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[50_000];
        assert!((median - std::f64::consts::LN_2).abs() < 0.02, "median={median}");
    }
}
