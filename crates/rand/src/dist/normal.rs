//! Normal (Gaussian) distribution via the Marsaglia polar method.

use super::{check_positive, DistError, Sample};
use crate::{Rng, RngCore};

/// Normal distribution `N(mean, std_dev^2)`.
///
/// Uses the Marsaglia polar method: rejection-free of trig calls and
/// deterministic given the RNG stream. Each `sample` call consumes a
/// variable number of RNG draws (expected ~2.55 `u64`s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Construct with the given mean and standard deviation.
    ///
    /// `std_dev` must be strictly positive (use [`Normal::standard`] plus
    /// scaling if you need a degenerate distribution).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if mean.is_nan() {
            return Err(DistError::NaN { param: "mean" });
        }
        check_positive("std_dev", std_dev)?;
        Ok(Self { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draw one standard-normal variate.
    #[inline]
    pub fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        let (u, s) = Self::standard_accept(rng);
        let factor = (-2.0 * s.ln() / s).sqrt();
        // The polar method yields two independent variates; we keep
        // one to stay stateless (the second would need caching that
        // complicates Clone/Send semantics for negligible gain here).
        u * factor
    }

    /// The rejection half of the polar method: draw until a point lands
    /// inside the unit disk and return its `(u, s = u² + v²)` pair.
    ///
    /// `u * (-2 ln s / s).sqrt()` completes the variate — exactly what
    /// [`standard_sample`](Normal::standard_sample) computes. Splitting
    /// the two halves lets batch callers consume the RNG stream here
    /// (identically to `standard_sample`, draw for draw) and finish the
    /// transcendental part vectorized over the whole batch.
    #[inline]
    pub fn standard_accept<R: RngCore + ?Sized>(rng: &mut R) -> (f64, f64) {
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return (u, s);
            }
        }
    }
}

impl Sample for Normal {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::standard_sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{moments, rng};
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn standard_moments() {
        let mut r = rng();
        let d = Normal::standard();
        let xs = d.sample_n(&mut r, 100_000);
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn shifted_scaled_moments() {
        let mut r = rng();
        let d = Normal::new(3.0, 2.0).unwrap();
        let xs = d.sample_n(&mut r, 100_000);
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn accept_plus_finish_matches_standard_sample() {
        // Two clones of one RNG: the split API must consume the stream
        // draw-for-draw like `standard_sample` and reproduce it exactly.
        let mut r1 = rng();
        let mut r2 = r1.clone();
        for _ in 0..1000 {
            let direct = Normal::standard_sample(&mut r1);
            let (u, s) = Normal::standard_accept(&mut r2);
            let finished = u * (-2.0 * s.ln() / s).sqrt();
            assert_eq!(direct.to_bits(), finished.to_bits());
        }
    }

    #[test]
    fn roughly_symmetric() {
        let mut r = rng();
        let pos = (0..100_000)
            .filter(|_| Normal::standard_sample(&mut r) > 0.0)
            .count();
        assert!((48_000..52_000).contains(&pos), "pos={pos}");
    }

    #[test]
    fn tail_mass_is_small() {
        let mut r = rng();
        let beyond3 = (0..100_000)
            .filter(|_| Normal::standard_sample(&mut r).abs() > 3.0)
            .count();
        // P(|Z|>3) ≈ 0.0027 → expect ~270 of 100k.
        assert!(beyond3 < 600, "beyond3={beyond3}");
    }
}
