//! Beta distribution, sampled as a ratio of Gammas.

use super::{DistError, Gamma, Sample};
use crate::RngCore;

/// Beta distribution `Beta(a, b)` on `(0, 1)`.
///
/// Used for the community-strength prior `beta_k ~ Beta(eta)` in the a-MMSB
/// generative model. Sampled as `X/(X+Y)` with `X~Gamma(a,1)`, `Y~Gamma(b,1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    ga: Gamma,
    gb: Gamma,
}

impl Beta {
    /// Construct with shape parameters `a > 0`, `b > 0`.
    pub fn new(a: f64, b: f64) -> Result<Self, DistError> {
        Ok(Self {
            ga: Gamma::new(a, 1.0)?,
            gb: Gamma::new(b, 1.0)?,
        })
    }

    /// Symmetric Beta with both shapes equal to `eta` — the paper's
    /// `Beta(eta)` prior.
    pub fn symmetric(eta: f64) -> Result<Self, DistError> {
        Self::new(eta, eta)
    }

    /// First shape parameter.
    pub fn a(&self) -> f64 {
        self.ga.alpha()
    }

    /// Second shape parameter.
    pub fn b(&self) -> f64 {
        self.gb.alpha()
    }
}

impl Sample for Beta {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let x = self.ga.sample(rng);
            let y = self.gb.sample(rng);
            let s = x + y;
            if s > 0.0 {
                return x / s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{moments, rng};
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, -1.0).is_err());
        assert!(Beta::symmetric(0.0).is_err());
    }

    #[test]
    fn samples_in_open_unit_interval() {
        let mut r = rng();
        for (a, b) in [(0.5, 0.5), (1.0, 1.0), (2.0, 5.0), (10.0, 1.0)] {
            let d = Beta::new(a, b).unwrap();
            for _ in 0..2000 {
                let x = d.sample(&mut r);
                assert!(x > 0.0 && x < 1.0, "a={a} b={b} x={x}");
            }
        }
    }

    #[test]
    fn moments_match() {
        let mut r = rng();
        for (a, b) in [(2.0, 5.0), (1.0, 1.0), (0.5, 0.5)] {
            let d = Beta::new(a, b).unwrap();
            let xs = d.sample_n(&mut r, 200_000);
            let (mean, var) = moments(&xs);
            let em = a / (a + b);
            let ev = a * b / ((a + b) * (a + b) * (a + b + 1.0));
            assert!((mean - em).abs() < 0.005, "a={a} b={b} mean={mean}");
            assert!((var - ev).abs() < 0.005, "a={a} b={b} var={var}");
        }
    }

    #[test]
    fn uniform_special_case() {
        // Beta(1,1) is Uniform(0,1).
        let mut r = rng();
        let d = Beta::new(1.0, 1.0).unwrap();
        let below_half = (0..100_000).filter(|_| d.sample(&mut r) < 0.5).count();
        assert!((48_500..51_500).contains(&below_half), "{below_half}");
    }
}
