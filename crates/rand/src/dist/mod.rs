//! Continuous and discrete distribution samplers.
//!
//! Each distribution validates its parameters at construction time and
//! returns a [`DistError`] for invalid ones, so the hot sampling path can be
//! panic-free and branch-light.

mod beta;
mod dirichlet;
mod exponential;
mod gamma;
mod normal;

pub use beta::Beta;
pub use dirichlet::Dirichlet;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use normal::Normal;

use crate::RngCore;

/// Parameter-validation error for distribution constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A shape/rate/scale parameter that must be strictly positive was not.
    NotPositive {
        /// Name of the offending parameter.
        param: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter was NaN.
    NaN {
        /// Name of the offending parameter.
        param: &'static str,
    },
    /// A Dirichlet concentration vector was empty.
    EmptyConcentration,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::NotPositive { param, value } => {
                write!(f, "parameter `{param}` must be > 0, got {value}")
            }
            DistError::NaN { param } => write!(f, "parameter `{param}` is NaN"),
            DistError::EmptyConcentration => write!(f, "Dirichlet needs at least one component"),
        }
    }
}

impl std::error::Error for DistError {}

pub(crate) fn check_positive(param: &'static str, value: f64) -> Result<f64, DistError> {
    if value.is_nan() {
        Err(DistError::NaN { param })
    } else if value <= 0.0 {
        Err(DistError::NotPositive { param, value })
    } else {
        Ok(value)
    }
}

/// A distribution over `f64` values.
pub trait Sample {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draw `n` samples into a fresh vector.
    fn sample_n<R: RngCore + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::Xoshiro256PlusPlus;

    pub fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(0x5EED)
    }

    /// Sample mean and variance of `n` draws.
    pub fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_positive_accepts_positive() {
        assert_eq!(check_positive("x", 1.5), Ok(1.5));
    }

    #[test]
    fn check_positive_rejects_zero_negative_nan() {
        assert!(matches!(
            check_positive("x", 0.0),
            Err(DistError::NotPositive { .. })
        ));
        assert!(matches!(
            check_positive("x", -1.0),
            Err(DistError::NotPositive { .. })
        ));
        assert!(matches!(
            check_positive("x", f64::NAN),
            Err(DistError::NaN { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = check_positive("alpha", -2.0).unwrap_err();
        assert!(e.to_string().contains("alpha"));
        assert!(e.to_string().contains("-2"));
    }
}
