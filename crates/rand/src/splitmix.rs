//! SplitMix64: a tiny, fast generator used for seed expansion.
//!
//! Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
//! generators", OOPSLA 2014; the constants are the ones published by
//! Sebastiano Vigna alongside the xoshiro family.

use crate::RngCore;

/// SplitMix64 generator.
///
/// Primarily used to expand a single `u64` seed into the 256-bit state of
/// [`crate::Xoshiro256PlusPlus`]; adequate as a standalone generator for
/// non-critical uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator with the given seed. Every seed is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference output for seed 0 from Vigna's public-domain C code.
        let mut r = SplitMix64::new(0);
        let expected = [
            0xE220_A839_7B1D_CDAF_u64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
