//! Deterministic pseudo-random number generation for the MMSB workspace.
//!
//! The SG-MCMC sampler must produce *bitwise-identical* chains for a given
//! seed regardless of how the work is partitioned across ranks and threads.
//! That requirement rules out process-global or platform-dependent RNGs, so
//! this crate provides:
//!
//! * [`SplitMix64`] — a tiny seeding generator used to expand one `u64` seed
//!   into full generator state,
//! * [`Xoshiro256PlusPlus`] — the workhorse generator (fast, 256-bit state,
//!   with `jump`/`long_jump` for creating independent streams),
//! * [`Rng`] — convenience extension methods (floats, ranges, shuffling,
//!   sampling without replacement),
//! * distribution samplers in [`dist`]: Normal, Gamma, Beta, Dirichlet,
//!   Exponential and Bernoulli — everything the a-MMSB sampler needs.
//!
//! # Example
//!
//! ```
//! use mmsb_rand::{Rng, Xoshiro256PlusPlus, dist::{Gamma, Sample}};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
//! let g = Gamma::new(2.5, 1.0).unwrap();
//! let x = g.sample(&mut rng);
//! assert!(x > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod dist;
mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256PlusPlus;

/// Source of raw 64-bit randomness.
///
/// Everything else in this crate (floats, ranges, distributions) is built on
/// top of `next_u64`.
pub trait RngCore {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for samplers that take `ln(u)`: never returns exactly zero.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `u32`.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() called with bound 0");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fair coin flip.
    #[inline]
    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Choose one element uniformly, or `None` for an empty slice.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below_usize(items.len())])
        }
    }

    /// Sample `k` *distinct* values from `[0, n)` via Floyd's algorithm.
    ///
    /// Output order is the insertion order of Floyd's algorithm (not sorted,
    /// not uniform over permutations, but uniform over *sets*). `O(k)`
    /// expected time, independent of `n`.
    ///
    /// # Panics
    /// Panics if `k > n`.
    fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_distinct: k={k} > n={n}");
        // For dense requests a partial Fisher-Yates is cheaper and avoids
        // hash-set overhead.
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.below_usize(n - i);
                all.swap(i, j);
            }
            all.truncate(k);
            return all;
        }
        let mut chosen = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below_usize(j + 1);
            if chosen.insert(t) {
                out.push(t);
            } else {
                chosen.insert(j);
                out.push(j);
            }
        }
        out
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(r.next_f64_open() > 0.0);
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = rng();
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..1000 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = rng();
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bound 0")]
    fn below_zero_panics() {
        rng().below(0);
    }

    #[test]
    fn range_within_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = rng();
        assert!(r.choose::<u8>(&[]).is_none());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = rng();
        for (n, k) in [(100, 10), (100, 100), (1000, 3), (5, 5), (1, 1), (10, 0)] {
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates in sample");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    #[should_panic(expected = "sample_distinct")]
    fn sample_distinct_k_too_large_panics() {
        rng().sample_distinct(3, 4);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        for _ in 0..100 {
            assert!(!r.bernoulli(0.0));
            assert!(r.bernoulli(1.0));
        }
    }

    #[test]
    fn coin_is_balanced() {
        let mut r = rng();
        let heads = (0..100_000).filter(|_| r.coin()).count();
        assert!((45_000..55_000).contains(&heads), "heads={heads}");
    }
}
