//! Streaming: keep learning while the network evolves.
//!
//! ```text
//! cargo run --release -p mmsb --example streaming_snapshots
//! ```
//!
//! SG-MCMC touches only mini-batches, so — as the paper's background
//! section notes — it "can be applied to (infinite) streaming data". This
//! example simulates an evolving social network as a sequence of
//! snapshots in which one community gradually migrates its membership,
//! and shows the sampler adapting: after each snapshot swap the held-out
//! perplexity spikes (the world changed) and then recovers *much faster*
//! than a cold-started model, because the surviving structure is already
//! learned.

use mmsb::prelude::*;

/// Generate snapshot `phase` of the evolving network: communities 0 and 1
/// exchange `drift` of their members per phase; the rest are stable.
fn snapshot(phase: u32) -> GeneratedGraph {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1000 + phase as u64);
    // Stable community structure except the drifting block boundary: we
    // model the drift by regenerating with a phase-dependent seed and a
    // shifted community count, keeping N fixed.
    let mut config = PlantedConfig {
        num_vertices: 500,
        num_communities: 10,
        mean_community_size: 50.0,
        memberships_per_vertex: 1.0,
        internal_degree: 14.0,
        background_degree: 0.5,
    };
    // Later phases blur the first two communities together.
    if phase > 0 {
        config.memberships_per_vertex = 1.0 + 0.05 * phase as f64;
    }
    generate_planted(&config, &mut rng)
}

fn main() {
    let phases = 3u32;
    let iters_per_phase = 1200u64;
    let k = 10;

    // Warm (streaming) model: carries state across snapshots.
    let first = snapshot(0);
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(77);
    let (train0, held0) = HeldOut::split(&first.graph, 120, &mut rng);
    let config = SamplerConfig::new(k).with_seed(7).with_minibatch(
        Strategy::StratifiedNode {
            partitions: 16,
            anchors: 16,
        },
    );
    let mut warm =
        ParallelSampler::new(train0, held0, config.clone()).expect("valid configuration");

    println!(
        "{:>6} {:>6} {:>16} {:>16}",
        "phase", "iter", "warm perplexity", "cold perplexity"
    );
    for phase in 0..phases {
        let generated = snapshot(phase);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(200 + phase as u64);
        let (train, heldout) = HeldOut::split(&generated.graph, 120, &mut rng);
        if phase > 0 {
            warm.advance_to_snapshot(train.clone(), heldout.clone())
                .expect("same vertex set");
        }
        // Cold model: restarted from scratch on every snapshot.
        let mut cold = ParallelSampler::new(train, heldout, config.clone())
            .expect("valid configuration");

        for round in 1..=4 {
            warm.run(iters_per_phase / 4);
            cold.run(iters_per_phase / 4);
            let pw = warm.evaluate_perplexity();
            let pc = cold.evaluate_perplexity();
            println!(
                "{:>6} {:>6} {:>16.4} {:>16.4}",
                phase,
                round * iters_per_phase / 4,
                pw,
                pc
            );
        }
    }
    println!(
        "\nreading: after each snapshot the warm (streaming) model re-converges \
         ahead of the cold restart — the learned communities carry over."
    );
}
