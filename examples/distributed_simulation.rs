//! The distributed master–worker sampler on a simulated cluster.
//!
//! ```text
//! cargo run --release -p mmsb --example distributed_simulation
//! ```
//!
//! Runs the same chain on simulated FDR-InfiniBand clusters of several
//! sizes (the paper's DAS5 setup), with and without the pipelined
//! (double-buffered) `pi` loads, and prints the per-stage timing
//! breakdown — a miniature of Figure 1 and Table III.

use mmsb::prelude::*;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
    let generated = generate_planted(
        &PlantedConfig {
            num_vertices: 4000,
            num_communities: 64,
            mean_community_size: 70.0,
            memberships_per_vertex: 1.1,
            internal_degree: 12.0,
            background_degree: 1.0,
        },
        &mut rng,
    );
    let (train, heldout) = HeldOut::split(&generated.graph, 500, &mut rng);

    let config = SamplerConfig::new(32)
        .with_seed(3)
        .with_minibatch(Strategy::StratifiedNode {
            partitions: 32,
            anchors: 64,
        })
        .with_neighbor_sample(32);

    let iters = 30;
    println!("strong scaling, {iters} iterations, K = 32:\n");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "workers", "single (s)", "double (s)", "speedup"
    );
    let mut baseline = None;
    for workers in [2usize, 4, 8, 16] {
        let mut times = Vec::new();
        for mode in [PipelineMode::Single, PipelineMode::Double] {
            let dcfg = DistributedConfig::das5(workers).with_pipeline(mode);
            let mut sampler = DistributedSampler::new(
                train.clone(),
                heldout.clone(),
                config.clone(),
                dcfg,
            )
            .expect("valid configuration");
            sampler.run(iters);
            times.push(sampler.virtual_time());
        }
        let base = *baseline.get_or_insert(times[1]);
        println!(
            "{:>8} {:>12.4} {:>12.4} {:>9.2}x",
            workers,
            times[0],
            times[1],
            base / times[1]
        );
    }

    // Per-stage breakdown at 8 workers (Table III shape).
    let dcfg = DistributedConfig::das5(8);
    let mut sampler =
        DistributedSampler::new(train, heldout, config, dcfg).expect("valid configuration");
    sampler.run(iters);
    let perplexity = sampler.evaluate_perplexity();
    println!("\nper-stage breakdown on 8 workers (pipelined):\n");
    print!("{}", sampler.report());
    println!("\nheld-out perplexity after {iters} iterations: {perplexity:.3}");
}
