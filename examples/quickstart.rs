//! Quickstart: detect overlapping communities in a small synthetic graph.
//!
//! ```text
//! cargo run --release -p mmsb --example quickstart
//! ```
//!
//! Generates a graph with planted overlapping communities, trains the
//! sequential SG-MCMC sampler while tracking held-out perplexity, and
//! prints the recovered communities next to the planted ones.

use mmsb::prelude::*;

fn main() {
    // 1. A synthetic social network: 400 vertices, 8 overlapping
    //    communities of ~55 members, strong intra-community density.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(2024);
    let generated = generate_planted(
        &PlantedConfig {
            num_vertices: 400,
            num_communities: 8,
            mean_community_size: 55.0,
            memberships_per_vertex: 1.1,
            internal_degree: 14.0,
            background_degree: 0.5,
        },
        &mut rng,
    );
    println!(
        "graph: {} vertices, {} edges, {} planted communities",
        generated.graph.num_vertices(),
        generated.graph.num_edges(),
        generated.ground_truth.num_communities()
    );

    // 2. Hold out links + non-links for perplexity evaluation.
    let (train, heldout) = HeldOut::split(&generated.graph, 150, &mut rng);

    // 3. Train. K matches the planted count here; in practice K is a
    //    modeling choice.
    let config = SamplerConfig::new(8).with_seed(7).with_minibatch(
        Strategy::StratifiedNode {
            partitions: 16,
            anchors: 16,
        },
    );
    let mut sampler =
        SequentialSampler::new(train, heldout, config).expect("valid configuration");

    println!("\n{:>6}  {:>10}", "iter", "perplexity");
    for _ in 0..8 {
        sampler.run(250);
        let perplexity = sampler.evaluate_perplexity();
        println!("{:>6}  {:>10.4}", sampler.iteration(), perplexity);
    }

    // 4. Extract and score the detected communities.
    let detected = sampler.communities(0.1);
    let f1 = eval::best_match_f1(&detected.members, &generated.ground_truth);
    println!(
        "\ndetected {} non-empty communities (of K = 8), best-match F1 vs planted truth: {f1:.3}",
        detected.num_nonempty()
    );
    for (k, members) in detected.members.iter().enumerate() {
        if !members.is_empty() {
            let ids: Vec<u32> = members.iter().take(8).map(|v| v.0).collect();
            println!(
                "  community {k}: {} members, e.g. {ids:?}, strength beta = {:.3}",
                members.len(),
                sampler.state().beta()[k]
            );
        }
    }
}
