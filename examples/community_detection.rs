//! Overlapping community recovery with ground-truth scoring.
//!
//! ```text
//! cargo run --release -p mmsb --example community_detection
//! ```
//!
//! The scenario the paper's introduction motivates: a social network whose
//! members belong to *several* circles at once. This example plants strong
//! overlap (1.3 memberships/vertex), trains the parallel sampler (the
//! paper's node-level OpenMP layer), compares against the SVI baseline the
//! paper cites, and reports recovery quality for both.

use mmsb::core::PosteriorMean;
use mmsb::prelude::*;
use mmsb::svi::SviConfig;

fn f1_of<M: AsRef<[Vec<VertexId>]>>(members: M, truth: &GroundTruth) -> f64 {
    eval::best_match_f1(members.as_ref(), truth)
}

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
    let generated = generate_planted(
        &PlantedConfig {
            num_vertices: 600,
            num_communities: 12,
            mean_community_size: 65.0,
            memberships_per_vertex: 1.3,
            internal_degree: 18.0,
            background_degree: 0.3,
        },
        &mut rng,
    );
    let truth = &generated.ground_truth;
    println!(
        "graph: {} vertices, {} edges, {} planted communities, {:.2} memberships/vertex",
        generated.graph.num_vertices(),
        generated.graph.num_edges(),
        truth.num_communities(),
        truth.mean_memberships(generated.graph.num_vertices()),
    );

    let (train, heldout) = HeldOut::split(&generated.graph, 200, &mut rng);
    let strategy = Strategy::StratifiedNode {
        partitions: 16,
        anchors: 24,
    };

    // --- SG-MCMC (this paper) --------------------------------------
    let config = SamplerConfig::new(12).with_seed(5).with_minibatch(strategy);
    let mut mcmc = ParallelSampler::new(train.clone(), heldout.clone(), config)
        .expect("valid configuration");
    let mut posterior = PosteriorMean::new(generated.graph.num_vertices(), 12);
    println!("\nSG-MCMC (parallel driver):");
    println!("{:>6}  {:>10}  {:>8}", "iter", "perplexity", "F1");
    for round in 0..8 {
        mcmc.run(400);
        let perplexity = mcmc.evaluate_perplexity();
        let f1 = f1_of(&mcmc.communities(0.08).members, truth);
        println!("{:>6}  {:>10.4}  {:>8.3}", mcmc.iteration(), perplexity, f1);
        if round >= 4 {
            // Average the tail of the chain for the final extraction.
            posterior.record(mcmc.state());
        }
    }
    let averaged_f1 = f1_of(&posterior.communities(0.08).members, truth);
    println!(
        "posterior-averaged extraction over the last {} samples: F1 {averaged_f1:.3}",
        posterior.samples()
    );

    // --- SVI baseline (the SVB family the paper compares against) ---
    let mut svi = SviSampler::new(
        train,
        heldout,
        SviConfig::new(12).with_seed(5).with_minibatch(strategy),
    );
    println!("\nSVI baseline:");
    println!("{:>6}  {:>10}  {:>8}", "iter", "perplexity", "F1");
    for _ in 0..8 {
        svi.run(400);
        let perplexity = svi.evaluate_perplexity();
        let f1 = f1_of(svi.communities(0.08), truth);
        println!("{:>6}  {:>10.4}  {:>8.3}", svi.iteration(), perplexity, f1);
    }

    // --- Who found the overlap? -------------------------------------
    let detected = mcmc.communities(0.08);
    let overlapping = detected
        .memberships(generated.graph.num_vertices())
        .iter()
        .filter(|m| m.len() > 1)
        .count();
    println!(
        "\nSG-MCMC assigned {overlapping} vertices to more than one community \
         (planted: {})",
        truth
            .memberships(generated.graph.num_vertices())
            .iter()
            .filter(|m| m.len() > 1)
            .count()
    );
}
