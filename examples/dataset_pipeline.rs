//! File-based pipeline: SNAP edge list in, communities out.
//!
//! ```text
//! cargo run --release -p mmsb --example dataset_pipeline [path/to/edges.txt]
//! ```
//!
//! Without an argument, the example first *writes* a SNAP-format file from
//! a synthetic graph (so it is self-contained), then loads it back the way
//! a user would load a real download from snap.stanford.edu, splits a
//! held-out set, trains, and saves the detected communities to a text
//! file.

use mmsb::graph::io;
use mmsb::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

fn main() {
    let arg = std::env::args().nth(1);
    let dir = std::env::temp_dir().join("mmsb_dataset_pipeline");
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    // 1. Obtain an edge-list file.
    let path: PathBuf = match arg {
        Some(p) => PathBuf::from(p),
        None => {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
            let generated = generate_planted(
                &PlantedConfig {
                    num_vertices: 800,
                    num_communities: 16,
                    mean_community_size: 55.0,
                    memberships_per_vertex: 1.1,
                    internal_degree: 12.0,
                    background_degree: 0.5,
                },
                &mut rng,
            );
            let path = dir.join("synthetic_edges.txt");
            io::save_edge_list(&generated.graph, &path).expect("write edge list");
            println!("wrote synthetic SNAP-format edge list to {}", path.display());
            path
        }
    };

    // 2. Load it (densifies arbitrary vertex ids).
    let loaded = io::load_edge_list(&path).expect("readable SNAP edge list");
    println!(
        "loaded {}: {} vertices, {} edges",
        path.display(),
        loaded.graph.num_vertices(),
        loaded.graph.num_edges()
    );

    // 3. Train/held-out split and training.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    let heldout_links = (loaded.graph.num_edges() / 50).max(10) as usize;
    let (train, heldout) = HeldOut::split(&loaded.graph, heldout_links, &mut rng);
    let k = 16;
    let config = SamplerConfig::new(k).with_seed(1).with_minibatch(
        Strategy::StratifiedNode {
            partitions: 16,
            anchors: 24,
        },
    );
    let mut sampler = ParallelSampler::new(train, heldout, config).expect("valid configuration");
    for round in 1..=5 {
        sampler.run(400);
        println!(
            "round {round}: iteration {}, perplexity {:.4}",
            sampler.iteration(),
            sampler.evaluate_perplexity()
        );
    }

    // 4. Save communities, mapping dense ids back to the file's ids.
    let communities = sampler.communities(0.08);
    let out_path = dir.join("communities.txt");
    let mut out = std::fs::File::create(&out_path).expect("create output file");
    writeln!(out, "# community_id\tmember_original_ids").unwrap();
    for (kidx, members) in communities.members.iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        let ids: Vec<String> = members
            .iter()
            .map(|&v| loaded.original_id(v).to_string())
            .collect();
        writeln!(out, "{kidx}\t{}", ids.join(" ")).unwrap();
    }
    println!(
        "saved {} non-empty communities to {}",
        communities.num_nonempty(),
        out_path.display()
    );
}
